#!/usr/bin/env bash
# Tier-1 verify gate (see ROADMAP.md): hermetic release build + full test
# suite, strictly offline. The workspace has no external dependencies, so
# this must succeed from a clean checkout with an empty cargo registry.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
