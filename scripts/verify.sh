#!/usr/bin/env bash
# Tier-1 verify gate (see ROADMAP.md): hermetic release build + full test
# suite, strictly offline. The workspace has no external dependencies, so
# this must succeed from a clean checkout with an empty cargo registry.
#
# Opt-in soak lane: KNNTA_SOAK=1 ./scripts/verify.sh additionally re-runs
# the rtree / mvbt / core property harnesses at KNNTA_PROP_CASES=10000
# (override the case count by exporting KNNTA_PROP_CASES yourself), the
# parallel-search and collective-batch differential oracles at their soak
# case counts, the snapshot-equivalence oracle (concurrent live
# ingestion vs frozen single-threaded replay) with many randomized
# writer/reader schedules, and the planner differential oracle (planned
# execution vs every forced configuration, bit-identical). The default
# fast path is unchanged and stays within the tier-1 budget.
# (`./scripts/soak.sh` wraps this lane for nightly cron, archiving failing
# seeds to soak_failures/.)
#
# Docs lane (always on): `cargo doc --no-deps` must be warning-clean
# (RUSTDOCFLAGS="-D warnings"), and the packed-image golden fixture
# (docs/FORMAT.md, tests/fixtures/packed_v1.golden) must match the writer
# byte-for-byte.
#
# Opt-in bench-diff lane: KNNTA_BENCH_DIFF=<baseline_dir> runs the bench
# suites in smoke mode and fails tier-1 if any p95 regresses by more than
# 25% against the baseline's BENCH_*.json files (via the bench_diff binary),
# then gates the packed serving tier: packed/TAR-tree/{k} must beat
# query_latency/TAR-tree/{k} on median AND p95 (bench_diff --within
# --metric both, zero slack), and gates the cost-model planner:
# planner/planned/{k} p95 must stay within 1.15x of every fixed
# configuration (mem_seq / packed_seq / paged_seq), i.e. within 1.15x of
# the best one, measured on a dedicated 21-sample re-run of the queries
# suite.
#
# Opt-in service lane: KNNTA_SERVICE_CHECK=1 drives `knnta serve` (the
# async sharded query service) with a short seeded open-loop client,
# validates its admit/tile/scatter/merge trace via `knnta report --check`,
# and re-runs the service fault-injection suite and differential oracle
# under the soak wrapper (5x the default randomized cases).
#
# Opt-in observability lane: KNNTA_OBS_CHECK=1 runs a traced query + batch
# through the knnta CLI, validates both JSON artifacts against the
# knnta.trace.v1 / knnta.metrics.v1 schemas (failing on orphaned spans via
# `knnta report --check`), and gates the disabled-mode overhead:
# median(obs_overhead/disabled) <= median(obs_overhead/baseline) * 1.05
# in BENCH_queries.json via `bench_diff --within`.
#
# Opt-in SLO lane: KNNTA_SLO_CHECK=1 runs a seeded `knnta serve` that
# streams knnta.snapshot.v1 telemetry snapshots (--stats-out) and the
# sampled tail traces (--tail-out), checks the window quantiles against
# generous bounds with `knnta slo` (non-zero exit on violation), renders
# the snapshot via `knnta top`, validates the tail trace with
# `knnta report --check`, and gates the cost of the always-on window
# telemetry: median(service_obs/qps/telemetry_on) <=
# median(service_obs/qps/telemetry_off) * 1.05 in BENCH_service.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline

echo "== docs: rustdoc warning-clean + packed-format golden fixture =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
cargo test -q --offline --test format_golden

if [ "${KNNTA_SOAK:-0}" != "0" ] && [ -n "${KNNTA_SOAK:-}" ]; then
    export KNNTA_PROP_CASES="${KNNTA_PROP_CASES:-10000}"
    echo "== soak: property harnesses at KNNTA_PROP_CASES=${KNNTA_PROP_CASES} =="
    cargo test -q --release --offline -p rtree
    cargo test -q --release --offline -p mvbt
    cargo test -q --release --offline -p knnta-core
    echo "== soak: workspace properties + differential oracles =="
    cargo test -q --release --offline --test proptests
    cargo test -q --release --offline --test oracle_equivalence
    cargo test -q --release --offline --test batch_oracle
    echo "== soak: snapshot-equivalence oracle (randomized writer/reader schedules) =="
    cargo test -q --release --offline --test snapshot_oracle
    echo "== soak: planner differential oracle (planned vs every forced config) =="
    cargo test -q --release --offline --test planner_oracle
    echo "== soak: service oracle + fault suite (5x cases, sharded vs unsharded) =="
    # Each randomized case starts a whole service (threads + shard trees),
    # so the case count is 5x the in-repo default rather than the global
    # KNNTA_PROP_CASES soak figure; the deterministic sweeps scale their
    # query streams via KNNTA_SOAK themselves.
    KNNTA_PROP_CASES=30 cargo test -q --release --offline --test service_oracle
    KNNTA_PROP_CASES=30 cargo test -q --release --offline --test service_faults
fi

if [ -n "${KNNTA_BENCH_DIFF:-}" ]; then
    baseline="${KNNTA_BENCH_DIFF}"
    if [ ! -d "$baseline" ]; then
        echo "KNNTA_BENCH_DIFF: '$baseline' is not a directory" >&2
        exit 2
    fi
    fresh="$(mktemp -d)"
    trap 'rm -rf "$fresh"' EXIT
    echo "== bench-diff: smoke bench run vs ${baseline} (fail on >25% p95 regressions) =="
    KNNTA_BENCH_FAST=1 KNNTA_BENCH_DIR="$fresh" cargo bench --offline -p knnta-bench
    compared=0
    for base in "$baseline"/BENCH_*.json; do
        [ -e "$base" ] || continue
        name="$(basename "$base")"
        if [ -f "$fresh/$name" ]; then
            compared=$((compared + 1))
            cargo run -q --release --offline --bin bench_diff -- \
                "$base" "$fresh/$name" --threshold 0.25
        else
            echo "bench-diff: baseline $name has no fresh counterpart (skipped)"
        fi
    done
    if [ "$compared" = 0 ]; then
        echo "KNNTA_BENCH_DIFF: no comparable BENCH_*.json in $baseline" >&2
        exit 2
    fi
    echo "== bench-diff: collective-batch gap gate (hilbert <= individual + slack) =="
    cargo run -q --release --offline --bin bench_diff -- \
        --within "$fresh/BENCH_enhancements.json" \
        --assert-le batch/collective_hilbert/1000 batch/individual/1000 \
        --slack 0.25
    echo "== bench-diff: packed serving-tier gate (beats pointer-based on median + p95) =="
    for k in 1 10 100; do
        cargo run -q --release --offline --bin bench_diff -- \
            --within "$fresh/BENCH_queries.json" \
            --assert-le "packed/TAR-tree/$k" "query_latency/TAR-tree/$k" \
            --slack 0.0 --metric both
    done
    echo "== bench-diff: planner gate (planned p95 <= 1.15x every fixed config) =="
    # Being within 1.15x of *every* fixed configuration implies being within
    # 1.15x of the best one (the ISSUE acceptance bound). The smoke run above
    # takes 3 samples of ~1 iteration each, where p95 is just the max of
    # three noisy timings; re-run the queries suite at 21 samples with a
    # 25 ms sample target so each sample averages many iterations and p95 is
    # the 2nd-largest (one bad container sample cannot flip the gate).
    plandir="$(mktemp -d)"
    trap 'rm -rf "$fresh" "$plandir"' EXIT
    KNNTA_BENCH_FAST=1 KNNTA_BENCH_SAMPLES=21 KNNTA_BENCH_TARGET_MS=25 \
        KNNTA_BENCH_DIR="$plandir" \
        cargo bench --offline -p knnta-bench --bench queries
    for k in 1 10 100; do
        for cfg in mem_seq packed_seq paged_seq; do
            cargo run -q --release --offline --bin bench_diff -- \
                --within "$plandir/BENCH_queries.json" \
                --assert-le "planner/planned/$k" "planner/$cfg/$k" \
                --slack 0.15 --metric p95
        done
    done
    echo "== bench-diff: live-ingestion throughput floor (>= 1M check-ins/sec at 8 shards) =="
    # One iteration records 200k check-ins (see benches/ingestion.rs), so a
    # 200ms median ceiling is exactly the 1M check-ins/sec floor.
    cargo run -q --release --offline --bin bench_diff -- \
        --within "$fresh/BENCH_ingestion.json" \
        --assert-max ingestion/checkins/shards8 200000000
    echo "== bench-diff: service scaling gate (8 shards >= 2x the qps of 1 shard) =="
    # Both benches push the same 256-query burst, so "shards1 takes >= 2x
    # as long per iteration" is "shards8 sustains >= 2x the queries/sec at
    # equal offered work". The gate needs real parallel hardware: on fewer
    # than 8 cores the shard workers serialize onto the same CPUs and the
    # ratio physically cannot hold, so it is skipped (the ratio is still
    # printed for the record).
    cores="$(nproc 2>/dev/null || echo 1)"
    if [ "$cores" -ge 8 ]; then
        cargo run -q --release --offline --bin bench_diff -- \
            --within "$fresh/BENCH_service.json" \
            --assert-ratio-ge service/qps/shards1 service/qps/shards8 2.0
    else
        echo "service scaling gate skipped: $cores core(s) < 8 (ratio for the record:)"
        cargo run -q --release --offline --bin bench_diff -- \
            --within "$fresh/BENCH_service.json" \
            --assert-ratio-ge service/qps/shards1 service/qps/shards8 2.0 || true
    fi
fi

if [ "${KNNTA_OBS_CHECK:-0}" != "0" ] && [ -n "${KNNTA_OBS_CHECK:-}" ]; then
    obsdir="$(mktemp -d)"
    # (re-traps to also cover $fresh if the bench-diff lane ran above)
    trap 'rm -rf "$obsdir" "${fresh:-}" "${plandir:-}"' EXIT
    knnta="target/release/knnta"
    echo "== obs-check: traced query + batch, schema validation =="
    "$knnta" generate --dataset GS --out "$obsdir/gs.csv" --scale 0.004 --seed 20260704
    "$knnta" build --input "$obsdir/gs.csv" --out "$obsdir/gs.idx"
    "$knnta" query --index "$obsdir/gs.idx" --x 40 --y 55 --from-day 0 --to-day 63 \
        --k 5 --paged --threads 4 \
        --trace-out "$obsdir/query_trace.json" --metrics-out "$obsdir/query_metrics.json"
    printf '40,55,0,63,5\n10,20,7,28,3\n80,75,14,63,8\n' > "$obsdir/batch.csv"
    "$knnta" batch --index "$obsdir/gs.idx" --queries "$obsdir/batch.csv" \
        --trace-out "$obsdir/batch_trace.json" --metrics-out "$obsdir/batch_metrics.json"
    # --check fails on orphaned spans, escaped child intervals, or events
    # outside their span; the artifact writer already validated at emit time,
    # so this also proves the files round-trip through the parser.
    "$knnta" report "$obsdir/query_trace.json" --metrics "$obsdir/query_metrics.json" --check
    "$knnta" report "$obsdir/batch_trace.json" --metrics "$obsdir/batch_metrics.json" --check
    echo "== obs-check: disabled-mode overhead gate (<= baseline * 1.05) =="
    KNNTA_BENCH_FAST=1 KNNTA_BENCH_SAMPLES=21 KNNTA_BENCH_DIR="$obsdir" \
        cargo bench --offline -p knnta-bench --bench queries
    cargo run -q --release --offline --bin bench_diff -- \
        --within "$obsdir/BENCH_queries.json" \
        --assert-le obs_overhead/disabled obs_overhead/baseline \
        --slack 0.05
fi

if [ "${KNNTA_SERVICE_CHECK:-0}" != "0" ] && [ -n "${KNNTA_SERVICE_CHECK:-}" ]; then
    svcdir="$(mktemp -d)"
    trap 'rm -rf "$svcdir" "${obsdir:-}" "${fresh:-}" "${plandir:-}"' EXIT
    knnta="target/release/knnta"
    echo "== service-check: knnta serve under the seeded open-loop client =="
    # A short seeded run of the full service (streaming admission, 4 engine
    # shards x 2 workers, scatter-gather merge) with tracing on; report
    # --check validates the admit/tile/scatter/merge span structure and
    # fails on orphaned spans.
    "$knnta" serve --dataset GS --scale 0.004 --seed 20260704 \
        --shards 4 --workers 2 --max-batch 32 --max-delay-us 200 \
        --queries 400 --rate 4000 \
        --trace-out "$svcdir/serve_trace.json" --metrics-out "$svcdir/serve_metrics.json"
    "$knnta" report "$svcdir/serve_trace.json" --metrics "$svcdir/serve_metrics.json" --check
    echo "== service-check: fault-injection suite under the soak wrapper =="
    KNNTA_SOAK=1 cargo test -q --release --offline --test service_faults
    KNNTA_SOAK=1 KNNTA_PROP_CASES=30 cargo test -q --release --offline --test service_oracle
fi

if [ "${KNNTA_SLO_CHECK:-0}" != "0" ] && [ -n "${KNNTA_SLO_CHECK:-}" ]; then
    slodir="$(mktemp -d)"
    trap 'rm -rf "$slodir" "${svcdir:-}" "${obsdir:-}" "${fresh:-}" "${plandir:-}"' EXIT
    knnta="target/release/knnta"
    echo "== slo-check: seeded serve streaming telemetry snapshots =="
    "$knnta" serve --dataset GS --scale 0.004 --seed 20260704 \
        --shards 4 --workers 2 --max-batch 32 --max-delay-us 200 \
        --queries 400 --rate 4000 \
        --stats-out "$slodir/snapshot.json" --stats-interval-ms 50 \
        --tail-out "$slodir/tail.json"
    echo "== slo-check: window quantiles vs generous bounds (gate exit code) =="
    # 30 s bounds: far above anything a healthy run produces, so a failure
    # here means the telemetry itself (not the machine) is broken. The
    # violation path's non-zero exit is pinned by tests/slo_cli.rs.
    "$knnta" slo --snapshot "$slodir/snapshot.json" \
        --p95-us 30000000 --p99-us 30000000
    echo "== slo-check: snapshot rendering + tail-trace structure =="
    "$knnta" top "$slodir/snapshot.json"
    "$knnta" report "$slodir/tail.json" --check
    echo "== slo-check: always-on telemetry overhead gate (<= off * 1.05) =="
    KNNTA_BENCH_FAST=1 KNNTA_BENCH_SAMPLES=21 KNNTA_BENCH_DIR="$slodir" \
        cargo bench --offline -p knnta-bench --bench service
    cargo run -q --release --offline --bin bench_diff -- \
        --within "$slodir/BENCH_service.json" \
        --assert-le service_obs/qps/telemetry_on service_obs/qps/telemetry_off \
        --slack 0.05
fi
