#!/usr/bin/env bash
# Tier-1 verify gate (see ROADMAP.md): hermetic release build + full test
# suite, strictly offline. The workspace has no external dependencies, so
# this must succeed from a clean checkout with an empty cargo registry.
#
# Opt-in soak lane: KNNTA_SOAK=1 ./scripts/verify.sh additionally re-runs
# the rtree / mvbt / core property harnesses at KNNTA_PROP_CASES=10000
# (override the case count by exporting KNNTA_PROP_CASES yourself) and the
# parallel-search differential oracle at its soak case count. The default
# fast path is unchanged and stays within the tier-1 budget.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline

if [ "${KNNTA_SOAK:-0}" != "0" ] && [ -n "${KNNTA_SOAK:-}" ]; then
    export KNNTA_PROP_CASES="${KNNTA_PROP_CASES:-10000}"
    echo "== soak: property harnesses at KNNTA_PROP_CASES=${KNNTA_PROP_CASES} =="
    cargo test -q --release --offline -p rtree
    cargo test -q --release --offline -p mvbt
    cargo test -q --release --offline -p knnta-core
    echo "== soak: workspace properties + differential oracle =="
    cargo test -q --release --offline --test proptests
    cargo test -q --release --offline --test oracle_equivalence
fi
