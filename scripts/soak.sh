#!/usr/bin/env bash
# Nightly soak wrapper around the tier-1 gate: runs the full verify suite
# with the soak lane enabled (KNNTA_SOAK=1 → 10k-case property harnesses,
# the large differential oracles, and the snapshot-equivalence oracle with
# randomized concurrent writer/reader schedules), and archives the log + any
# failing seeds under soak_failures/ so a red night is reproducible the next
# morning. A failing ingestion schedule prints the same
# `KNNTA_PROP_SEED=<seed> cargo test <name>` line as the property
# harnesses, so the replay loop below picks it up unchanged.
#
# Usage:
#   ./scripts/soak.sh                  # one soak run
#   KNNTA_PROP_CASES=50000 ./scripts/soak.sh
#
# Nightly cron (run from a checkout that is kept up to date):
#   17 2 * * * cd /path/to/knnta && ./scripts/soak.sh >> soak.log 2>&1
#
# Reproducing an archived failure: each *_seeds.txt lists the
# `KNNTA_PROP_SEED=...` lines the harness printed; re-export one and re-run
# the named test (see the sibling *.log for the failing test name).
set -uo pipefail
cd "$(dirname "$0")/.."

stamp="$(date -u +%Y%m%dT%H%M%SZ)"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

echo "== soak ${stamp}: KNNTA_SOAK=1 ./scripts/verify.sh =="
if KNNTA_SOAK=1 ./scripts/verify.sh 2>&1 | tee "$log"; then
    echo "== soak ${stamp}: green =="
    exit 0
fi

mkdir -p soak_failures
cp "$log" "soak_failures/${stamp}.log"
# Pull out everything needed to replay: printed seeds, failing test names,
# panic messages.
grep -E "KNNTA_PROP_SEED|panicked|FAILED|failures:" "$log" \
    > "soak_failures/${stamp}_seeds.txt" || true

# Replay each failing seed with observability enabled and archive the trace
# alongside the seed: the panic hook in tests/common (KNNTA_OBS_TRACE_DIR)
# dumps knnta.trace.v1 + knnta.metrics.v1 artifacts for the failing test.
# Obs-enabled execution is oracle-identical, so the replay fails the same way.
traces="soak_failures/${stamp}_traces"
grep -oE "KNNTA_PROP_SEED=[0-9a-fxA-FX]+ cargo test [A-Za-z0-9_:]+" "$log" | sort -u \
    | while IFS=' ' read -r seedvar _ _ test; do
        seed="${seedvar#KNNTA_PROP_SEED=}"
        echo "== soak ${stamp}: replaying ${test} (seed ${seed}) with tracing =="
        KNNTA_PROP_SEED="$seed" KNNTA_OBS_TRACE_DIR="$traces" \
            cargo test -q --release --offline --workspace "$test" || true
    done
if [ -d "$traces" ]; then
    echo "== soak ${stamp}: archived traces in ${traces}/ =="
fi
echo "== soak ${stamp}: FAILED — archived soak_failures/${stamp}.log =="
exit 1
