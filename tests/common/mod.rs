#![allow(dead_code)]

//! Shared helpers for the workspace-level integration tests.

use knnta::core::{Grouping, IndexConfig, Obs, QueryHit, ScanBaseline, TarIndex};
use knnta::lbsn::LbsnDataset;
use knnta::{AggregateSeries, EpochGrid, Poi};
use rtree::Rect;
use std::sync::OnceLock;

/// When `KNNTA_OBS_TRACE_DIR` is set (the soak lane's failing-seed replay),
/// every index built through these helpers shares one enabled [`Obs`]
/// handle, and a panic hook archives its trace + metrics JSON into that
/// directory — so a failing seed ships with the spans that led up to it.
/// Enabling obs never changes an answer or an access count
/// (`tests/obs_overhead.rs`), so the replay fails identically.
fn archive_obs() -> Option<Obs> {
    static ARCHIVE: OnceLock<Option<Obs>> = OnceLock::new();
    ARCHIVE
        .get_or_init(|| {
            let dir = std::env::var("KNNTA_OBS_TRACE_DIR").ok()?;
            let obs = Obs::enabled();
            let hook_obs = obs.clone();
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let test = std::thread::current()
                    .name()
                    .unwrap_or("test")
                    .replace("::", "_");
                let _ = std::fs::create_dir_all(&dir);
                let _ = std::fs::write(
                    format!("{dir}/{test}.trace.json"),
                    hook_obs.trace_json(),
                );
                let _ = std::fs::write(
                    format!("{dir}/{test}.metrics.json"),
                    hook_obs.metrics_json(),
                );
                prev(info);
            }));
            Some(obs)
        })
        .clone()
}

/// Builds an index of the given grouping over a generated dataset snapshot.
pub fn index_of(dataset: &LbsnDataset, grouping: Grouping) -> TarIndex {
    index_with_config(dataset, IndexConfig::with_grouping(grouping))
}

/// Builds an index with an explicit config over the dataset's full snapshot.
pub fn index_with_config(dataset: &LbsnDataset, config: IndexConfig) -> TarIndex {
    let pois = dataset
        .snapshot(dataset.grid.len())
        .into_iter()
        .map(|(id, pos, series)| (Poi { id, pos }, series));
    let mut index = TarIndex::build(
        config,
        dataset.grid.clone(),
        Rect::new(dataset.bounds.0, dataset.bounds.1),
        pois,
    );
    if let Some(obs) = archive_obs() {
        index.set_obs(obs);
    }
    index
}

/// Builds the sequential-scan oracle over the same snapshot.
pub fn baseline_of(dataset: &LbsnDataset) -> ScanBaseline {
    let pois = dataset
        .snapshot(dataset.grid.len())
        .into_iter()
        .map(|(id, pos, series)| (Poi { id, pos }, series));
    ScanBaseline::build(
        dataset.grid.clone(),
        Rect::new(dataset.bounds.0, dataset.bounds.1),
        pois,
    )
}

/// Asserts that two top-k answers are equivalent: same score sequence, and
/// the same POI sets once ties (equal scores) are accounted for.
pub fn assert_same_answer(got: &[QueryHit], want: &[QueryHit], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: result sizes differ");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g.score - w.score).abs() < 1e-9,
            "{context}: rank {i} scores {} vs {}",
            g.score,
            w.score
        );
    }
    // POI sets must match except possibly at the trailing tie boundary.
    let mut g_ids: Vec<u32> = got.iter().map(|h| h.poi.0).collect();
    let mut w_ids: Vec<u32> = want.iter().map(|h| h.poi.0).collect();
    g_ids.sort_unstable();
    w_ids.sort_unstable();
    if g_ids != w_ids {
        // Allow divergence only among hits whose score equals the k-th
        // score (ties at the boundary are legitimately ambiguous).
        let kth = want.last().expect("non-empty").score;
        for (g, w) in got.iter().zip(want) {
            if (g.score - kth).abs() > 1e-9 {
                assert_eq!(g.poi, w.poi, "{context}: non-tied rank differs");
            }
        }
    }
}

/// A small deterministic dataset for the fast tests.
pub fn small_dataset() -> LbsnDataset {
    knnta::lbsn::gs().generate(0.004, 7, 20_260_704)
}

/// A tiny hand-rolled dataset (no randomness at all).
pub fn tiny_dataset() -> (EpochGrid, Rect<2>, Vec<(Poi, AggregateSeries)>) {
    let grid = EpochGrid::fixed_days(7, 8);
    let bounds = Rect::new([0.0, 0.0], [100.0, 100.0]);
    let mut pois = Vec::new();
    for i in 0..40u32 {
        let x = (i % 8) as f64 * 12.0 + 2.0;
        let y = (i / 8) as f64 * 18.0 + 5.0;
        let series = AggregateSeries::from_pairs(
            (0..8u32).map(|e| (e, ((i as u64 * 7 + e as u64 * 3) % 11) / 2)),
        );
        pois.push((Poi::new(i, x, y), series));
    }
    (grid, bounds, pois)
}
