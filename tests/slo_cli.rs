//! End-to-end pin of the telemetry tooling exit codes: `serve --stats-out`
//! must emit a readable snapshot, `knnta slo` must exit 0 when the window
//! quantiles hold the bounds and non-zero when they don't, and `knnta top` /
//! `knnta report --check` must accept the emitted artifacts.

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;

fn knnta() -> Command {
    Command::new(env!("CARGO_BIN_EXE_knnta"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("knnta-slo-test-{}-{name}", std::process::id()));
    p
}

/// One shared `serve` run: every test below reads the same artifacts.
fn artifacts() -> &'static (PathBuf, PathBuf, PathBuf) {
    static ARTIFACTS: OnceLock<(PathBuf, PathBuf, PathBuf)> = OnceLock::new();
    ARTIFACTS.get_or_init(|| {
        let snap = tmp("snapshot.json");
        let tail = tmp("tail.json");
        let trace = tmp("trace.json");
        let out = knnta()
            .args(["serve", "--dataset", "GS", "--scale", "0.004", "--seed", "11"])
            .args(["--shards", "2", "--workers", "1", "--queries", "160"])
            .args(["--rate", "4000", "--max-batch", "8"])
            .args(["--stats-out", snap.to_str().unwrap()])
            .args(["--stats-interval-ms", "20"])
            .args(["--tail-out", tail.to_str().unwrap()])
            .args(["--trace-out", trace.to_str().unwrap()])
            .output()
            .expect("run serve");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("window:"), "serve must report window quantiles: {text}");
        assert!(text.contains("tail:"), "serve must report tail capture: {text}");
        (snap, tail, trace)
    })
}

#[test]
fn slo_passes_generous_bounds_with_exit_zero() {
    let (snap, _, _) = artifacts();
    // 120 s bounds: any functioning run holds them.
    let out = knnta()
        .args(["slo", "--snapshot", snap.to_str().unwrap()])
        .args(["--p50-us", "120000000", "--p95-us", "120000000", "--p99-us", "120000000"])
        .output()
        .expect("run slo");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{text}{}", String::from_utf8_lossy(&out.stderr));
    assert!(text.contains("all bounds hold"), "{text}");
}

#[test]
fn slo_flags_violations_with_nonzero_exit() {
    let (snap, _, _) = artifacts();
    // A 1 µs p99 bound is unsatisfiable: submit-to-answer latency includes
    // at least one admission flush delay.
    let out = knnta()
        .args(["slo", "--snapshot", snap.to_str().unwrap(), "--p99-us", "1"])
        .output()
        .expect("run slo");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("VIOLATION"), "{text}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("violated"),
        "stderr names the failure"
    );
}

#[test]
fn slo_rejects_unusable_requests() {
    let (snap, _, _) = artifacts();
    // No bounds at all.
    let out = knnta()
        .args(["slo", "--snapshot", snap.to_str().unwrap()])
        .output()
        .expect("run slo");
    assert_eq!(out.status.code(), Some(1));
    // Unknown histogram.
    let out = knnta()
        .args(["slo", "--snapshot", snap.to_str().unwrap()])
        .args(["--hist", "no.such.metric", "--p95-us", "1000"])
        .output()
        .expect("run slo");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no.such.metric"));
}

#[test]
fn top_renders_the_emitted_snapshot() {
    let (snap, _, _) = artifacts();
    let out = knnta()
        .args(["top", snap.to_str().unwrap()])
        .output()
        .expect("run top");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("knnta.snapshot.v1"), "{text}");
    assert!(text.contains("knnta.service.window.e2e_us"), "{text}");
    assert!(text.contains("counters:"), "{text}");
    assert!(text.contains("gauges:"), "{text}");
}

#[test]
fn report_groups_live_service_spans() {
    let (_, _, trace) = artifacts();
    let out = knnta()
        .args(["report", trace.to_str().unwrap(), "--check"])
        .output()
        .expect("run report");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("service phases:"), "{text}");
    for phase in ["admit", "tile", "scatter", "merge"] {
        assert!(text.contains(phase), "missing phase `{phase}`: {text}");
    }
    assert!(text.contains("scatter by shard:"), "{text}");
    assert!(text.contains("retries"), "{text}");
}

#[test]
fn report_accepts_the_tail_trace() {
    let (_, tail, _) = artifacts();
    let out = knnta()
        .args(["report", tail.to_str().unwrap(), "--check"])
        .output()
        .expect("run report");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-query segments:"), "{text}");
    assert!(text.contains("scatter by shard:"), "{text}");
}
