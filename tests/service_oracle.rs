//! Service-level differential oracle (`DESIGN.md` §15).
//!
//! Whatever the service does between `submit` and answer — streaming
//! admission into Hilbert locality tiles, deadline-or-size flushes, POI
//! partitioning across engine shards, per-shard planner-driven execution,
//! scatter-gather merge — each response must be **bit-identical** to the
//! unsharded, one-at-a-time execution of the same query on a single
//! [`TarIndex`] built from the same POI snapshot. Sharding and batching
//! are allowed to change *when* and *where* work happens, never *which*
//! answer comes back.
//!
//! Two layers:
//!
//! * a deterministic sweep over the full configuration grid — shard
//!   counts {1, 2, 4, 8} × worker counts × flush policies (singleton
//!   flushes, mixed, one-big-tile) — on the power-law client stream;
//! * a randomized property (`knnta_util::prop`) drawing the service
//!   configuration *and* the query stream, so failures print a
//!   `KNNTA_PROP_SEED=…` replay line.

mod common;

use common::small_dataset;
use knnta::core::{IndexConfig, Obs, QueryHit, TarIndex};
use knnta::service::client::{powerlaw_queries, ClientConfig};
use knnta::service::{Service, ServiceConfig};
use knnta::{AggregateSeries, EpochGrid, KnntaQuery, Poi, TimeInterval, Timestamp};
use rtree::Rect;
use std::sync::OnceLock;
use std::time::Duration;

/// Bitwise identity key: no float tolerance anywhere.
fn key(hits: &[QueryHit]) -> Vec<(u32, u64, u64)> {
    hits.iter()
        .map(|h| (h.poi.0, h.score.to_bits(), h.aggregate))
        .collect()
}

fn soak() -> bool {
    std::env::var("KNNTA_SOAK").map_or(false, |v| v != "0" && !v.is_empty())
}

/// The shared fixture: one dataset snapshot, the unsharded reference tree
/// built from it, and the deterministic power-law query stream.
struct Fixture {
    grid: EpochGrid,
    bounds: Rect<2>,
    pois: Vec<(Poi, AggregateSeries)>,
    reference: TarIndex,
    stream: Vec<KnntaQuery>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dataset = small_dataset();
        let grid = dataset.grid.clone();
        let bounds = Rect::new(dataset.bounds.0, dataset.bounds.1);
        // The service and the reference must serve the *same* POI set, so
        // both are built from one snapshot (not via `common::index_of`,
        // which consumes the snapshot internally).
        let pois: Vec<(Poi, AggregateSeries)> = dataset
            .snapshot(grid.len())
            .into_iter()
            .map(|(id, pos, series)| (Poi { id, pos }, series))
            .collect();
        let mut reference = TarIndex::build(
            IndexConfig::default(),
            grid.clone(),
            bounds,
            pois.iter().cloned(),
        );
        reference.set_obs(Obs::disabled());
        let stream = powerlaw_queries(
            &dataset,
            &ClientConfig {
                queries: if soak() { 120 } else { 24 },
                ..ClientConfig::default()
            },
        );
        Fixture {
            grid,
            bounds,
            pois,
            reference,
            stream,
        }
    })
}

fn start(fix: &Fixture, config: ServiceConfig) -> Service {
    Service::start(
        config,
        fix.grid.clone(),
        fix.bounds,
        fix.pois.clone(),
        Obs::disabled(),
    )
}

/// Submits `queries` to `service` and asserts every answer is bit-identical
/// to the reference tree's one-at-a-time execution.
fn assert_oracle(fix: &Fixture, service: &Service, queries: &[KnntaQuery], label: &str) {
    let tickets: Vec<_> = queries.iter().map(|q| service.submit(*q)).collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait();
        let want = fix.reference.query(&queries[i]);
        assert_eq!(
            key(&got),
            key(&want),
            "{label}: query {i} diverged from the unsharded reference",
        );
    }
}

/// The full deterministic grid: shard counts {1, 2, 4, 8} × worker counts
/// {1, 2} × three flush policies — singleton flushes (`max_batch = 1`, the
/// pure scatter path), a mixed policy that flushes on whichever of size or
/// deadline trips first, and a one-big-tile policy (every query of the
/// stream lands in a single Hilbert-ordered batch).
#[test]
fn sharded_service_matches_unsharded_reference_across_grid() {
    let fix = fixture();
    let flush_policies: [(usize, Duration); 3] = [
        (1, Duration::ZERO),
        (8, Duration::from_micros(200)),
        (fix.stream.len(), Duration::from_millis(2)),
    ];
    for shards in [1usize, 2, 4, 8] {
        for workers in [1usize, 2] {
            for (max_batch, max_delay) in flush_policies {
                let config = ServiceConfig {
                    shards,
                    workers,
                    max_batch,
                    max_delay,
                    ..ServiceConfig::default()
                };
                let service = start(fix, config);
                let label = format!(
                    "shards={shards} workers={workers} max_batch={max_batch} \
                     max_delay={max_delay:?}"
                );
                assert_oracle(fix, &service, &fix.stream, &label);
            }
        }
    }
}

/// Shutdown mid-stream still answers everything already submitted: the
/// admission loop drains its queue before closing the shard channels, so
/// no accepted query is dropped — and the answers still match the oracle.
#[test]
fn shutdown_drains_accepted_queries() {
    let fix = fixture();
    let mut service = start(
        fix,
        ServiceConfig {
            shards: 4,
            workers: 2,
            max_batch: 16,
            max_delay: Duration::from_millis(5),
            ..ServiceConfig::default()
        },
    );
    let queries = &fix.stream[..fix.stream.len().min(16)];
    let tickets: Vec<_> = queries.iter().map(|q| service.submit(*q)).collect();
    service.shutdown();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait();
        let want = fix.reference.query(&queries[i]);
        assert_eq!(key(&got), key(&want), "drained query {i} diverged");
    }
}

/// Randomized configurations *and* query streams. Failures print the
/// harness's `KNNTA_PROP_SEED=…` replay line. The soak lane in
/// `scripts/verify.sh` runs this at 5× the default case count via
/// `KNNTA_PROP_CASES`.
#[test]
fn random_service_configs_match_unsharded_reference() {
    let fix = fixture();
    knnta::util::prop::check("service_oracle_random_configs", 6, |g| {
        let config = ServiceConfig {
            shards: g.usize_in(1..9),
            workers: g.usize_in(1..4),
            max_batch: g.usize_in(1..17),
            max_delay: Duration::from_micros(g.u64_in(0..1000)),
            ..ServiceConfig::default()
        };
        let label = format!(
            "random shards={} workers={} max_batch={} max_delay={:?}",
            config.shards, config.workers, config.max_batch, config.max_delay
        );
        let tc = fix.grid.tc();
        let queries = g.vec(4, 24, |g| {
            // Queries anywhere in data space (not only at POI positions),
            // any power-of-two recent interval, any k regime.
            let point = [
                g.f64_in(fix.bounds.min[0]..fix.bounds.max[0]),
                g.f64_in(fix.bounds.min[1]..fix.bounds.max[1]),
            ];
            let len = (1i64 << g.u32_in(0..10)) * Timestamp::DAY;
            KnntaQuery::new(point, TimeInterval::new(tc - len, tc))
                .with_k(*g.pick(&[1usize, 3, 10, 50]))
                .with_alpha0(g.f64_in(0.0..1.0))
        });
        let service = start(fix, config);
        assert_oracle(fix, &service, &queries, &label);
    });
}
