//! Trace-schema stability and well-formedness of the observability layer.
//!
//! Three contracts pinned here:
//!
//! * **Round-trip**: the `knnta.trace.v1` / `knnta.metrics.v1` JSON emitted
//!   by `--trace-out` / `--metrics-out` parses back (via the in-repo
//!   `knnta-util` JSON parser behind `TraceDoc::parse`) into exactly the
//!   document that was serialized.
//! * **Nesting**: every execution mode — sequential, parallel at every
//!   thread count, paged, collective batch — emits a structurally
//!   well-formed trace: no orphaned spans, children nested inside parents,
//!   events timestamped within their spans.
//! * **Schema stability**: the serialized form of a fixed synthetic trace
//!   is pinned byte-for-byte in `tests/fixtures/trace_schema.golden.json`
//!   (regenerate deliberately with `KNNTA_REGEN_FIXTURES=1`).

mod common;

use common::{index_of, small_dataset};
use knnta::core::{BatchOptions, Grouping, StorageBackend, TarIndex};
use knnta::obs::{MetricsDoc, Obs, SpanId, TraceDoc, Tracer};
use knnta::pagestore::BufferPoolConfig;
use knnta::{KnntaQuery, TimeInterval};
use std::path::Path;

const GOLDEN: &str = "tests/fixtures/trace_schema.golden.json";

fn observed_index() -> TarIndex {
    let dataset = small_dataset();
    let mut index = index_of(&dataset, Grouping::TarIntegral);
    index.set_obs(Obs::enabled());
    index
}

fn sample_query(k: usize) -> KnntaQuery {
    KnntaQuery::new([40.0, 55.0], TimeInterval::days(0, 63))
        .with_k(k)
        .with_alpha0(0.4)
}

fn sample_batch() -> Vec<KnntaQuery> {
    vec![
        sample_query(5),
        KnntaQuery::new([10.0, 20.0], TimeInterval::days(7, 28)).with_k(3),
        KnntaQuery::new([80.0, 75.0], TimeInterval::days(14, 63)).with_k(8),
        sample_query(1),
    ]
}

/// Every execution mode emits a well-formed trace, with the expected span
/// vocabulary, at every thread count.
#[test]
fn span_nesting_well_formed_across_modes() {
    // Sequential, in-memory.
    let index = observed_index();
    let _ = index.query(&sample_query(5));
    let trace = index.obs().trace_snapshot();
    trace.validate().expect("sequential trace");
    assert_eq!(trace.spans_named("query").count(), 1);
    assert_eq!(trace.spans_named("search.seq").count(), 1);
    assert!(trace.spans_named("phase.filter").count() >= 1);

    // Parallel, every thread count.
    for threads in [1, 2, 4, 8] {
        let index = observed_index();
        let _ = index.query_parallel(&sample_query(10), threads);
        let trace = index.obs().trace_snapshot();
        trace
            .validate()
            .unwrap_or_else(|e| panic!("parallel trace (threads={threads}): {e}"));
        assert_eq!(trace.spans_named("worker").count(), threads);
        let query = trace.spans_named("query").next().expect("query span");
        for w in trace.spans_named("worker") {
            assert_eq!(w.parent, query.id, "threads={threads}");
        }
        assert!(
            trace.events.iter().filter(|e| e.name == "pop").count() >= 1,
            "threads={threads}: pop events missing"
        );
    }

    // Sequential over the paged backend.
    let index = observed_index();
    let paged = index.materialize_paged_nodes(index.config_node_size(), BufferPoolConfig::lru(10));
    let _ = index.query_on(&sample_query(5), StorageBackend::Paged(&paged));
    let trace = index.obs().trace_snapshot();
    trace.validate().expect("paged trace");
    let query = trace.spans_named("query").next().expect("query span");
    assert_eq!(
        query.attr("backend").and_then(|v| v.as_str()),
        Some("paged")
    );

    // Collective batch, in-memory and paged.
    let index = observed_index();
    let _ = index.query_batch_collective(&sample_batch());
    let trace = index.obs().trace_snapshot();
    trace.validate().expect("batch trace");
    assert_eq!(trace.spans_named("batch").count(), 1);
    assert!(trace.spans_named("batch.tile").count() >= 1);

    let index = observed_index();
    let paged = index.materialize_paged_nodes(index.config_node_size(), BufferPoolConfig::lru(10));
    let _ = index.query_batch_collective_on(
        &sample_batch(),
        &BatchOptions::default(),
        StorageBackend::Paged(&paged),
    );
    let trace = index.obs().trace_snapshot();
    trace.validate().expect("paged batch trace");
    let batch = trace.spans_named("batch").next().expect("batch span");
    assert_eq!(
        batch.attr("backend").and_then(|v| v.as_str()),
        Some("paged")
    );
}

/// The serialized artifacts parse back into exactly the snapshot documents.
#[test]
fn artifacts_round_trip_through_parser() {
    let index = observed_index();
    let paged = index.materialize_paged_nodes(index.config_node_size(), BufferPoolConfig::lru(10));
    let _ = index.query(&sample_query(5));
    let _ = index.query_parallel(&sample_query(10), 4);
    let _ = index.query_on(&sample_query(3), StorageBackend::Paged(&paged));
    let _ = index.query_batch_collective(&sample_batch());

    let trace = index.obs().trace_snapshot();
    assert!(!trace.spans.is_empty());
    let parsed = TraceDoc::parse(&trace.to_json()).expect("trace JSON parses");
    assert_eq!(parsed, trace, "trace round-trip drifted");

    let metrics = index.obs().metrics_snapshot();
    assert!(!metrics.counters.is_empty());
    let parsed = MetricsDoc::parse(&metrics.to_json()).expect("metrics JSON parses");
    assert_eq!(parsed, metrics, "metrics round-trip drifted");
}

/// The published node-access counters are exactly the oracle accounting —
/// on every backend and thread count.
#[test]
fn metrics_counters_match_access_stats() {
    let index = observed_index();
    let paged = index.materialize_paged_nodes(index.config_node_size(), BufferPoolConfig::lru(10));
    index.stats().reset();
    let _ = index.query(&sample_query(5));
    let seq = index.stats().node_accesses();
    for threads in [2, 4] {
        index.stats().reset();
        let _ = index.query_parallel(&sample_query(5), threads);
        assert_eq!(index.stats().node_accesses(), seq, "threads={threads}");
    }
    index.stats().reset();
    let _ = index.query_on(&sample_query(5), StorageBackend::Paged(&paged));
    assert_eq!(index.stats().node_accesses(), seq, "paged");

    let metrics = index.obs().metrics_snapshot();
    let counter = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    // 4 executions of the same query, each publishing the sequential count.
    assert_eq!(counter("knnta.core.search.node_accesses"), 4 * seq);
    // The paged run's physical I/O went through the buffer counters.
    assert!(
        counter("knnta.pagestore.buffer.lru.hits")
            + counter("knnta.pagestore.buffer.lru.misses")
            > 0
    );
}

/// The `knnta.trace.v1` serialization of a fixed synthetic trace is pinned
/// byte-for-byte.
#[test]
fn trace_schema_golden_file() {
    let t = Tracer::new();
    let q = t.add_span(
        "query",
        SpanId::NONE,
        0,
        1_000_000,
        vec![
            ("mode".to_string(), "seq".into()),
            ("backend".to_string(), "mem".into()),
            ("k".to_string(), 5u64.into()),
            ("alpha0".to_string(), 0.3f64.into()),
        ],
    );
    let s = t.add_span("search.seq", q, 10, 999_000, vec![]);
    t.add_span("phase.filter", s, 10, 600_000, vec![]);
    t.add_span("phase.tia", s, 600_000, 900_000, vec![]);
    t.add_span("phase.io", s, 900_000, 999_000, vec![]);
    let w = t.add_span(
        "worker",
        q,
        10,
        999_000,
        vec![
            ("worker".to_string(), 0u64.into()),
            ("pops".to_string(), 2u64.into()),
            ("steals".to_string(), 1u64.into()),
        ],
    );
    t.add_event(
        w,
        "pop",
        500,
        vec![
            ("key".to_string(), 0.25f64.into()),
            ("stolen".to_string(), true.into()),
            ("expanded".to_string(), true.into()),
            ("is_leaf".to_string(), false.into()),
            ("counted".to_string(), true.into()),
        ],
    );
    let doc = t.snapshot();
    doc.validate().expect("synthetic trace is well-formed");
    let json = doc.to_json();

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var("KNNTA_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (regenerate with KNNTA_REGEN_FIXTURES=1)",
            path.display()
        )
    });
    assert_eq!(
        json, want,
        "knnta.trace.v1 serialization drifted from the golden file \
         (schema changes must be deliberate: bump the schema id and \
         regenerate)"
    );
}
