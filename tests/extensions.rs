//! Integration tests for the production extensions: bulk loading, parallel
//! batches, live ingestion, persistence, the public skyline, and the
//! multi-change MWA — all on generated LBSN data.

mod common;

use common::{assert_same_answer, baseline_of, index_of, small_dataset};
use knnta::core::{Grouping, IndexConfig, LiveIndex, TarIndex};
use knnta::lbsn::{IntervalAnchor, Workload};
use knnta::{CheckIn, KnntaQuery, Poi, PoiId, Timestamp};
use rtree::Rect;
use std::collections::HashSet;

#[test]
fn bulk_build_matches_baseline_on_dataset() {
    let dataset = small_dataset();
    let baseline = baseline_of(&dataset);
    let workload = Workload::generate(&dataset, 20, IntervalAnchor::Random, 31);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa] {
        let index = TarIndex::build_bulk(
            IndexConfig::with_grouping(grouping),
            dataset.grid.clone(),
            Rect::new(dataset.bounds.0, dataset.bounds.1),
            dataset
                .snapshot(dataset.grid.len())
                .into_iter()
                .map(|(id, pos, s)| (Poi { id, pos }, s)),
        );
        for &(point, interval) in &workload.queries {
            let q = KnntaQuery::new(point, interval).with_k(10).with_alpha0(0.3);
            assert_same_answer(&index.query(&q), &baseline.query(&q), "bulk");
        }
    }
}

#[test]
fn bulk_build_is_faster_and_tighter() {
    let dataset = small_dataset();
    let pois: Vec<_> = dataset
        .snapshot(dataset.grid.len())
        .into_iter()
        .map(|(id, pos, s)| (Poi { id, pos }, s))
        .collect();
    let grid = dataset.grid.clone();
    let bounds = Rect::new(dataset.bounds.0, dataset.bounds.1);
    let t0 = std::time::Instant::now();
    let incremental = TarIndex::build(IndexConfig::default(), grid.clone(), bounds, pois.clone());
    let incremental_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let bulk = TarIndex::build_bulk(IndexConfig::default(), grid, bounds, pois);
    let bulk_time = t0.elapsed();
    assert!(
        bulk_time < incremental_time,
        "bulk {bulk_time:?} vs incremental {incremental_time:?}"
    );
    assert!(
        bulk.node_count() <= incremental.node_count(),
        "bulk packs tighter: {} vs {}",
        bulk.node_count(),
        incremental.node_count()
    );
}

#[test]
fn parallel_batch_matches_sequential_on_dataset() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let queries: Vec<KnntaQuery> = Workload::generate(&dataset, 64, IntervalAnchor::Random, 32)
        .queries
        .iter()
        .map(|&(p, iv)| KnntaQuery::new(p, iv).with_k(10).with_alpha0(0.3))
        .collect();
    let sequential = index.query_batch_individual(&queries);
    let parallel = index.query_batch_parallel(&queries, 4);
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            s.iter().map(|h| h.poi).collect::<Vec<_>>(),
            p.iter().map(|h| h.poi).collect::<Vec<_>>()
        );
    }
}

#[test]
fn live_streaming_matches_batch_build() {
    let dataset = small_dataset();
    let grid = dataset.grid.clone();
    let bounds = Rect::new(dataset.bounds.0, dataset.bounds.1);
    let snapshot = dataset.snapshot(grid.len());

    // Reference: the fully-built index.
    let reference = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        bounds,
        snapshot.iter().map(|(id, pos, s)| (Poi { id: *id, pos: *pos }, s.clone())),
    );

    // Live: start empty, stream one check-in event per (poi, epoch, unit).
    let empty = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        bounds,
        snapshot
            .iter()
            .map(|(id, pos, _)| (Poi { id: *id, pos: *pos }, Default::default())),
    );
    let live = LiveIndex::new(empty, 0);
    for epoch in 0..grid.len() {
        for (id, _, series) in &snapshot {
            let v = series.get(epoch as u32);
            if v > 0 {
                live.record(CheckIn::with_value(
                    *id,
                    grid.epoch(epoch).start + 60,
                    v as u32,
                ));
            }
        }
        live.seal_epoch();
    }
    live.validate();

    let workload = Workload::generate(&dataset, 15, IntervalAnchor::Random, 33);
    for &(point, interval) in &workload.queries {
        let q = KnntaQuery::new(point, interval).with_k(10).with_alpha0(0.3);
        assert_same_answer(&live.query(&q), &reference.query(&q), "live stream");
    }
}

#[test]
fn persistence_roundtrip_on_dataset() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let bytes = index.save_to_vec();
    let loaded = TarIndex::load_from_slice(&bytes).expect("valid snapshot");
    assert_eq!(loaded.len(), index.len());
    let workload = Workload::generate(&dataset, 15, IntervalAnchor::Recent, 34);
    for &(point, interval) in &workload.queries {
        let q = KnntaQuery::new(point, interval).with_k(10).with_alpha0(0.3);
        assert_same_answer(&loaded.query(&q), &index.query(&q), "persisted");
    }
}

#[test]
fn skyline_on_dataset_contains_all_weighted_winners() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let workload = Workload::generate(&dataset, 6, IntervalAnchor::Random, 35);
    for &(point, interval) in &workload.queries {
        let sky: HashSet<PoiId> = index.skyline(point, interval).iter().map(|h| h.poi).collect();
        assert!(!sky.is_empty());
        for alpha0 in [0.1, 0.5, 0.9] {
            let q = KnntaQuery::new(point, interval).with_k(1).with_alpha0(alpha0);
            let top = index.query(&q)[0].poi;
            assert!(sky.contains(&top), "top-1 at α0={alpha0} on the skyline");
        }
    }
}

#[test]
fn mwa_changing_m_walks_outward_on_dataset() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let point = dataset.positions[10];
    let tc = dataset.grid.tc();
    let interval = knnta::TimeInterval::new(tc - 64 * Timestamp::DAY, tc);
    let q = KnntaQuery::new(point, interval).with_k(5).with_alpha0(0.5);
    let original: HashSet<PoiId> = index.query(&q).iter().map(|h| h.poi).collect();
    let m1 = index.mwa_changing_m(&q, 1);
    let m2 = index.mwa_changing_m(&q, 2);
    // The m=2 boundary lies at or beyond the m=1 boundary on each side.
    if let (Some(a), Some(b)) = (m1.lower, m2.lower) {
        assert!(b <= a + 1e-12, "lower walks outward: {b} <= {a}");
        let past: HashSet<PoiId> = index
            .query(&q.with_alpha0((b - 1e-7).max(1e-6)))
            .iter()
            .map(|h| h.poi)
            .collect();
        assert!(original.difference(&past).count() >= 2);
    }
    if let (Some(a), Some(b)) = (m1.upper, m2.upper) {
        assert!(b >= a - 1e-12, "upper walks outward: {b} >= {a}");
    }
}
