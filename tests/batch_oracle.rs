//! Differential oracle for collective batch processing (Section 7.2 plus
//! the Hilbert-ordering / aggregate-memoisation enhancements): for every
//! grouping strategy, storage backend, batch ordering and cache setting,
//! `query_batch_collective_on` must be **bit-identical** — same POIs, same
//! order, bit-equal scores, equal aggregates — to running the queries one
//! by one, and must never touch more tree nodes than the individual runs.

mod common;

use common::{index_of, small_dataset};
use knnta::core::{BatchOptions, BatchOrder, Grouping, QueryHit, StorageBackend};
use knnta::lbsn::{IntervalAnchor, Workload};
use knnta::pagestore::{BufferPoolConfig, PolicyKind};
use knnta::util::rng::{Rng, StdRng};
use knnta::KnntaQuery;

/// Batch size for the differential suite, 10× under `KNNTA_SOAK=1`
/// (the soak lane in `scripts/verify.sh`).
fn batch_cases() -> usize {
    let soak = std::env::var("KNNTA_SOAK").map_or(false, |v| v != "0" && !v.is_empty());
    if soak {
        200
    } else {
        20
    }
}

/// A randomized batch with duplicates and mixed k (including k = 0).
fn mixed_batch(dataset: &knnta::lbsn::LbsnDataset, count: usize, seed: u64) -> Vec<KnntaQuery> {
    let workload = Workload::generate(dataset, count, IntervalAnchor::Random, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C_0DE5);
    let mut batch: Vec<KnntaQuery> = workload
        .queries
        .iter()
        .map(|&(point, interval)| {
            let k = match rng.gen_range(0..8u32) {
                0 => 0, // empty answer, must not disturb the rest
                _ => rng.gen_range(1..=60usize),
            };
            let alpha0 = rng.gen_range(0.05..0.95);
            KnntaQuery::new(point, interval).with_k(k).with_alpha0(alpha0)
        })
        .collect();
    // Duplicate a third of the batch verbatim: duplicates are where the
    // shared-front-node scheme and the aggregate cache earn their keep.
    for i in 0..count / 3 {
        let dup = batch[i * 2 % count].clone();
        batch.push(dup);
    }
    batch
}

fn assert_bit_identical(got: &[Vec<QueryHit>], want: &[Vec<QueryHit>], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: batch sizes differ");
    for (qi, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{ctx}: query {qi} result sizes differ");
        for (rank, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(
                (a.poi, a.score.to_bits(), a.aggregate),
                (b.poi, b.score.to_bits(), b.aggregate),
                "{ctx}: query {qi} rank {rank}"
            );
        }
    }
}

fn batch_options() -> [(BatchOptions, &'static str); 4] {
    let with = |order, agg_cache| BatchOptions {
        order,
        agg_cache,
        ..BatchOptions::default()
    };
    [
        (with(BatchOrder::Hilbert, true), "hilbert+cache"),
        (with(BatchOrder::Hilbert, false), "hilbert"),
        (with(BatchOrder::Input, true), "input+cache"),
        (with(BatchOrder::Input, false), "input"),
    ]
}

#[test]
fn collective_is_bit_identical_to_individual_in_memory() {
    let dataset = small_dataset();
    let batch = mixed_batch(&dataset, batch_cases(), 0xB47C_0001);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let want = index.query_batch_individual(&batch);
        for (opts, name) in batch_options() {
            let got = index.query_batch_collective_with(&batch, &opts);
            assert_bit_identical(&got, &want, &format!("{grouping} {name}"));
        }
    }
}

#[test]
fn collective_is_bit_identical_to_individual_paged() {
    let dataset = small_dataset();
    let batch = mixed_batch(&dataset, batch_cases().max(12) / 2, 0xB47C_0002);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let want = index.query_batch_individual(&batch);
        for policy in PolicyKind::ALL {
            let paged = index.materialize_paged_nodes(1024, BufferPoolConfig::new(8, policy));
            let backend = StorageBackend::Paged(&paged);
            let got_ind = index.query_batch_individual_on(&batch, backend);
            assert_bit_identical(&got_ind, &want, &format!("{grouping} {policy} individual"));
            for (opts, name) in batch_options() {
                let got = index.query_batch_collective_on(&batch, &opts, backend);
                assert_bit_identical(&got, &want, &format!("{grouping} {policy} {name}"));
            }
        }
    }
}

#[test]
fn collective_node_accesses_never_exceed_individual() {
    let dataset = small_dataset();
    let batch = mixed_batch(&dataset, batch_cases(), 0xB47C_0003);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        index.stats().reset();
        let _ = index.query_batch_individual(&batch);
        let individual = index.stats().node_accesses();
        for (opts, name) in batch_options() {
            index.stats().reset();
            let _ = index.query_batch_collective_with(&batch, &opts);
            let collective = index.stats().node_accesses();
            assert!(
                collective <= individual,
                "{grouping} {name}: collective {collective} > individual {individual}"
            );
        }
    }
}

#[test]
fn duplicate_heavy_batches_share_most_node_accesses() {
    // A batch of one query repeated N times must cost roughly one query's
    // worth of node accesses, not N — the whole point of the scheme.
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let workload = Workload::generate(&dataset, 1, IntervalAnchor::Random, 5);
    let (point, interval) = workload.queries[0];
    let q = KnntaQuery::new(point, interval).with_k(20).with_alpha0(0.3);
    let n = 32usize;
    let batch: Vec<KnntaQuery> = std::iter::repeat(q).take(n).collect();
    index.stats().reset();
    let _ = index.query_batch_individual(&batch);
    let individual = index.stats().node_accesses();
    index.stats().reset();
    let _ = index.query_batch_collective(&batch);
    let collective = index.stats().node_accesses();
    assert!(
        collective * (n as u64) <= individual * 2,
        "{n} duplicates: collective {collective} should be ~individual/{n} of {individual}"
    );
}

#[test]
fn empty_and_all_k_zero_batches_touch_nothing() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let tc = dataset.grid.tc();
    let q0 = KnntaQuery::new(dataset.positions[0], knnta::TimeInterval::new(tc, tc)).with_k(0);
    for (opts, name) in batch_options() {
        index.stats().reset();
        assert!(index.query_batch_collective_with(&[], &opts).is_empty());
        let got = index.query_batch_collective_with(&[q0.clone(), q0.clone()], &opts);
        assert_eq!(got, vec![Vec::new(), Vec::new()], "{name}");
        assert_eq!(
            index.stats().node_accesses(),
            0,
            "{name}: degenerate batches must not touch the tree"
        );
    }
}

#[test]
fn ordering_is_independent_of_input_permutation() {
    // Hilbert ordering is a function of the query multiset: permuting the
    // batch permutes the answers identically (results follow their query).
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let batch = mixed_batch(&dataset, 16, 0xB47C_0004);
    let base = index.query_batch_collective(&batch);
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mut perm: Vec<usize> = (0..batch.len()).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let shuffled: Vec<KnntaQuery> = perm.iter().map(|&i| batch[i].clone()).collect();
    let got = index.query_batch_collective(&shuffled);
    for (pos, &orig) in perm.iter().enumerate() {
        let a: Vec<_> = got[pos].iter().map(|h| (h.poi, h.score.to_bits())).collect();
        let b: Vec<_> = base[orig].iter().map(|h| (h.poi, h.score.to_bits())).collect();
        assert_eq!(a, b, "permuted query {pos} (originally {orig})");
    }
}

#[test]
fn batch_order_cli_names_round_trip() {
    for order in [BatchOrder::Hilbert, BatchOrder::Input] {
        assert_eq!(BatchOrder::parse(&order.to_string()), Some(order));
    }
    assert_eq!(BatchOrder::parse("zorder"), None);
}
