//! End-to-end tests of the `knnta` command-line tool: generate → build →
//! stats/query/mwa/skyline, plus error handling.

use std::path::PathBuf;
use std::process::Command;

fn knnta() -> Command {
    Command::new(env!("CARGO_BIN_EXE_knnta"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("knnta-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_pipeline() {
    let csv = tmp("venues.csv");
    let idx = tmp("city.idx");

    // generate
    let out = knnta()
        .args(["generate", "--dataset", "GS", "--scale", "0.003", "--seed", "5"])
        .args(["--out", csv.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body = std::fs::read_to_string(&csv).unwrap();
    assert!(body.starts_with("id,x,y,epoch,count"));
    assert!(body.lines().count() > 100);

    // build
    let out = knnta()
        .args(["build", "--input", csv.to_str().unwrap()])
        .args(["--out", idx.to_str().unwrap(), "--grouping", "tar"])
        .output()
        .expect("run build");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(idx.exists());

    // stats
    let out = knnta()
        .args(["stats", "--index", idx.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("grouping:   TAR-tree"), "{text}");
    assert!(text.contains("epochs:"), "{text}");

    // query
    let out = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--k", "5", "--alpha0", "0.3"])
        .output()
        .expect("run query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() >= 6, "5 hits + header: {text}");

    // query --threads: the parallel traversal must print byte-identical
    // output (same hits, same order, same node-access count) for any N.
    let sequential = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--k", "25", "--alpha0", "0.3", "--threads", "1"])
        .output()
        .expect("run sequential query");
    assert!(sequential.status.success());
    for threads in ["2", "4", "8"] {
        let out = knnta()
            .args(["query", "--index", idx.to_str().unwrap()])
            .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
            .args(["--k", "25", "--alpha0", "0.3", "--threads", threads])
            .output()
            .expect("run parallel query");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&sequential.stdout),
            "--threads {threads} diverged"
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stderr),
            String::from_utf8_lossy(&sequential.stderr),
            "--threads {threads} node accesses diverged"
        );
    }
    let out = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--threads", "0"])
        .output()
        .expect("run zero-thread query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));

    // query --paged: answering from paged node storage must print
    // byte-identical hits for every policy and thread count.
    for policy in ["lru", "clock", "2q"] {
        for threads in ["1", "4"] {
            let out = knnta()
                .args(["query", "--index", idx.to_str().unwrap()])
                .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
                .args(["--k", "25", "--alpha0", "0.3", "--threads", threads])
                .args(["--paged", "--policy", policy, "--buffer-slots", "6"])
                .output()
                .expect("run paged query");
            assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
            assert_eq!(
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&sequential.stdout),
                "--paged --policy {policy} --threads {threads} diverged"
            );
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(
                err.contains(&format!("paged: {policy} policy, 6 slots")),
                "--policy {policy}: {err}"
            );
            assert!(err.contains("hit rate"), "{err}");
        }
    }

    // query --packed: the packed serving image must print byte-identical
    // hits, sequential and parallel.
    for threads in ["1", "4"] {
        let out = knnta()
            .args(["query", "--index", idx.to_str().unwrap()])
            .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
            .args(["--k", "25", "--alpha0", "0.3", "--threads", threads])
            .args(["--packed"])
            .output()
            .expect("run packed query");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&sequential.stdout),
            "--packed --threads {threads} diverged"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("packed:"), "{err}");
    }

    // --packed and --paged are mutually exclusive.
    let out = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--packed", "--paged"])
        .output()
        .expect("run packed+paged query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));

    // --policy / --buffer-slots only make sense with --paged.
    let out = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--policy", "clock"])
        .output()
        .expect("run policy-without-paged query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--paged"));

    // Unknown policies are rejected.
    let out = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--paged", "--policy", "mru"])
        .output()
        .expect("run bad-policy query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--policy"));

    // mwa
    let out = knnta()
        .args(["mwa", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--k", "3", "--alpha0", "0.5"])
        .output()
        .expect("run mwa");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("alpha0") || text.contains("no weight change"), "{text}");

    // skyline
    let out = knnta()
        .args(["skyline", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .output()
        .expect("run skyline");
    assert!(out.status.success());

    let _ = std::fs::remove_file(csv);
    let _ = std::fs::remove_file(idx);
}

#[test]
fn helpful_errors() {
    // No command.
    let out = knnta().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));

    // Unknown command.
    let out = knnta().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing required options.
    let out = knnta().args(["query", "--x", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--index"));

    // Bad dataset.
    let out = knnta()
        .args(["generate", "--dataset", "MARS", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));

    // Nonexistent index file.
    let out = knnta()
        .args(["stats", "--index", "/definitely/not/here.idx"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Bad alpha0.
    let csv = tmp("venues2.csv");
    let idx = tmp("city2.idx");
    knnta()
        .args(["generate", "--dataset", "LA", "--scale", "0.002", "--out"])
        .arg(csv.to_str().unwrap())
        .output()
        .unwrap();
    knnta()
        .args(["build", "--input", csv.to_str().unwrap(), "--out"])
        .arg(idx.to_str().unwrap())
        .output()
        .unwrap();
    let out = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "0", "--y", "0", "--from-day", "0", "--to-day", "7"])
        .args(["--alpha0", "1.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("alpha0"));
    let _ = std::fs::remove_file(csv);
    let _ = std::fs::remove_file(idx);
}

#[test]
fn bench_diff_flags_regressions_and_exits_nonzero() {
    let bench_diff = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_bench_diff"))
            .args(args)
            .output()
            .expect("run bench_diff")
    };
    let report = |p95_a: u64, p95_b: u64| {
        format!(
            "{{\"suite\": \"queries\", \"samples\": 10, \"results\": [\n\
             {{\"group\": \"parallel_single\", \"bench\": \"sequential\", \"p95_ns\": {p95_a}}},\n\
             {{\"group\": \"parallel_single\", \"bench\": \"threads/4\", \"p95_ns\": {p95_b}}}]}}\n"
        )
    };
    let old = tmp("bench-old.json");
    let new = tmp("bench-new.json");
    std::fs::write(&old, report(1000, 1000)).unwrap();

    // Within noise: exit 0.
    std::fs::write(&new, report(1100, 900)).unwrap();
    let out = bench_diff(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 regression(s)"));

    // A 2x p95 regression: exit 1 and name the bench.
    std::fs::write(&new, report(1000, 2000)).unwrap();
    let out = bench_diff(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("threads/4"), "{text}");

    // A loose threshold lets the same diff pass.
    let out = bench_diff(&[
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold",
        "1.5",
    ]);
    assert!(out.status.success());

    // Usage and parse errors: exit 2.
    assert_eq!(bench_diff(&[]).status.code(), Some(2));
    let garbage = tmp("bench-garbage.json");
    std::fs::write(&garbage, "not json").unwrap();
    let out = bench_diff(&[garbage.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));

    for f in [&old, &new, &garbage] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn batch_command_is_mode_invariant() {
    let csv = tmp("venues4.csv");
    let idx = tmp("city4.idx");
    let queries = tmp("batch-queries.csv");
    let out = knnta()
        .args(["generate", "--dataset", "GS", "--scale", "0.003", "--seed", "5"])
        .args(["--out", csv.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = knnta()
        .args(["build", "--input", csv.to_str().unwrap()])
        .args(["--out", idx.to_str().unwrap(), "--grouping", "tar"])
        .output()
        .expect("run build");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Header + comment + defaults (k, alpha0 omitted) + a duplicate + k=0.
    std::fs::write(
        &queries,
        "x,y,from_day,to_day,k,alpha0\n\
         # near the centre, recent month\n\
         50,50,150,180,5,0.3\n\
         50,50,150,180,5,0.3\n\
         10,80,0,180\n\
         70,20,60,120,0\n\
         30,30,0,30,3,0.7\n",
    )
    .unwrap();

    // The collective scheme must print byte-identical per-query results in
    // every configuration — orderings, cache settings, paged storage — and
    // match the one-at-a-time reference.
    let reference = knnta()
        .args(["batch", "--index", idx.to_str().unwrap()])
        .args(["--queries", queries.to_str().unwrap(), "--individual"])
        .output()
        .expect("run individual batch");
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let want = String::from_utf8_lossy(&reference.stdout);
    assert!(want.contains("query 0: 5 hit(s)"), "{want}");
    assert!(want.contains("query 3: 0 hit(s)"), "{want}");
    let variants: [&[&str]; 5] = [
        &[],
        &["--batch-order", "hilbert"],
        &["--batch-order", "input"],
        &["--no-agg-cache"],
        &["--batch-order", "input", "--no-agg-cache"],
    ];
    for extra in variants {
        let out = knnta()
            .args(["batch", "--index", idx.to_str().unwrap()])
            .args(["--queries", queries.to_str().unwrap()])
            .args(extra)
            .output()
            .expect("run collective batch");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            want,
            "collective {extra:?} diverged from individual"
        );
    }
    for policy in ["lru", "clock", "2q"] {
        let out = knnta()
            .args(["batch", "--index", idx.to_str().unwrap()])
            .args(["--queries", queries.to_str().unwrap()])
            .args(["--paged", "--policy", policy, "--buffer-slots", "6"])
            .output()
            .expect("run paged batch");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            want,
            "--paged --policy {policy} diverged"
        );
    }
    let out = knnta()
        .args(["batch", "--index", idx.to_str().unwrap()])
        .args(["--queries", queries.to_str().unwrap()])
        .args(["--packed"])
        .output()
        .expect("run packed batch");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        want,
        "--packed batch diverged"
    );

    // Unknown orderings are rejected.
    let out = knnta()
        .args(["batch", "--index", idx.to_str().unwrap()])
        .args(["--queries", queries.to_str().unwrap()])
        .args(["--batch-order", "zorder"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--batch-order"));

    // Malformed rows are rejected with the offending line.
    let bad = tmp("batch-bad.csv");
    std::fs::write(&bad, "50,50,180,150\n").unwrap();
    let out = knnta()
        .args(["batch", "--index", idx.to_str().unwrap()])
        .args(["--queries", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("from_day"));
    std::fs::write(&bad, "50,50,0,30,5,1.5\n").unwrap();
    let out = knnta()
        .args(["batch", "--index", idx.to_str().unwrap()])
        .args(["--queries", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("alpha0"));

    for f in [&csv, &idx, &queries, &bad] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn bench_diff_within_gates_batch_invariants() {
    let bench_diff = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_bench_diff"))
            .args(args)
            .output()
            .expect("run bench_diff")
    };
    let report = |hilbert: u64, individual: u64| {
        format!(
            "{{\"suite\": \"enhancements\", \"samples\": 10, \"results\": [\n\
             {{\"group\": \"batch\", \"bench\": \"collective_hilbert/1000\", \"median_ns\": {hilbert}}},\n\
             {{\"group\": \"batch\", \"bench\": \"individual/1000\", \"median_ns\": {individual}}}]}}\n"
        )
    };
    let path = tmp("bench-within.json");
    let assert_le = [
        "--assert-le",
        "batch/collective_hilbert/1000",
        "batch/individual/1000",
    ];

    // Collective faster than individual: the gate passes.
    std::fs::write(&path, report(800, 1000)).unwrap();
    let out = bench_diff(&[&["--within", path.to_str().unwrap()], &assert_le[..]].concat());
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    // Collective slower beyond the slack: exit 1.
    std::fs::write(&path, report(1500, 1000)).unwrap();
    let out = bench_diff(&[&["--within", path.to_str().unwrap()], &assert_le[..]].concat());
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("VIOLATED"));

    // A looser slack lets the same report pass.
    let out = bench_diff(
        &[
            &["--within", path.to_str().unwrap()],
            &assert_le[..],
            &["--slack", "0.6"],
        ]
        .concat(),
    );
    assert!(out.status.success());

    // Missing benches and missing --assert-le: exit 2.
    let out = bench_diff(&[
        "--within",
        path.to_str().unwrap(),
        "--assert-le",
        "batch/nonexistent",
        "batch/individual/1000",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let out = bench_diff(&["--within", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_file(path);
}

#[test]
fn build_rejects_too_small_epoch_count() {
    let csv = tmp("venues3.csv");
    std::fs::write(&csv, "id,x,y,epoch,count\n0,1.0,1.0,5,3\n1,2.0,2.0,-1,0\n").unwrap();
    let idx = tmp("city3.idx");
    let out = knnta()
        .args(["build", "--input", csv.to_str().unwrap()])
        .args(["--out", idx.to_str().unwrap(), "--epochs", "3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("too small"));
    let _ = std::fs::remove_file(csv);
}
