//! End-to-end tests of the `knnta` command-line tool: generate → build →
//! stats/query/mwa/skyline, plus error handling.

use std::path::PathBuf;
use std::process::Command;

fn knnta() -> Command {
    Command::new(env!("CARGO_BIN_EXE_knnta"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("knnta-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_pipeline() {
    let csv = tmp("venues.csv");
    let idx = tmp("city.idx");

    // generate
    let out = knnta()
        .args(["generate", "--dataset", "GS", "--scale", "0.003", "--seed", "5"])
        .args(["--out", csv.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body = std::fs::read_to_string(&csv).unwrap();
    assert!(body.starts_with("id,x,y,epoch,count"));
    assert!(body.lines().count() > 100);

    // build
    let out = knnta()
        .args(["build", "--input", csv.to_str().unwrap()])
        .args(["--out", idx.to_str().unwrap(), "--grouping", "tar"])
        .output()
        .expect("run build");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(idx.exists());

    // stats
    let out = knnta()
        .args(["stats", "--index", idx.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("grouping:   TAR-tree"), "{text}");
    assert!(text.contains("epochs:"), "{text}");

    // query
    let out = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--k", "5", "--alpha0", "0.3"])
        .output()
        .expect("run query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() >= 6, "5 hits + header: {text}");

    // mwa
    let out = knnta()
        .args(["mwa", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .args(["--k", "3", "--alpha0", "0.5"])
        .output()
        .expect("run mwa");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("alpha0") || text.contains("no weight change"), "{text}");

    // skyline
    let out = knnta()
        .args(["skyline", "--index", idx.to_str().unwrap()])
        .args(["--x", "50", "--y", "50", "--from-day", "0", "--to-day", "180"])
        .output()
        .expect("run skyline");
    assert!(out.status.success());

    let _ = std::fs::remove_file(csv);
    let _ = std::fs::remove_file(idx);
}

#[test]
fn helpful_errors() {
    // No command.
    let out = knnta().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));

    // Unknown command.
    let out = knnta().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing required options.
    let out = knnta().args(["query", "--x", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--index"));

    // Bad dataset.
    let out = knnta()
        .args(["generate", "--dataset", "MARS", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));

    // Nonexistent index file.
    let out = knnta()
        .args(["stats", "--index", "/definitely/not/here.idx"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Bad alpha0.
    let csv = tmp("venues2.csv");
    let idx = tmp("city2.idx");
    knnta()
        .args(["generate", "--dataset", "LA", "--scale", "0.002", "--out"])
        .arg(csv.to_str().unwrap())
        .output()
        .unwrap();
    knnta()
        .args(["build", "--input", csv.to_str().unwrap(), "--out"])
        .arg(idx.to_str().unwrap())
        .output()
        .unwrap();
    let out = knnta()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--x", "0", "--y", "0", "--from-day", "0", "--to-day", "7"])
        .args(["--alpha0", "1.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("alpha0"));
    let _ = std::fs::remove_file(csv);
    let _ = std::fs::remove_file(idx);
}

#[test]
fn build_rejects_too_small_epoch_count() {
    let csv = tmp("venues3.csv");
    std::fs::write(&csv, "id,x,y,epoch,count\n0,1.0,1.0,5,3\n1,2.0,2.0,-1,0\n").unwrap();
    let idx = tmp("city3.idx");
    let out = knnta()
        .args(["build", "--input", csv.to_str().unwrap()])
        .args(["--out", idx.to_str().unwrap(), "--epochs", "3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("too small"));
    let _ = std::fs::remove_file(csv);
}
