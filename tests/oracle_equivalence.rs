//! Every index variant must return exactly the answers of the
//! sequential-scan oracle, for every grouping strategy, weight, result size
//! and interval — Section 5's correctness claim ("the BFS will provide the
//! correct query results on the TAR-tree no matter which grouping strategy
//! is used").

mod common;

use common::{assert_same_answer, baseline_of, index_of, small_dataset};
use knnta::core::{Grouping, PackedTarTree, StorageBackend};
use knnta::lbsn::{IntervalAnchor, Workload};
use knnta::pagestore::{AccessStats, BufferPoolConfig, Disk, PolicyKind};
use knnta::util::rng::{Rng, StdRng};
use knnta::KnntaQuery;

#[test]
fn all_groupings_match_the_scan_oracle() {
    let dataset = small_dataset();
    let baseline = baseline_of(&dataset);
    let workload = Workload::generate(&dataset, 40, IntervalAnchor::Random, 1);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        assert_eq!(index.len(), baseline.len());
        index.validate();
        for (i, &(point, interval)) in workload.queries.iter().enumerate() {
            let q = KnntaQuery::new(point, interval).with_k(10).with_alpha0(0.3);
            let got = index.query(&q);
            let want = baseline.query(&q);
            assert_same_answer(&got, &want, &format!("{grouping} query {i}"));
        }
    }
}

#[test]
fn equivalence_across_k_and_alpha() {
    let dataset = small_dataset();
    let baseline = baseline_of(&dataset);
    let index = index_of(&dataset, Grouping::TarIntegral);
    let workload = Workload::generate(&dataset, 5, IntervalAnchor::Recent, 2);
    for &(point, interval) in &workload.queries {
        for k in [1, 5, 10, 50, 100] {
            for alpha0 in [0.1, 0.3, 0.5, 0.7, 0.9] {
                let q = KnntaQuery::new(point, interval)
                    .with_k(k)
                    .with_alpha0(alpha0);
                let got = index.query(&q);
                let want = baseline.query(&q);
                assert_same_answer(&got, &want, &format!("k={k} α0={alpha0}"));
            }
        }
    }
}

#[test]
fn short_and_degenerate_intervals() {
    let dataset = small_dataset();
    let baseline = baseline_of(&dataset);
    let index = index_of(&dataset, Grouping::TarIntegral);
    let tc = dataset.grid.tc();
    // Single-instant interval (contains no epoch): pure spatial ranking.
    let instant = knnta::TimeInterval::new(tc, tc);
    let point = dataset.positions[0];
    let q = KnntaQuery::new(point, instant).with_k(5).with_alpha0(0.5);
    let got = index.query(&q);
    let want = baseline.query(&q);
    assert_same_answer(&got, &want, "instant interval");
    assert!(got.iter().all(|h| h.aggregate == 0));
    // Interval covering everything.
    let all = knnta::TimeInterval::new(knnta::Timestamp::ZERO, tc);
    let q = KnntaQuery::new(point, all).with_k(20);
    assert_same_answer(&index.query(&q), &baseline.query(&q), "full interval");
}

/// Case count for the differential suite: 24 queries per grouping by
/// default, 10× that under `KNNTA_SOAK=1` (the soak lane in
/// `scripts/verify.sh`).
fn differential_cases() -> usize {
    let soak = std::env::var("KNNTA_SOAK").map_or(false, |v| v != "0" && !v.is_empty());
    if soak {
        240
    } else {
        24
    }
}

#[test]
fn parallel_query_is_bit_identical_to_sequential_and_oracle() {
    // The tentpole determinism oracle: for randomized workloads,
    // `query_parallel` at every thread count returns hit-for-hit identical
    // results (same POIs, same order, bit-equal scores) to `query`, and
    // both agree with the brute-force scan, for all three groupings.
    let dataset = small_dataset();
    let baseline = baseline_of(&dataset);
    let cases = differential_cases();
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let workload = Workload::generate(&dataset, cases, IntervalAnchor::Random, 7);
        for (i, &(point, interval)) in workload.queries.iter().enumerate() {
            let k = rng.gen_range(1..=120usize);
            let alpha0 = rng.gen_range(0.05..0.95);
            let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(alpha0);
            let want = index.query(&q);
            assert_same_answer(&want, &baseline.query(&q), &format!("{grouping} query {i}"));
            for threads in [1, 2, 4, 8] {
                let got = index.query_parallel(&q, threads);
                assert_eq!(
                    got.len(),
                    want.len(),
                    "{grouping} query {i} k={k} threads={threads}"
                );
                for (rank, (a, b)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        (a.poi, a.score.to_bits(), a.aggregate),
                        (b.poi, b.score.to_bits(), b.aggregate),
                        "{grouping} query {i} k={k} threads={threads} rank {rank}"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_node_accounting_equals_sequential() {
    // The parallel traversal must keep the paper's primary cost metric
    // exact: recorded node/leaf accesses equal the sequential counts for
    // every thread count (speculative expansions are not charged).
    let dataset = small_dataset();
    let mut rng = StdRng::seed_from_u64(0xACCE_55E5);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let workload = Workload::generate(&dataset, 12, IntervalAnchor::Recent, 11);
        for &(point, interval) in &workload.queries {
            let k = rng.gen_range(1..=60usize);
            let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(0.3);
            index.stats().reset();
            let _ = index.query(&q);
            let seq = index.stats().snapshot();
            for threads in [1, 2, 4, 8] {
                index.stats().reset();
                let _ = index.query_parallel(&q, threads);
                let par = index.stats().snapshot();
                assert_eq!(
                    (par.node_accesses, par.leaf_node_accesses),
                    (seq.node_accesses, seq.leaf_node_accesses),
                    "{grouping} k={k} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn paged_backend_is_bit_identical_to_in_memory() {
    // The storage-backend oracle: serialising the tree nodes onto disk pages
    // and querying through a buffer pool — under every replacement policy —
    // returns hit-for-hit identical results (same POIs, same order, bit-equal
    // scores) to the in-memory search, sequentially and at every thread
    // count, for all three groupings.
    let dataset = small_dataset();
    let cases = (differential_cases() / 3).max(4);
    let mut rng = StdRng::seed_from_u64(0xD15C_5EED);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let workload = Workload::generate(&dataset, cases, IntervalAnchor::Random, 13);
        for policy in PolicyKind::ALL {
            let paged =
                index.materialize_paged_nodes(1024, BufferPoolConfig::new(8, policy));
            assert_eq!(paged.node_count(), index.node_count());
            for (i, &(point, interval)) in workload.queries.iter().enumerate() {
                let k = rng.gen_range(1..=120usize);
                let alpha0 = rng.gen_range(0.05..0.95);
                let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(alpha0);
                let want = index.query(&q);
                let ctx = format!("{grouping} {policy} query {i} k={k}");
                let got = index.query_on(&q, StorageBackend::Paged(&paged));
                assert_same_answer(&got, &want, &ctx);
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "{ctx}");
                }
                for threads in [1, 2, 4, 8] {
                    let got =
                        index.query_parallel_on(&q, threads, StorageBackend::Paged(&paged));
                    assert_eq!(got.len(), want.len(), "{ctx} threads={threads}");
                    for (rank, (a, b)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            (a.poi, a.score.to_bits(), a.aggregate),
                            (b.poi, b.score.to_bits(), b.aggregate),
                            "{ctx} threads={threads} rank {rank}"
                        );
                    }
                }
            }
            let io = paged.io_snapshot();
            assert!(
                io.buffer_hits + io.buffer_misses > 0,
                "{grouping} {policy}: paged queries must go through the buffer pool"
            );
        }
    }
}

#[test]
fn packed_backend_is_bit_identical_to_in_memory() {
    // The serving-tier oracle: the bulk-packed immutable image
    // (`docs/FORMAT.md`) returns hit-for-hit identical results (same POIs,
    // same order, bit-equal scores and aggregates) to the in-memory search,
    // sequentially and at every thread count, for all three groupings — and
    // so does the same image after a serialise → disk → deserialise round
    // trip.
    let dataset = small_dataset();
    let cases = (differential_cases() / 3).max(4);
    let mut rng = StdRng::seed_from_u64(0xD15C_5EED);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let packed = index.pack();
        assert_eq!(packed.item_count(), index.len());
        assert_eq!(packed.grouping(), grouping);
        let stats = AccessStats::new();
        let disk = Disk::new(4096, stats);
        let pages = packed.save_to_disk(&disk);
        let loaded = PackedTarTree::load_from_disk(&disk, &pages).expect("valid packed image");
        let workload = Workload::generate(&dataset, cases, IntervalAnchor::Random, 17);
        for (i, &(point, interval)) in workload.queries.iter().enumerate() {
            let k = rng.gen_range(1..=120usize);
            let alpha0 = rng.gen_range(0.05..0.95);
            let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(alpha0);
            let want = index.query(&q);
            let ctx = format!("{grouping} packed query {i} k={k}");
            let got = index.query_on(&q, StorageBackend::Packed(&packed));
            assert_same_answer(&got, &want, &ctx);
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "{ctx}");
            }
            let reloaded = index.query_on(&q, StorageBackend::Packed(&loaded));
            assert_eq!(got.len(), reloaded.len(), "{ctx} (reloaded)");
            for (rank, (a, b)) in reloaded.iter().zip(&got).enumerate() {
                assert_eq!(
                    (a.poi, a.score.to_bits(), a.aggregate),
                    (b.poi, b.score.to_bits(), b.aggregate),
                    "{ctx} reloaded rank {rank}"
                );
            }
            for threads in [1, 2, 4, 8] {
                let par = index.query_parallel_on(&q, threads, StorageBackend::Packed(&packed));
                assert_eq!(par.len(), want.len(), "{ctx} threads={threads}");
                for (rank, (a, b)) in par.iter().zip(&want).enumerate() {
                    assert_eq!(
                        (a.poi, a.score.to_bits(), a.aggregate),
                        (b.poi, b.score.to_bits(), b.aggregate),
                        "{ctx} threads={threads} rank {rank}"
                    );
                }
            }
        }
    }
}

#[test]
fn packed_node_accounting_is_thread_count_invariant() {
    // The packed image has its own bulk-loaded structure, so its access
    // counts legitimately differ from the pointer-based tree's; what must
    // hold is the paper's cost-metric exactness *within* the backend: the
    // parallel packed traversal records exactly the sequential packed
    // node/leaf access counts at every thread count.
    let dataset = small_dataset();
    let mut rng = StdRng::seed_from_u64(0xACCE_55E5);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let packed = index.pack();
        let workload = Workload::generate(&dataset, 12, IntervalAnchor::Recent, 19);
        for &(point, interval) in &workload.queries {
            let k = rng.gen_range(1..=60usize);
            let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(0.3);
            index.stats().reset();
            let _ = index.query_on(&q, StorageBackend::Packed(&packed));
            let seq = index.stats().snapshot();
            assert!(seq.node_accesses > 0, "{grouping}: packed queries must be counted");
            for threads in [1, 2, 4, 8] {
                index.stats().reset();
                let _ = index.query_parallel_on(&q, threads, StorageBackend::Packed(&packed));
                let par = index.stats().snapshot();
                assert_eq!(
                    (par.node_accesses, par.leaf_node_accesses),
                    (seq.node_accesses, seq.leaf_node_accesses),
                    "{grouping} k={k} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn node_accesses_ranking_matches_the_paper() {
    // The headline claim (Figures 8–9): the TAR-tree needs the fewest node
    // accesses. At laptop scale the TAR-vs-IND-spa gap is established from
    // k ≈ 10–50 upwards (at very small k the 3-D fanout tax of 36-vs-50
    // entries per node dominates); IND-agg loses by a large factor at every
    // k. See EXPERIMENTS.md for the full sweep.
    let dataset = knnta::lbsn::gw().generate(0.01, 7, 20_260_704);
    let workload = Workload::generate(&dataset, 80, IntervalAnchor::Random, 3);
    let mut accesses = std::collections::HashMap::new();
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        index.stats().reset();
        for &(point, interval) in &workload.queries {
            let q = KnntaQuery::new(point, interval).with_k(50).with_alpha0(0.3);
            let _ = index.query(&q);
        }
        accesses.insert(grouping, index.stats().node_accesses());
    }
    let tar = accesses[&Grouping::TarIntegral];
    let spa = accesses[&Grouping::IndSpa];
    let agg = accesses[&Grouping::IndAgg];
    assert!(
        tar < spa && tar * 2 < agg,
        "TAR-tree should win at k=50: TAR {tar}, IND-spa {spa}, IND-agg {agg}"
    );
}
