//! The snapshot-equivalence differential oracle for the concurrent live
//! ingestion tier: while writer threads stream check-ins into a
//! [`LiveIndex`] (with concurrent sealing and background merging), every
//! snapshot a reader takes must answer queries **bit-for-bit identically**
//! to a single-threaded replay frozen at the snapshot's watermark — an
//! index built cold and fed the snapshot's cumulative deltas through
//! `TarIndex::ingest_epoch`, one epoch at a time.
//!
//! That equality is checked for every entry point (`query`,
//! `query_parallel` at every thread count, `query_batch_collective`),
//! every serving backend (in-memory, paged, packed), and all three
//! grouping strategies, plus the event-conservation invariant
//! `pending + sealed + dropped == recorded` at quiescence.
//!
//! Under `KNNTA_SOAK=1` the suite additionally runs many randomized
//! writer/reader schedules; a failing schedule panics with a
//! `KNNTA_PROP_SEED=<seed> cargo test <name>` line that `scripts/soak.sh`
//! archives and replays.

mod common;

use common::{small_dataset, tiny_dataset};
use knnta::core::{
    BatchOptions, Grouping, IndexConfig, LiveIndex, LiveOptions, QueryHit, SnapshotBackend,
    SnapshotView, TarIndex,
};
use knnta::lbsn::{IntervalAnchor, LbsnDataset, Workload};
use knnta::pagestore::{BufferPoolConfig, PolicyKind};
use knnta::util::rng::{Rng, StdRng};
use knnta::{AggregateSeries, CheckIn, KnntaQuery, Poi, PoiId, TimeInterval, Timestamp};
use rtree::Rect;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn soak() -> bool {
    std::env::var("KNNTA_SOAK").map_or(false, |v| v != "0" && !v.is_empty())
}

/// Bit-level equality: same POIs in the same order, bit-equal scores, equal
/// aggregates. Stricter than `common::assert_same_answer` on purpose — the
/// snapshot algebra promises *exactness*, not tolerance.
fn assert_bits(got: &[QueryHit], want: &[QueryHit], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: result sizes differ");
    for (rank, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            (g.poi, g.score.to_bits(), g.aggregate),
            (w.poi, w.score.to_bits(), w.aggregate),
            "{ctx}: rank {rank}"
        );
    }
}

/// The live tier's starting point: every dataset POI with an empty series
/// (nothing digested; ingestion starts at epoch 0).
fn empty_index(dataset: &LbsnDataset, grouping: Grouping) -> TarIndex {
    TarIndex::build(
        IndexConfig::with_grouping(grouping),
        dataset.grid.clone(),
        Rect::new(dataset.bounds.0, dataset.bounds.1),
        dataset
            .snapshot(dataset.grid.len())
            .into_iter()
            .map(|(id, pos, _)| (Poi { id, pos }, AggregateSeries::new())),
    )
}

/// Synthesizes a check-in stream whose per-(POI, epoch) totals equal the
/// dataset's series: epoch totals are sometimes split across two events,
/// ~15% of events are displaced out of epoch order (late arrivals), a few
/// are zero-valued (counted, never visible), and a sprinkle of
/// unknown-POI / out-of-grid events must be dropped. Returns the stream
/// and the exact number of events the live tier must drop.
fn synth_events(dataset: &LbsnDataset, seed: u64) -> (Vec<CheckIn>, u64) {
    let grid = &dataset.grid;
    let snapshot = dataset.snapshot(grid.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    for epoch in 0..grid.len() {
        let start = grid.epoch(epoch).start;
        for (id, _, series) in &snapshot {
            let mut v = series.get(epoch as u32);
            if v == 0 {
                continue;
            }
            if v >= 2 && rng.gen_bool(0.3) {
                let a = rng.gen_range(1..v);
                let t = start + rng.gen_range(0..7 * Timestamp::DAY);
                events.push(CheckIn::with_value(*id, t, a as u32));
                v -= a;
            }
            if rng.gen_bool(0.02) {
                let t = start + rng.gen_range(0..7 * Timestamp::DAY);
                events.push(CheckIn::with_value(*id, t, 0));
            }
            let t = start + rng.gen_range(0..7 * Timestamp::DAY);
            events.push(CheckIn::with_value(*id, t, v as u32));
        }
    }
    // Events the tier must refuse: POIs the index does not know, and
    // timestamps past the grid end.
    let known = snapshot[0].0;
    let bad = events.len() / 50 + 2;
    for i in 0..bad {
        if i % 2 == 0 {
            let t = grid.epoch(i % grid.len()).start + 30;
            events.push(CheckIn::with_value(PoiId(0xFFFF_FF00 + i as u32), t, 3));
        } else {
            events.push(CheckIn::with_value(known, grid.tc() + Timestamp::DAY, 3));
        }
    }
    // Light global shuffle: out-of-order delivery on top of the late splits.
    for i in 0..events.len() {
        if rng.gen_bool(0.15) {
            let j = rng.gen_range(0..events.len());
            events.swap(i, j);
        }
    }
    (events, bad as u64)
}

/// The frozen replay: a cold index over the same POIs, fed the snapshot's
/// cumulative deltas epoch by epoch through the single-threaded digestion
/// path. The oracle's ground truth.
fn replay_of(dataset: &LbsnDataset, grouping: Grouping, snap: &SnapshotView) -> TarIndex {
    let mut index = empty_index(dataset, grouping);
    let mut by_epoch: BTreeMap<usize, Vec<(PoiId, u64)>> = BTreeMap::new();
    for (epoch, poi, v) in snap.cumulative_deltas() {
        by_epoch.entry(epoch).or_default().push((poi, v));
    }
    for (epoch, updates) in by_epoch {
        index.ingest_epoch(epoch, &updates);
    }
    index
}

/// Streams `events` into `live` from `writers` round-robin threads while a
/// sealer thread seals (and occasionally merges) concurrently; a reader
/// thread collects up to `max_snapshots` snapshots mid-stream. Ends with
/// one final seal so at least one epoch of data is visible.
fn stream_concurrently(
    live: &LiveIndex,
    events: &[CheckIn],
    writers: usize,
    max_snapshots: usize,
    merge_while_streaming: bool,
) -> Vec<SnapshotView> {
    let done = AtomicBool::new(false);
    let snapshots: Mutex<Vec<SnapshotView>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                s.spawn(move || {
                    for e in events.iter().skip(w).step_by(writers) {
                        live.record(e.clone());
                    }
                })
            })
            .collect();
        s.spawn(|| {
            let mut i = 0u32;
            while !done.load(Ordering::Relaxed) {
                live.seal_epoch();
                if merge_while_streaming && i % 3 == 2 {
                    live.merge_sealed();
                }
                i += 1;
                std::thread::sleep(Duration::from_micros(400));
            }
        });
        s.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                {
                    let mut snaps = snapshots.lock().unwrap();
                    if snaps.len() < max_snapshots {
                        snaps.push(live.snapshot());
                    }
                }
                std::thread::sleep(Duration::from_micros(700));
            }
        });
        for h in handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });
    live.seal_epoch();
    let mut snaps = snapshots.into_inner().unwrap();
    snaps.push(live.snapshot());
    snaps
}

/// Seals every remaining epoch (plus one drain at saturation) so nothing is
/// pending, then asserts the conservation invariant.
fn quiesce(live: &LiveIndex) {
    while live.current_epoch() < live.grid().len() {
        live.seal_epoch();
    }
    live.seal_epoch();
    assert_eq!(live.pending(), 0, "quiesced tier has no pending events");
    assert_eq!(
        live.sealed_events() + live.dropped(),
        live.recorded(),
        "conservation: sealed + dropped == recorded at quiescence"
    );
}

#[test]
fn concurrent_snapshots_match_single_threaded_replay() {
    // The headline oracle: 4 writers + concurrent sealer/merger + a reader
    // taking snapshots mid-stream. Every snapshot answers bit-identically
    // to its frozen replay, sequentially and at every thread count; after
    // quiescing, the tier equals the batch-built reference exactly.
    let dataset = small_dataset();
    let (events, expected_drops) = synth_events(&dataset, 0xA11CE);
    let live = LiveIndex::new(empty_index(&dataset, Grouping::TarIntegral), 0);

    let max_snaps = if soak() { 20 } else { 8 };
    let snaps = stream_concurrently(&live, &events, 4, max_snaps, true);

    assert_eq!(live.recorded(), events.len() as u64);
    assert_eq!(live.dropped(), expected_drops, "exactly the injected bad events drop");
    assert_eq!(
        live.pending() + live.sealed_events() + live.dropped(),
        live.recorded(),
        "conservation holds under any interleaving"
    );

    // Watermarks of successively-taken snapshots never retreat.
    for w in snaps.windows(2) {
        assert!(
            w[0].watermark() <= w[1].watermark(),
            "watermarks are monotone: {} then {}",
            w[0].watermark(),
            w[1].watermark()
        );
    }

    let per_snap = if soak() { 10 } else { 5 };
    let workload = Workload::generate(&dataset, per_snap, IntervalAnchor::Random, 41);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for (si, snap) in snaps.iter().enumerate() {
        let replay = replay_of(&dataset, Grouping::TarIntegral, snap);
        for (qi, &(point, interval)) in workload.queries.iter().enumerate() {
            let k = rng.gen_range(1..=120usize);
            let alpha0 = rng.gen_range(0.05..0.95);
            let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(alpha0);
            let ctx = format!("snapshot {si} ({}) query {qi} k={k}", snap.watermark());
            let want = replay.query(&q);
            assert_bits(&snap.query(&q), &want, &ctx);
            for threads in [1, 2, 4, 8] {
                assert_bits(
                    &snap.query_parallel(&q, threads),
                    &want,
                    &format!("{ctx} threads={threads}"),
                );
            }
        }
    }

    // Quiesce and compare against the batch-built ground truth: the stream
    // conserves every per-(POI, epoch) total, so the fully-sealed,
    // fully-merged tier must equal an index built with the whole history.
    quiesce(&live);
    live.merge_sealed();
    let fin = live.snapshot();
    let reference = common::index_of(&dataset, Grouping::TarIntegral);
    let workload = Workload::generate(&dataset, per_snap * 2, IntervalAnchor::Random, 42);
    for (qi, &(point, interval)) in workload.queries.iter().enumerate() {
        let k = rng.gen_range(1..=120usize);
        let alpha0 = rng.gen_range(0.05..0.95);
        let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(alpha0);
        assert_bits(
            &fin.query(&q),
            &reference.query(&q),
            &format!("quiesced tier vs batch build, query {qi} k={k}"),
        );
    }
}

#[test]
fn every_backend_and_entry_point_matches_the_frozen_replay() {
    // The full matrix: all three groupings x all three serving backends x
    // sequential / parallel (1, 2, 4, 8 threads) / collective-batch entry
    // points, against snapshots taken at three lifecycle points (overlay on
    // an empty base, merged base, merged base + fresh overlay).
    let dataset = small_dataset();
    let per_snap = if soak() { 10 } else { 4 };
    let mut rng = StdRng::seed_from_u64(0xD00D);
    for (gi, grouping) in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg]
        .into_iter()
        .enumerate()
    {
        let policy = PolicyKind::ALL[gi % PolicyKind::ALL.len()];
        let opts = LiveOptions {
            shards: 8,
            serve_paged: Some((1024, BufferPoolConfig::new(8, policy))),
            serve_packed: true,
        };
        let live = LiveIndex::with_options(empty_index(&dataset, grouping), 0, opts);
        let (events, _) = synth_events(&dataset, 0xD00D + gi as u64);
        let half = events.len() / 2;

        let mut snaps = Vec::new();
        // (a) overlay over the still-empty base.
        snaps.extend(stream_concurrently(&live, &events[..half], 4, 0, false));
        // (b) everything sealed so far folded into a rebuilt base (which
        // re-materialises the paged + packed serving images).
        live.merge_sealed();
        snaps.push(live.snapshot());
        // (c) merged base plus a fresh overlay from the second half.
        snaps.extend(stream_concurrently(&live, &events[half..], 4, 0, false));

        let workload = Workload::generate(&dataset, per_snap, IntervalAnchor::Random, 50 + gi as u64);
        for (si, snap) in snaps.iter().enumerate() {
            assert!(snap.serves_paged() && snap.serves_packed());
            let replay = replay_of(&dataset, grouping, snap);
            let queries: Vec<KnntaQuery> = workload
                .queries
                .iter()
                .map(|&(point, interval)| {
                    KnntaQuery::new(point, interval)
                        .with_k(rng.gen_range(1..=120usize))
                        .with_alpha0(rng.gen_range(0.05..0.95))
                })
                .collect();
            let wants: Vec<Vec<QueryHit>> = queries.iter().map(|q| replay.query(q)).collect();
            for backend in [
                SnapshotBackend::InMemory,
                SnapshotBackend::Paged,
                SnapshotBackend::Packed,
            ] {
                let ctx = format!("{grouping} snapshot {si} {backend:?}");
                for (qi, q) in queries.iter().enumerate() {
                    assert_bits(&snap.query_on(q, backend), &wants[qi], &format!("{ctx} q{qi}"));
                    for threads in [1, 2, 4, 8] {
                        assert_bits(
                            &snap.query_parallel_on(q, threads, backend),
                            &wants[qi],
                            &format!("{ctx} q{qi} threads={threads}"),
                        );
                    }
                }
                let batched =
                    snap.query_batch_collective_on(&queries, &BatchOptions::default(), backend);
                for (qi, got) in batched.iter().enumerate() {
                    assert_bits(got, &wants[qi], &format!("{ctx} collective q{qi}"));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Randomized writer/reader schedules (the soak lane's stress surface).
// ---------------------------------------------------------------------------

/// One randomized schedule on the tiny deterministic dataset: every knob —
/// writer count, shard count, shuffle intensity, seal cadence, snapshot
/// cadence, merge participation — is drawn from `seed`.
fn run_schedule(seed: u64) {
    let (grid, bounds, pois) = tiny_dataset();
    let mut rng = StdRng::seed_from_u64(seed);
    let writers = rng.gen_range(1..=4usize);
    let shards = 1usize << rng.gen_range(0..4u32);
    let shuffle = rng.gen_range(0.0..0.5);
    let merge_while_streaming = rng.gen_bool(0.5);

    let index = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        bounds,
        pois.iter().map(|(p, _)| (*p, AggregateSeries::new())),
    );
    let live = LiveIndex::with_options(
        index,
        0,
        LiveOptions {
            shards,
            ..LiveOptions::default()
        },
    );

    let mut events = Vec::new();
    for epoch in 0..grid.len() {
        let start = grid.epoch(epoch).start;
        for (p, series) in &pois {
            let v = series.get(epoch as u32);
            if v > 0 {
                let t = start + rng.gen_range(0..7 * Timestamp::DAY);
                events.push(CheckIn::with_value(p.id, t, v as u32));
            }
        }
    }
    let mut drops = 0u64;
    if rng.gen_bool(0.5) {
        events.push(CheckIn::with_value(PoiId(9_999), grid.epoch(0).start + 5, 2));
        events.push(CheckIn::with_value(pois[0].0.id, grid.tc() + Timestamp::DAY, 2));
        drops = 2;
    }
    for i in 0..events.len() {
        if rng.gen_bool(shuffle) {
            let j = rng.gen_range(0..events.len());
            events.swap(i, j);
        }
    }

    let snaps = stream_concurrently(&live, &events, writers, 6, merge_while_streaming);
    assert_eq!(live.dropped(), drops, "schedule drops exactly the bad events");
    assert_eq!(
        live.pending() + live.sealed_events() + live.dropped(),
        live.recorded(),
        "conservation under schedule {seed:#x}"
    );

    for (si, snap) in snaps.iter().enumerate() {
        let replay = replay_of_tiny(&pois, snap);
        for qi in 0..3 {
            let point = [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)];
            let a = rng.gen_range(0i64..56);
            let b = rng.gen_range(0i64..56);
            let interval =
                TimeInterval::new(Timestamp::from_days(a.min(b)), Timestamp::from_days(a.max(b) + 1));
            let k = rng.gen_range(1..=20usize);
            let alpha0 = rng.gen_range(0.05..0.95);
            let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(alpha0);
            let ctx = format!("schedule {seed:#x} snapshot {si} q{qi}");
            let want = replay.query(&q);
            assert_bits(&snap.query(&q), &want, &ctx);
            assert_bits(&snap.query_parallel(&q, 2), &want, &format!("{ctx} threads=2"));
        }
    }

    // Quiesce; the tier must now equal the batch-built ground truth.
    quiesce(&live);
    live.merge_sealed();
    let fin = live.snapshot();
    let reference = TarIndex::build(IndexConfig::default(), grid.clone(), bounds, pois.clone());
    let q = KnntaQuery::new([50.0, 50.0], TimeInterval::days(0, 56))
        .with_k(10)
        .with_alpha0(0.5);
    assert_bits(
        &fin.query(&q),
        &reference.query(&q),
        &format!("schedule {seed:#x} quiesced vs batch build"),
    );
}

fn replay_of_tiny(pois: &[(Poi, AggregateSeries)], snap: &SnapshotView) -> TarIndex {
    let mut index = TarIndex::build(
        IndexConfig::default(),
        snap.grid().clone(),
        Rect::new([0.0, 0.0], [100.0, 100.0]),
        pois.iter().map(|(p, _)| (*p, AggregateSeries::new())),
    );
    let mut by_epoch: BTreeMap<usize, Vec<(PoiId, u64)>> = BTreeMap::new();
    for (epoch, poi, v) in snap.cumulative_deltas() {
        by_epoch.entry(epoch).or_default().push((poi, v));
    }
    for (epoch, updates) in by_epoch {
        index.ingest_epoch(epoch, &updates);
    }
    index
}

#[test]
fn randomized_schedules_preserve_snapshot_equivalence() {
    // `KNNTA_PROP_SEED` replays exactly one schedule (the failing-seed
    // convention shared with `knnta_util::prop`); otherwise schedules are
    // drawn from a fixed base seed, many more of them under KNNTA_SOAK=1.
    let seeds: Vec<u64> = match std::env::var("KNNTA_PROP_SEED") {
        Ok(v) => {
            let v = v.trim().to_string();
            let seed = v
                .strip_prefix("0x")
                .or_else(|| v.strip_prefix("0X"))
                .map(|h| u64::from_str_radix(h, 16).expect("KNNTA_PROP_SEED: bad hex seed"))
                .unwrap_or_else(|| v.parse().expect("KNNTA_PROP_SEED: bad seed"));
            vec![seed]
        }
        Err(_) => {
            let n = if soak() { 24 } else { 6 };
            let mut r = StdRng::seed_from_u64(0x5C4E_D01E);
            (0..n).map(|_| r.gen_range(0..u64::MAX)).collect()
        }
    };
    for seed in seeds {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run_schedule(seed))) {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            panic!(
                "randomized schedule {seed:#x} failed:\n{msg}\n\
                 reproduce with: KNNTA_PROP_SEED={seed:#x} cargo test randomized_schedules_preserve_snapshot_equivalence"
            );
        }
    }
}
