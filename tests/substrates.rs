//! Coverage for the in-repo build substrates (`knnta_util`) at the points
//! where the rest of the workspace actually depends on them: RNG
//! determinism, codec round-trips on real index/TIA pages, and the bench
//! runner's JSON artifact.

use knnta::core::{IndexConfig, TarIndex};
use knnta::util::bench::Harness;
use knnta::util::codec::{Bytes, BytesMut};
use knnta::util::rng::{Rng, StdRng};
use knnta::{AggregateSeries, EpochGrid, Poi};
use mvbt::{Node, NodeBody, LeafEntry, VERSION_INF};
use pagestore::PageId;
use rtree::Rect;

/// The same seed must give the same stream, across rng instances; distinct
/// seeds must diverge.
#[test]
fn rng_deterministic_per_seed() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
    let mut a = StdRng::seed_from_u64(7);
    let mut b = StdRng::seed_from_u64(8);
    let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
    assert!(same < 4, "seeds 7 and 8 produced {same}/64 collisions");
}

/// gen_range stays in bounds and hits both ends of small ranges, for the
/// types the workspace samples.
#[test]
fn rng_ranges_cover_bounds() {
    let mut rng = StdRng::seed_from_u64(99);
    let (mut lo_seen, mut hi_seen) = (false, false);
    for _ in 0..500 {
        let x = rng.gen_range(0usize..4);
        assert!(x < 4);
        lo_seen |= x == 0;
        hi_seen |= x == 3;
        let f: f64 = rng.gen_range(-2.5..2.5);
        assert!((-2.5..2.5).contains(&f));
        let i = rng.gen_range(-10i64..=10);
        assert!((-10..=10).contains(&i));
    }
    assert!(lo_seen && hi_seen);
}

/// The full-index binary snapshot (core::persist) survives a round-trip
/// through the in-repo codec and answers queries identically.
#[test]
fn codec_roundtrip_persist_snapshot() {
    let grid = EpochGrid::fixed_days(7, 8);
    let bounds = Rect::new([0.0, 0.0], [100.0, 100.0]);
    let mut rng = StdRng::seed_from_u64(12);
    let pois: Vec<_> = (0..60u32)
        .map(|i| {
            let series = AggregateSeries::from_pairs(
                (0..8u32).map(|e| (e, rng.gen_range(0u64..40))),
            );
            (
                Poi::new(i, rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
                series,
            )
        })
        .collect();
    let index = TarIndex::build(IndexConfig::default(), grid, bounds, pois);
    let bytes = index.save_to_vec();
    let loaded = TarIndex::load_from_slice(&bytes).expect("valid snapshot");
    let q = knnta::KnntaQuery::new([50.0, 50.0], knnta::TimeInterval::days(0, 56)).with_k(10);
    let (a, b) = (index.query(&q), loaded.query(&q));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.poi, y.poi);
        assert!((x.score - y.score).abs() < 1e-12);
    }
}

/// MVBT node pages (the disk-TIA storage format) round-trip through the
/// codec bit-exactly, including extreme values.
#[test]
fn codec_roundtrip_disk_tia_pages() {
    let node = Node {
        start_version: u64::MAX - 1,
        body: NodeBody::Leaf(vec![
            LeafEntry {
                key: i64::MIN,
                start: 0,
                end: VERSION_INF,
                value: u128::MAX,
            },
            LeafEntry {
                key: i64::MAX,
                start: 17,
                end: 18,
                value: 0,
            },
        ]),
    };
    let encoded = node.encode();
    assert_eq!(Node::decode(encoded.clone()), node);
    // The page survives a trip through a pagestore disk too.
    let disk = pagestore::Disk::new(encoded.len().max(64), pagestore::AccessStats::new());
    let p = disk.allocate();
    disk.write(p, encoded);
    assert_eq!(Node::decode(disk.read(p)), node);
    assert_eq!(p, PageId(0));
}

/// Primitive put/get pairs are little-endian and exact at the extremes.
#[test]
fn codec_primitives_roundtrip() {
    let mut b = BytesMut::new();
    b.put_u8(0xAB);
    b.put_u16(0x1234);
    b.put_u32(0xDEAD_BEEF);
    b.put_u64(u64::MAX - 3);
    b.put_u128(u128::MAX / 3);
    b.put_i64(i64::MIN);
    b.put_f64(-0.1);
    let mut r: Bytes = b.freeze();
    assert_eq!(r.get_u8(), 0xAB);
    assert_eq!(r.get_u16(), 0x1234);
    assert_eq!(r.get_u32(), 0xDEAD_BEEF);
    assert_eq!(r.get_u64(), u64::MAX - 3);
    assert_eq!(r.get_u128(), u128::MAX / 3);
    assert_eq!(r.get_i64(), i64::MIN);
    assert_eq!(r.get_f64(), -0.1);
    assert!(r.is_empty());
}

/// The bench runner produces parseable, schema-complete JSON end to end.
#[test]
fn bench_runner_emits_valid_json() {
    let dir = std::env::temp_dir().join(format!("knnta_bench_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("KNNTA_BENCH_DIR", &dir);
    std::env::set_var("KNNTA_BENCH_FAST", "1");
    let mut h = Harness::new("smoke");
    let mut g = h.group("g");
    g.bench("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
    g.finish();
    let path = h.finish().expect("bench json written");
    let text = std::fs::read_to_string(&path).unwrap();
    // Minimal structural checks without a JSON parser dependency.
    for key in [
        "\"suite\": \"smoke\"",
        "\"group\": \"g\"",
        "\"bench\": \"noop\"",
        "\"median_ns\":",
        "\"p95_ns\":",
        "\"mean_ns\":",
        "\"min_ns\":",
        "\"iters_per_sample\":",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches('[').count(), text.matches(']').count());
    std::env::remove_var("KNNTA_BENCH_DIR");
    std::env::remove_var("KNNTA_BENCH_FAST");
    let _ = std::fs::remove_dir_all(&dir);
}
