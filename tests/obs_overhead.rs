//! Observability overhead guard: a query run with observability fully
//! disabled must produce byte-identical hits and node-access counts to the
//! pre-obs oracle fixture in `tests/fixtures/pre_obs_oracle.txt`.
//!
//! The fixture was generated from the tree *before* the `knnta-obs` layer
//! landed (regenerate deliberately with `KNNTA_REGEN_FIXTURES=1 cargo test
//! --test obs_overhead` — doing so redefines the oracle, so only do it when
//! the traversal itself legitimately changes). Each line captures one
//! deterministic query's full answer (POI, score bits, aggregate) plus the
//! node/leaf access counts, across sequential, parallel and paged
//! executions.

mod common;

use common::{index_of, small_dataset};
use knnta::core::{Grouping, StorageBackend, TarIndex};
use knnta::lbsn::{IntervalAnchor, Workload};
use knnta::pagestore::BufferPoolConfig;
use knnta::KnntaQuery;
use std::fmt::Write as _;
use std::path::Path;

const FIXTURE: &str = "tests/fixtures/pre_obs_oracle.txt";

fn fixture_queries(index: &TarIndex) -> Vec<KnntaQuery> {
    let dataset = small_dataset();
    let workload = Workload::generate(&dataset, 12, IntervalAnchor::Random, 7);
    let _ = index;
    workload
        .queries
        .iter()
        .enumerate()
        .map(|(i, &(point, interval))| {
            KnntaQuery::new(point, interval)
                .with_k([1, 5, 10, 25][i % 4])
                .with_alpha0([0.2, 0.3, 0.5, 0.8][i % 4])
        })
        .collect()
}

/// One execution's oracle line: `case <i> <mode> accesses=<n> leaves=<n>
/// hits=<poi>:<score-bits>:<aggregate>,...`.
fn oracle_line(i: usize, mode: &str, index: &TarIndex, run: impl FnOnce() -> Vec<knnta::core::QueryHit>) -> String {
    index.stats().reset();
    let hits = run();
    let mut line = format!(
        "case {i} {mode} accesses={} leaves={} hits=",
        index.stats().node_accesses(),
        index.stats().leaf_node_accesses()
    );
    for (j, h) in hits.iter().enumerate() {
        if j > 0 {
            line.push(',');
        }
        let _ = write!(line, "{}:{:016x}:{}", h.poi.0, h.score.to_bits(), h.aggregate);
    }
    line
}

fn oracle_dump() -> String {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    dump_with(index)
}

fn dump_with(index: TarIndex) -> String {
    let queries = fixture_queries(&index);
    let paged = index.materialize_paged_nodes(index.config_node_size(), BufferPoolConfig::lru(10));
    let mut out = String::new();
    for (i, q) in queries.iter().enumerate() {
        out.push_str(&oracle_line(i, "seq", &index, || index.query(q)));
        out.push('\n');
        out.push_str(&oracle_line(i, "par4", &index, || index.query_parallel(q, 4)));
        out.push('\n');
        out.push_str(&oracle_line(i, "paged", &index, || {
            index.query_on(q, StorageBackend::Paged(&paged))
        }));
        out.push('\n');
    }
    out
}

#[test]
fn disabled_obs_matches_pre_obs_oracle() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE);
    let dump = oracle_dump();
    if std::env::var("KNNTA_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &dump).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (regenerate with KNNTA_REGEN_FIXTURES=1)", path.display()));
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = dump.lines().collect();
    assert_eq!(
        got_lines.len(),
        want_lines.len(),
        "oracle fixture line count drifted"
    );
    for (g, w) in got_lines.iter().zip(&want_lines) {
        assert_eq!(g, w, "disabled-obs execution diverged from the pre-obs oracle");
    }
}

/// The instrumented paths must *also* reproduce the pre-obs oracle exactly:
/// enabling observability may add spans and counters but can never change a
/// hit, a score bit, or the node-access accounting.
#[test]
fn enabled_obs_matches_pre_obs_oracle() {
    if std::env::var("KNNTA_REGEN_FIXTURES").is_ok() {
        return; // the disabled-path test owns fixture regeneration
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE);
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (regenerate with KNNTA_REGEN_FIXTURES=1)", path.display()));
    let dataset = small_dataset();
    let mut index = index_of(&dataset, Grouping::TarIntegral);
    index.set_obs(knnta::obs::Obs::enabled());
    let dump = dump_with(index);
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = dump.lines().collect();
    assert_eq!(got_lines.len(), want_lines.len());
    for (g, w) in got_lines.iter().zip(&want_lines) {
        assert_eq!(g, w, "obs-enabled execution diverged from the pre-obs oracle");
    }
}
