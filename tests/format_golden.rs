//! Golden-fixture pin of the packed image layout (`docs/FORMAT.md`).
//!
//! `tests/fixtures/packed_v1.golden` is the byte-exact packed image of a
//! small, fully deterministic dataset. Any change to the v1 byte layout —
//! header word order, section order, directory encoding, TIA pair encoding,
//! or the Hilbert packing itself — shows up here as a byte diff, forcing a
//! deliberate format-version bump (and a `docs/FORMAT.md` update) instead
//! of silent drift.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```text
//! KNNTA_BLESS=1 cargo test --test format_golden
//! ```

mod common;

use common::tiny_dataset;
use knnta::core::{Grouping, IndexConfig, PackedTarTree, StorageBackend, TarIndex};
use knnta::{KnntaQuery, TimeInterval};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/packed_v1.golden"
);

/// The deterministic index behind the fixture: the hand-rolled 40-POI
/// dataset (no randomness). The packed fanout is fixed at 16
/// (`knnta_core::PACKED_FANOUT`), so 40 items give a multi-level image
/// regardless of the arena `node_size`.
fn golden_index() -> TarIndex {
    let (grid, bounds, pois) = tiny_dataset();
    let config = IndexConfig {
        grouping: Grouping::TarIntegral,
        node_size: 256,
        forced_reinsert: true,
    };
    TarIndex::build(config, grid, bounds, pois)
}

fn blessing() -> bool {
    std::env::var("KNNTA_BLESS").map_or(false, |v| v != "0" && !v.is_empty())
}

#[test]
fn packed_image_matches_the_golden_fixture() {
    let image = golden_index().pack().to_bytes();

    // The documented v1 header invariants, independent of the fixture.
    assert_eq!(&image[0..8], b"KNTAPAK1", "magic must open the image");
    assert_eq!(
        u64::from_le_bytes(image[8..16].try_into().unwrap()),
        1,
        "format version word"
    );
    assert_eq!(
        u64::from_le_bytes(image[14 * 8..15 * 8].try_into().unwrap()),
        0,
        "meta0 must carry the TAR-integral grouping tag"
    );
    assert_eq!(image.len() % 8, 0, "image must stay 8-byte aligned");

    if blessing() {
        std::fs::write(GOLDEN_PATH, &image).expect("write golden fixture");
        eprintln!("blessed {} ({} bytes)", GOLDEN_PATH, image.len());
        return;
    }
    let golden = std::fs::read(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing {GOLDEN_PATH} ({e}); regenerate with KNNTA_BLESS=1")
    });
    if image != golden {
        let at = image
            .iter()
            .zip(&golden)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| image.len().min(golden.len()));
        let word = at / 8;
        panic!(
            "packed image drifted from docs/FORMAT.md fixture: \
             {} bytes vs {} bytes, first difference at byte {at} (word {word}). \
             If the format change is intentional, bump the version, update \
             docs/FORMAT.md, and re-bless with KNNTA_BLESS=1.",
            image.len(),
            golden.len(),
        );
    }
}

#[test]
fn golden_fixture_still_answers_queries() {
    // The fixture is not just bytes: deserialised, it must serve the same
    // answers as the live index it was packed from — so the pin also guards
    // against semantic drift in the reader.
    if blessing() {
        return; // fixture may be mid-regeneration
    }
    let golden = std::fs::read(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing {GOLDEN_PATH} ({e}); regenerate with KNNTA_BLESS=1")
    });
    let packed = PackedTarTree::from_bytes(&golden).expect("golden image must parse");
    let index = golden_index();
    assert_eq!(packed.item_count(), index.len());
    for k in [1, 5, 17] {
        for alpha0 in [0.2, 0.5, 0.8] {
            let q = KnntaQuery::new([37.0, 52.0], TimeInterval::days(7, 42))
                .with_k(k)
                .with_alpha0(alpha0);
            let want = index.query(&q);
            let got = index.query_on(&q, StorageBackend::Packed(&packed));
            assert_eq!(want.len(), got.len(), "k={k} α0={alpha0}");
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(
                    (a.poi, a.score.to_bits(), a.aggregate),
                    (b.poi, b.score.to_bits(), b.aggregate),
                    "k={k} α0={alpha0}"
                );
            }
        }
    }
}
