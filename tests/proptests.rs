//! Workspace-level property tests: on arbitrary datasets and queries, every
//! index variant must agree with the scan oracle, and the Section 7
//! algorithms must keep their contracts.

mod common;

use knnta::core::{Grouping, IndexConfig, ScanBaseline, TarIndex};
use knnta::util::prop::{check, Gen};
use knnta::{AggregateSeries, EpochGrid, KnntaQuery, Poi, TimeInterval};
use rtree::Rect;

const EPOCHS: usize = 12;

#[derive(Debug, Clone)]
struct ArbDataset {
    pois: Vec<(Poi, AggregateSeries)>,
}

fn gen_dataset(g: &mut Gen, max_pois: usize) -> ArbDataset {
    let raw = g.vec(1, max_pois, |g| {
        (
            g.f64_in(0.0..100.0),
            g.f64_in(0.0..100.0),
            g.vec(0, 8, |g| (g.u32_in(0..EPOCHS as u32), g.u64_in(0..50))),
        )
    });
    ArbDataset {
        pois: raw
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, pairs))| {
                (Poi::new(i as u32, x, y), AggregateSeries::from_pairs(pairs))
            })
            .collect(),
    }
}

fn gen_query(g: &mut Gen) -> KnntaQuery {
    let (x, y) = (g.f64_in(0.0..100.0), g.f64_in(0.0..100.0));
    let start = g.i64_in(0..EPOCHS as i64);
    let len = g.i64_in(1..EPOCHS as i64 + 1);
    let k = g.usize_in(1..20);
    let alpha0 = g.f64_in(0.05..0.95);
    let end = (start + len).min(EPOCHS as i64);
    KnntaQuery::new([x, y], TimeInterval::days(7 * start, 7 * end))
        .with_k(k)
        .with_alpha0(alpha0)
}

fn build_all(ds: &ArbDataset) -> (ScanBaseline, Vec<TarIndex>) {
    let grid = EpochGrid::fixed_days(7, EPOCHS);
    let bounds = Rect::new([0.0, 0.0], [100.0, 100.0]);
    let baseline = ScanBaseline::build(grid.clone(), bounds, ds.pois.iter().cloned());
    let indexes = [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg]
        .into_iter()
        .map(|g| {
            // Small nodes force deep trees even on small datasets.
            let config = IndexConfig {
                grouping: g,
                node_size: 256,
                forced_reinsert: true,
            };
            TarIndex::build(config, grid.clone(), bounds, ds.pois.iter().cloned())
        })
        .collect();
    (baseline, indexes)
}

/// Index answers equal oracle answers for every grouping strategy.
#[test]
fn indexes_match_oracle() {
    check("indexes_match_oracle", 32, |g| {
        let ds = gen_dataset(g, 120);
        let q = gen_query(g);
        let (baseline, indexes) = build_all(&ds);
        let want = baseline.query(&q);
        for index in &indexes {
            index.validate();
            let got = index.query(&q);
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert!(
                    (a.score - b.score).abs() < 1e-9,
                    "{}: {} vs {}",
                    index.grouping(),
                    a.score,
                    b.score
                );
            }
        }
    });
}

/// The root max-series normaliser upper-bounds every hit's aggregate.
#[test]
fn normalizer_bounds_aggregates() {
    check("normalizer_bounds_aggregates", 32, |g| {
        let ds = gen_dataset(g, 80);
        let q = gen_query(g);
        let (_, indexes) = build_all(&ds);
        let index = &indexes[0];
        let gmax = index.aggregate_normalizer(q.interval);
        for hit in index.query(&q) {
            assert!(hit.aggregate as f64 <= gmax);
            assert!(hit.s0 >= 0.0 && hit.s0 <= 1.0 + 1e-9);
            assert!(hit.s1 >= 0.0 && hit.s1 <= 1.0 + 1e-9);
            let expect = q.alpha0 * hit.s0 + q.alpha1() * hit.s1;
            assert!((hit.score - expect).abs() < 1e-9);
        }
    });
}

/// MWA: the pruning algorithm always agrees with the enumerating one,
/// and no boundary lies on the wrong side of α0.
#[test]
fn mwa_contract() {
    check("mwa_contract", 32, |g| {
        let ds = gen_dataset(g, 60);
        let q = gen_query(g);
        let (_, indexes) = build_all(&ds);
        let index = &indexes[0];
        let (_, adj_p) = index.mwa_pruning(&q);
        let (_, adj_e) = index.mwa_enumerating(&q);
        match (adj_p.lower, adj_e.lower) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
        match (adj_p.upper, adj_e.upper) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
        if let Some(l) = adj_p.lower {
            assert!(l < q.alpha0);
        }
        if let Some(u) = adj_p.upper {
            assert!(u > q.alpha0);
        }
    });
}

/// Collective batch processing returns exactly the individual answers.
#[test]
fn collective_matches_individual() {
    check("collective_matches_individual", 32, |g| {
        let ds = gen_dataset(g, 80);
        let qs = g.vec(1, 12, gen_query);
        let (_, indexes) = build_all(&ds);
        let index = &indexes[0];
        let collective = index.query_batch_collective(&qs);
        let individual = index.query_batch_individual(&qs);
        for (c, i) in collective.iter().zip(&individual) {
            assert_eq!(c.len(), i.len());
            for (a, b) in c.iter().zip(i) {
                assert!((a.score - b.score).abs() < 1e-9);
                assert_eq!(a.aggregate, b.aggregate);
            }
        }
    });
}

/// Frontier-heap invariant of the parallel traversal: within one worker,
/// popped lower bounds are non-decreasing between steals. A worker drains
/// its own heap best-first, so keys only grow; a steal imports the victim's
/// best entry, which may legitimately sit below the thief's last own key,
/// starting a fresh monotone segment. The observability trace records each
/// worker's pop log as `pop` events on its `worker` span, which makes the
/// invariant checkable per worker, per run.
#[test]
fn frontier_pops_are_monotone_per_worker() {
    check("frontier_pops_are_monotone_per_worker", 24, |g| {
        let ds = gen_dataset(g, 120);
        let q = gen_query(g);
        let (_, mut indexes) = build_all(&ds);
        let index = &mut indexes[g.usize_in(0..3)];
        index.set_obs(knnta::core::Obs::enabled());
        let threads = *g.pick(&[2usize, 3, 4, 8]);
        let hits = index.query_parallel(&q, threads);
        let trace = index.obs().trace_snapshot();
        let mut workers: Vec<_> = trace.spans.iter().filter(|s| s.name == "worker").collect();
        workers.sort_by_key(|s| s.attr("worker").and_then(|v| v.as_u64()));
        assert_eq!(workers.len(), threads);
        for (w, span) in workers.iter().enumerate() {
            let mut last = f64::NEG_INFINITY;
            let log = trace
                .events
                .iter()
                .filter(|ev| ev.span == span.id && ev.name == "pop");
            for (i, ev) in log.enumerate() {
                let key = ev.attr("key").and_then(|v| v.as_f64()).unwrap();
                let stolen = ev.attr("stolen").and_then(|v| v.as_bool()).unwrap();
                if stolen {
                    last = f64::NEG_INFINITY; // steals reset the baseline
                }
                assert!(key >= last, "worker {w} pop {i}: key {key} < previous {last}");
                last = key;
            }
        }
        // The instrumented path returns the same answer as the plain one.
        let want = index.query(&q);
        assert_eq!(hits.len(), want.len());
        for (a, b) in hits.iter().zip(&want) {
            assert_eq!((a.poi, a.score.to_bits()), (b.poi, b.score.to_bits()));
        }
    });
}

/// Thread-count invariance of the access statistics: for any dataset and
/// query, `query_parallel` records exactly the sequential node/leaf access
/// totals at every thread count.
#[test]
fn leaf_access_totals_are_thread_count_invariant() {
    check("leaf_access_totals_are_thread_count_invariant", 24, |g| {
        let ds = gen_dataset(g, 120);
        let q = gen_query(g);
        let (_, indexes) = build_all(&ds);
        let index = &indexes[g.usize_in(0..3)];
        index.stats().reset();
        let _ = index.query(&q);
        let seq = index.stats().snapshot();
        for threads in [1usize, 2, 4, 8] {
            index.stats().reset();
            let _ = index.query_parallel(&q, threads);
            let par = index.stats().snapshot();
            assert_eq!(
                (par.node_accesses, par.leaf_node_accesses),
                (seq.node_accesses, seq.leaf_node_accesses),
                "threads={threads}"
            );
        }
    });
}

/// Packed serving image (`docs/FORMAT.md`): for arbitrary datasets and
/// every grouping, pack → serialise → load → serialise is byte-identical
/// (both through plain bytes and through disk pages of arbitrary size),
/// and the reloaded image answers queries bit-identically to the freshly
/// packed one.
#[test]
fn packed_image_roundtrip_is_byte_identical() {
    use knnta::core::{PackedTarTree, StorageBackend};
    use knnta::pagestore::{AccessStats, Disk};
    check("packed_image_roundtrip_is_byte_identical", 24, |g| {
        let ds = gen_dataset(g, 100);
        let q = gen_query(g);
        let (_, indexes) = build_all(&ds);
        let index = &indexes[g.usize_in(0..3)];
        let packed = index.pack();
        let image = packed.to_bytes();
        let loaded = PackedTarTree::from_bytes(&image).expect("own image must parse");
        assert_eq!(image, loaded.to_bytes(), "to_bytes→from_bytes→to_bytes drifted");
        let page_size = *g.pick(&[64usize, 512, 4096]);
        let disk = Disk::new(page_size, AccessStats::new());
        let pages = packed.save_to_disk(&disk);
        let reloaded = PackedTarTree::load_from_disk(&disk, &pages).expect("disk image must parse");
        assert_eq!(image, reloaded.to_bytes(), "disk round trip drifted");
        let want = index.query_on(&q, StorageBackend::Packed(&packed));
        let got = index.query_on(&q, StorageBackend::Packed(&reloaded));
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(
                (a.poi, a.score.to_bits(), a.aggregate),
                (b.poi, b.score.to_bits(), b.aggregate)
            );
        }
    });
}

/// Check-in ingestion is equivalent to building with the final series.
#[test]
fn ingestion_equivalence() {
    check("ingestion_equivalence", 32, |g| {
        let ds = gen_dataset(g, 50);
        let updates = g.vec(0, 25, |g| {
            (g.usize_in(0..50), g.usize_in(0..EPOCHS), g.u64_in(1..30))
        });
        let q = gen_query(g);
        let grid = EpochGrid::fixed_days(7, EPOCHS);
        let bounds = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let mut live = TarIndex::build(
            IndexConfig {
                node_size: 256,
                ..IndexConfig::default()
            },
            grid.clone(),
            bounds,
            ds.pois.iter().cloned(),
        );
        let mut final_series: Vec<AggregateSeries> =
            ds.pois.iter().map(|(_, s)| s.clone()).collect();
        // Group updates by epoch to respect the batch-per-epoch model.
        for epoch in 0..EPOCHS {
            let batch: Vec<_> = updates
                .iter()
                .filter(|&&(p, e, _)| e == epoch && p < ds.pois.len())
                .map(|&(p, _, v)| (ds.pois[p].0.id, v))
                .collect();
            live.ingest_epoch(epoch, &batch);
            // Duplicates within one batch collapse last-write-wins inside
            // ingest_epoch (it builds a map); mirror that here.
            let mut seen = std::collections::HashMap::new();
            for &(pid, v) in &batch {
                seen.insert(pid, v);
            }
            for (pid, v) in seen {
                let idx = ds.pois.iter().position(|(p, _)| p.id == pid).unwrap();
                final_series[idx].add(epoch as u32, v);
            }
        }
        live.validate();
        let rebuilt = TarIndex::build(
            IndexConfig {
                node_size: 256,
                ..IndexConfig::default()
            },
            grid,
            bounds,
            ds.pois.iter().map(|(p, _)| *p).zip(final_series),
        );
        let a = live.query(&q);
        let b = rebuilt.query(&q);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x.score - y.score).abs() < 1e-9, "{} vs {}", x.score, y.score);
        }
    });
}
