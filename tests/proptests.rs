//! Workspace-level property tests: on arbitrary datasets and queries, every
//! index variant must agree with the scan oracle, and the Section 7
//! algorithms must keep their contracts.

mod common;

use knnta::core::{Grouping, IndexConfig, ScanBaseline, TarIndex};
use knnta::{AggregateSeries, EpochGrid, KnntaQuery, Poi, TimeInterval};
use proptest::prelude::*;
use rtree::Rect;

const EPOCHS: usize = 12;

#[derive(Debug, Clone)]
struct ArbDataset {
    pois: Vec<(Poi, AggregateSeries)>,
}

fn arb_dataset(max_pois: usize) -> impl Strategy<Value = ArbDataset> {
    proptest::collection::vec(
        (
            0.0..100.0f64,
            0.0..100.0f64,
            proptest::collection::vec((0..EPOCHS as u32, 0u64..50), 0..8),
        ),
        1..max_pois,
    )
    .prop_map(|raw| ArbDataset {
        pois: raw
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, pairs))| {
                (Poi::new(i as u32, x, y), AggregateSeries::from_pairs(pairs))
            })
            .collect(),
    })
}

fn arb_query() -> impl Strategy<Value = KnntaQuery> {
    (
        0.0..100.0f64,
        0.0..100.0f64,
        0..EPOCHS as i64,
        1..=EPOCHS as i64,
        1usize..20,
        0.05..0.95f64,
    )
        .prop_map(|(x, y, start, len, k, alpha0)| {
            let end = (start + len).min(EPOCHS as i64);
            KnntaQuery::new([x, y], TimeInterval::days(7 * start, 7 * end))
                .with_k(k)
                .with_alpha0(alpha0)
        })
}

fn build_all(ds: &ArbDataset) -> (ScanBaseline, Vec<TarIndex>) {
    let grid = EpochGrid::fixed_days(7, EPOCHS);
    let bounds = Rect::new([0.0, 0.0], [100.0, 100.0]);
    let baseline = ScanBaseline::build(grid.clone(), bounds, ds.pois.iter().cloned());
    let indexes = [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg]
        .into_iter()
        .map(|g| {
            // Small nodes force deep trees even on small datasets.
            let config = IndexConfig {
                grouping: g,
                node_size: 256,
                forced_reinsert: true,
            };
            TarIndex::build(config, grid.clone(), bounds, ds.pois.iter().cloned())
        })
        .collect();
    (baseline, indexes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Index answers equal oracle answers for every grouping strategy.
    #[test]
    fn indexes_match_oracle(ds in arb_dataset(120), q in arb_query()) {
        let (baseline, indexes) = build_all(&ds);
        let want = baseline.query(&q);
        for index in &indexes {
            index.validate();
            let got = index.query(&q);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.score - w.score).abs() < 1e-9,
                    "{}: {} vs {}", index.grouping(), g.score, w.score);
            }
        }
    }

    /// The root max-series normaliser upper-bounds every hit's aggregate.
    #[test]
    fn normalizer_bounds_aggregates(ds in arb_dataset(80), q in arb_query()) {
        let (_, indexes) = build_all(&ds);
        let index = &indexes[0];
        let gmax = index.aggregate_normalizer(q.interval);
        for hit in index.query(&q) {
            prop_assert!(hit.aggregate as f64 <= gmax);
            prop_assert!(hit.s0 >= 0.0 && hit.s0 <= 1.0 + 1e-9);
            prop_assert!(hit.s1 >= 0.0 && hit.s1 <= 1.0 + 1e-9);
            let expect = q.alpha0 * hit.s0 + q.alpha1() * hit.s1;
            prop_assert!((hit.score - expect).abs() < 1e-9);
        }
    }

    /// MWA: the pruning algorithm always agrees with the enumerating one,
    /// and no boundary lies on the wrong side of α0.
    #[test]
    fn mwa_contract(ds in arb_dataset(60), q in arb_query()) {
        let (_, indexes) = build_all(&ds);
        let index = &indexes[0];
        let (_, adj_p) = index.mwa_pruning(&q);
        let (_, adj_e) = index.mwa_enumerating(&q);
        match (adj_p.lower, adj_e.lower) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
        }
        match (adj_p.upper, adj_e.upper) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
        }
        if let Some(l) = adj_p.lower { prop_assert!(l < q.alpha0); }
        if let Some(u) = adj_p.upper { prop_assert!(u > q.alpha0); }
    }

    /// Collective batch processing returns exactly the individual answers.
    #[test]
    fn collective_matches_individual(
        ds in arb_dataset(80),
        qs in proptest::collection::vec(arb_query(), 1..12),
    ) {
        let (_, indexes) = build_all(&ds);
        let index = &indexes[0];
        let collective = index.query_batch_collective(&qs);
        let individual = index.query_batch_individual(&qs);
        for (c, i) in collective.iter().zip(&individual) {
            prop_assert_eq!(c.len(), i.len());
            for (a, b) in c.iter().zip(i) {
                prop_assert!((a.score - b.score).abs() < 1e-9);
                prop_assert_eq!(a.aggregate, b.aggregate);
            }
        }
    }

    /// Check-in ingestion is equivalent to building with the final series.
    #[test]
    fn ingestion_equivalence(
        ds in arb_dataset(50),
        updates in proptest::collection::vec(
            (0usize..50, 0..EPOCHS, 1u64..30),
            0..25,
        ),
        q in arb_query(),
    ) {
        let grid = EpochGrid::fixed_days(7, EPOCHS);
        let bounds = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let mut live = TarIndex::build(
            IndexConfig { node_size: 256, ..IndexConfig::default() },
            grid.clone(),
            bounds,
            ds.pois.iter().cloned(),
        );
        let mut final_series: Vec<AggregateSeries> =
            ds.pois.iter().map(|(_, s)| s.clone()).collect();
        // Group updates by epoch to respect the batch-per-epoch model.
        for epoch in 0..EPOCHS {
            let batch: Vec<_> = updates
                .iter()
                .filter(|&&(p, e, _)| e == epoch && p < ds.pois.len())
                .map(|&(p, _, v)| (ds.pois[p].0.id, v))
                .collect();
            live.ingest_epoch(epoch, &batch);
            // Duplicates within one batch collapse last-write-wins inside
            // ingest_epoch (it builds a map); mirror that here.
            let mut seen = std::collections::HashMap::new();
            for &(pid, v) in &batch {
                seen.insert(pid, v);
            }
            for (pid, v) in seen {
                let idx = ds.pois.iter().position(|(p, _)| p.id == pid).unwrap();
                final_series[idx].add(epoch as u32, v);
            }
        }
        live.validate();
        let rebuilt = TarIndex::build(
            IndexConfig { node_size: 256, ..IndexConfig::default() },
            grid,
            bounds,
            ds.pois.iter().map(|(p, _)| *p).zip(final_series),
        );
        let a = live.query(&q);
        let b = rebuilt.query(&q);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.score - y.score).abs() < 1e-9, "{} vs {}", x.score, y.score);
        }
    }
}
