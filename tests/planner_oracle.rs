//! Differential oracle for the cost-model planner (`DESIGN.md` §14).
//!
//! Whatever configuration [`Executor`] plans — sequential or parallel,
//! in-memory, paged, or packed, any tile size or cache setting — the answer
//! must be **bit-identical** to every forced configuration of the same
//! query. The plan is allowed to change *how fast* an answer arrives, never
//! *which* answer arrives: admissibility of the best-first search (paper
//! Section 4.3) is a property of the scoring function, not of the execution
//! configuration.

mod common;

use common::{index_of, small_dataset};
use knnta::core::{BatchOptions, Executor, Grouping, QueryHit, StorageBackend};
use knnta::lbsn::{IntervalAnchor, Workload};
use knnta::pagestore::{BufferPoolConfig, PolicyKind};
use knnta::KnntaQuery;

/// Queries per grouping: a fast handful by default, 10× that under
/// `KNNTA_SOAK=1` (the soak lane in `scripts/verify.sh`).
fn differential_cases() -> usize {
    let soak = std::env::var("KNNTA_SOAK").map_or(false, |v| v != "0" && !v.is_empty());
    if soak {
        40
    } else {
        8
    }
}

/// Bitwise identity key: no float tolerance anywhere.
fn key(hits: &[QueryHit]) -> Vec<(u32, u64, u64)> {
    hits.iter()
        .map(|h| (h.poi.0, h.score.to_bits(), h.aggregate))
        .collect()
}

/// The planner-chosen execution of every (query, k) case must be
/// bit-identical to each forced configuration: the plain in-memory search,
/// the work-stealing traversal at several thread counts, the packed image,
/// and the paged store under every replacement policy.
#[test]
fn planned_queries_match_every_forced_config() {
    let dataset = small_dataset();
    let cases = differential_cases();
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let packed = index.pack();
        let paged: Vec<_> = PolicyKind::ALL
            .iter()
            .map(|&policy| {
                index.materialize_paged_nodes(
                    index.config_node_size(),
                    BufferPoolConfig::new(8, policy),
                )
            })
            .collect();
        let mut exec = Executor::new(&index).with_packed(&packed).with_paged(&paged[0]);
        let workload = Workload::generate(&dataset, cases, IntervalAnchor::Random, 77);
        for (i, &(point, interval)) in workload.queries.iter().enumerate() {
            for k in [1, 10, 100] {
                let q = KnntaQuery::new(point, interval).with_k(k).with_alpha0(0.3);
                let planned = key(&exec.query(&q));
                let plan = exec.last_plan().expect("executor records its plan");
                let ctx = format!("{grouping} query {i} k={k} ({plan:?})");
                assert_eq!(planned, key(&index.query(&q)), "{ctx}: vs in-memory seq");
                for threads in [1, 2, 4, 8] {
                    assert_eq!(
                        planned,
                        key(&index.query_parallel(&q, threads)),
                        "{ctx}: vs in-memory par({threads})"
                    );
                }
                assert_eq!(
                    planned,
                    key(&index.query_on(&q, StorageBackend::Packed(&packed))),
                    "{ctx}: vs packed seq"
                );
                for (p, policy) in paged.iter().zip(PolicyKind::ALL) {
                    assert_eq!(
                        planned,
                        key(&index.query_on(&q, StorageBackend::Paged(p))),
                        "{ctx}: vs paged/{policy}"
                    );
                }
                assert_eq!(
                    planned,
                    key(&index.query_parallel_on(&q, 4, StorageBackend::Packed(&packed))),
                    "{ctx}: vs packed par(4)"
                );
            }
        }
    }
}

/// Planned batches must be bit-identical to the forced collective and
/// individual batch paths on every backend, whatever tile size or cache
/// setting the planner picked.
#[test]
fn planned_batches_match_every_forced_config() {
    let dataset = small_dataset();
    let cases = differential_cases().max(12);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = index_of(&dataset, grouping);
        let packed = index.pack();
        let paged = index.materialize_paged_nodes(
            index.config_node_size(),
            BufferPoolConfig::new(8, PolicyKind::Lru),
        );
        let workload = Workload::generate(&dataset, cases, IntervalAnchor::Recent, 78);
        let queries: Vec<_> = workload
            .queries
            .iter()
            .enumerate()
            .map(|(i, &(point, interval))| {
                KnntaQuery::new(point, interval)
                    .with_k(1 + (i % 10))
                    .with_alpha0(0.3)
            })
            .collect();
        let mut exec = Executor::new(&index).with_packed(&packed).with_paged(&paged);
        let planned: Vec<_> = exec.query_batch(&queries).iter().map(|h| key(h)).collect();
        let ctx = format!("{grouping} batch ({:?})", exec.last_plan());
        let opts = BatchOptions::default();
        for (name, forced) in [
            ("collective in-memory", index.query_batch_collective(&queries)),
            (
                "collective packed",
                index.query_batch_collective_on(&queries, &opts, StorageBackend::Packed(&packed)),
            ),
            (
                "collective paged",
                index.query_batch_collective_on(&queries, &opts, StorageBackend::Paged(&paged)),
            ),
            ("individual", index.query_batch_individual(&queries)),
        ] {
            let forced: Vec<_> = forced.iter().map(|h| key(h)).collect();
            assert_eq!(planned, forced, "{ctx}: vs {name}");
        }
    }
}

/// The feedback loop must not drift the answers: repeated planned
/// executions of the same query — while the calibration factor moves —
/// always return the first answer, bit for bit.
#[test]
fn calibration_feedback_never_changes_answers() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let packed = index.pack();
    let mut exec = Executor::new(&index).with_packed(&packed);
    let workload = Workload::generate(&dataset, 4, IntervalAnchor::Random, 79);
    for &(point, interval) in &workload.queries {
        let q = KnntaQuery::new(point, interval).with_k(10).with_alpha0(0.3);
        let first = key(&exec.query(&q));
        for round in 0..10 {
            assert_eq!(
                first,
                key(&exec.query(&q)),
                "round {round}: answers drifted under calibration feedback"
            );
        }
    }
    assert!(
        exec.planner().calibration().samples() >= 40,
        "every planned execution must feed the calibration"
    );
}
