//! End-to-end index lifecycle: incremental check-in digestion, POI
//! insertion/removal, growth snapshots, and the disk-TIA mirror — all
//! validated against bulk rebuilds and the scan oracle.

mod common;

use common::{assert_same_answer, baseline_of, index_of, index_with_config, tiny_dataset};
use knnta::core::{Grouping, IndexConfig, TarIndex};
use knnta::lbsn::{IntervalAnchor, Workload};
use knnta::{AggregateSeries, KnntaQuery, Poi, TimeInterval};

#[test]
fn incremental_ingest_equals_bulk_build() {
    // Build one index with full series up-front, another by inserting POIs
    // with empty histories and digesting check-ins epoch by epoch
    // (Section 4.2) — queries must agree.
    let (grid, bounds, pois) = tiny_dataset();
    let bulk = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        bounds,
        pois.clone(),
    );
    let mut incremental = TarIndex::new(IndexConfig::default(), grid.clone(), bounds);
    for (poi, _) in &pois {
        incremental.insert_poi(*poi, AggregateSeries::new());
    }
    for epoch in 0..grid.len() {
        let updates: Vec<_> = pois
            .iter()
            .map(|(poi, series)| (poi.id, series.get(epoch as u32)))
            .filter(|&(_, v)| v != 0)
            .collect();
        incremental.ingest_epoch(epoch, &updates);
    }
    incremental.validate();
    for k in [1, 5, 20] {
        for alpha0 in [0.2, 0.5, 0.8] {
            let q = KnntaQuery::new([50.0, 50.0], TimeInterval::days(0, 56))
                .with_k(k)
                .with_alpha0(alpha0);
            assert_same_answer(
                &incremental.query(&q),
                &bulk.query(&q),
                &format!("k={k} α0={alpha0}"),
            );
        }
    }
}

#[test]
fn growth_snapshots_queryable() {
    // The Figure 8 scenario: rebuild the index at 20%, 40%, … 100% of time.
    let dataset = common::small_dataset();
    let mut prev_len = 0;
    for pct in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let snap = dataset.snapshot_at(pct);
        assert!(snap.len() >= prev_len, "LBSN grows over time");
        prev_len = snap.len();
        let epochs = ((dataset.grid.len() as f64) * pct).round() as usize;
        let index = TarIndex::build(
            IndexConfig::default(),
            dataset.grid.clone(),
            rtree::Rect::new(dataset.bounds.0, dataset.bounds.1),
            snap.into_iter().map(|(id, pos, s)| (Poi { id, pos }, s)),
        );
        index.validate();
        let iq = TimeInterval::new(
            knnta::Timestamp::ZERO,
            dataset.grid.epoch(epochs.saturating_sub(1).max(0)).end,
        );
        let q = KnntaQuery::new(dataset.positions[0], iq).with_k(5);
        let hits = index.query(&q);
        assert!(hits.len() <= 5);
        assert!(!hits.is_empty(), "snapshot at {pct} answers queries");
    }
}

#[test]
fn poi_insert_and_remove_keep_index_consistent() {
    let (grid, bounds, pois) = tiny_dataset();
    let mut index = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        bounds,
        pois.iter().take(30).cloned(),
    );
    // Insert the remaining POIs one by one.
    for (poi, series) in pois.iter().skip(30) {
        index.insert_poi(*poi, series.clone());
    }
    index.validate();
    assert_eq!(index.len(), 40);
    // Remove a third of them.
    for (poi, _) in pois.iter().step_by(3) {
        assert!(index.remove_poi(poi.id));
    }
    index.validate();
    assert_eq!(index.len(), 40 - 14);
    // Queries still match a fresh build over the survivors.
    let survivors: Vec<_> = pois
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, p)| p.clone())
        .collect();
    let fresh = TarIndex::build(IndexConfig::default(), grid, bounds, survivors);
    let q = KnntaQuery::new([40.0, 60.0], TimeInterval::days(7, 42)).with_k(8);
    assert_same_answer(&index.query(&q), &fresh.query(&q), "after removals");
}

#[test]
fn disk_tias_agree_with_memory_on_dataset() {
    let dataset = common::small_dataset();
    let baseline = baseline_of(&dataset);
    let index = index_of(&dataset, Grouping::TarIntegral);
    let tias = index.materialize_disk_tias(1024, 10);
    let workload = Workload::generate(&dataset, 15, IntervalAnchor::Random, 5);
    for &(point, interval) in &workload.queries {
        let q = KnntaQuery::new(point, interval).with_k(10).with_alpha0(0.3);
        let got = index.query_with_disk_tias(&q, &tias);
        let want = baseline.query(&q);
        assert_same_answer(&got, &want, "disk TIA query");
    }
    // Disk queries performed real buffered I/O.
    let io = tias.io_snapshot();
    assert!(io.buffer_hits + io.buffer_misses > 0);
}

#[test]
fn alternative_node_sizes_and_no_reinsert() {
    let dataset = common::small_dataset();
    let baseline = baseline_of(&dataset);
    let workload = Workload::generate(&dataset, 10, IntervalAnchor::Random, 6);
    for node_size in [512, 2048, 8192] {
        for forced_reinsert in [true, false] {
            let config = IndexConfig {
                grouping: Grouping::TarIntegral,
                node_size,
                forced_reinsert,
            };
            let index = index_with_config(&dataset, config);
            index.validate();
            for &(point, interval) in &workload.queries {
                let q = KnntaQuery::new(point, interval).with_k(10);
                assert_same_answer(
                    &index.query(&q),
                    &baseline.query(&q),
                    &format!("node_size={node_size} reinsert={forced_reinsert}"),
                );
            }
        }
    }
}

#[test]
fn batched_epoch_ingest_touches_only_updated_subtrees() {
    let (grid, bounds, pois) = tiny_dataset();
    let mut index = TarIndex::build(IndexConfig::default(), grid, bounds, pois.clone());
    // Ingesting for one POI returns exactly one change.
    let target = pois[7].0.id;
    let changed = index.ingest_epoch(3, &[(target, 9)]);
    assert_eq!(changed, 1);
    // The aggregate is reflected in queries over an interval containing
    // epoch 3.
    let q = KnntaQuery::new(pois[7].0.pos, TimeInterval::days(21, 28))
        .with_k(1)
        .with_alpha0(0.3);
    let hits = index.query(&q);
    assert_eq!(hits[0].poi, target);
    assert!(hits[0].aggregate >= 9);
}
