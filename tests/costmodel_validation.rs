//! Sanity checks of the Section 6 cost model against measured behaviour —
//! the full Figures 6–7 sweep lives in the bench harness; these tests pin
//! the model's qualitative accuracy so regressions are caught early.

mod common;

use common::{baseline_of, index_of};
use costmodel::{effective_fanout, CostModel};
use knnta::core::Grouping;
use knnta::{KnntaQuery, TimeInterval, Timestamp};

/// Build dataset + index once, measure f(pk) and node accesses for a query
/// set, and compare against the model.
#[test]
fn model_tracks_measured_fpk_and_accesses() {
    let dataset = knnta::lbsn::gw().generate(0.02, 7, 99);
    let baseline = baseline_of(&dataset);
    let index = index_of(&dataset, Grouping::TarIntegral);

    // A mid-length recent interval, as in the validation experiments.
    let tc = dataset.grid.tc();
    let interval = TimeInterval::new(tc - 128 * Timestamp::DAY, tc);

    // Aggregates over the interval parameterise the model.
    let probe = KnntaQuery::new([50.0, 50.0], interval).with_k(1);
    let aggregates: Vec<u64> = baseline
        .score_all(&probe)
        .iter()
        .map(|h| h.aggregate)
        .collect();

    let queries: Vec<[f64; 2]> = dataset.positions.iter().step_by(97).copied().collect();
    for k in [10usize, 50] {
        let model = CostModel::from_aggregates(&aggregates, 0.3, k, effective_fanout(36))
            .expect("model fits");
        let est = model.estimate();

        let mut fpk_sum = 0.0;
        index.stats().reset();
        for &p in &queries {
            let q = KnntaQuery::new(p, interval).with_k(k).with_alpha0(0.3);
            let hits = index.query(&q);
            fpk_sum += hits.last().expect("k results").score;
        }
        let measured_fpk = fpk_sum / queries.len() as f64;
        // The Section 6.3 analysis estimates *leaf* accesses only.
        let measured_na = index.stats().leaf_node_accesses() as f64 / queries.len() as f64;

        // The estimate must be in the right ballpark (the paper reports
        // near-exact matches on its data; we allow a 2.5x band for the
        // synthetic substitute) and, more importantly, the right order of
        // magnitude and monotone behaviour.
        assert!(
            est.fpk > measured_fpk / 2.5 && est.fpk < measured_fpk * 2.5,
            "k={k}: estimated f(pk) {:.3} vs measured {:.3}",
            est.fpk,
            measured_fpk
        );
        // The paper itself reports degraded accuracy at small k ("large
        // variance of f(pk) when k < 5"); the same holds here, so the band
        // is generous at k=10 and tight at k=50.
        let band = if k <= 10 { 8.0 } else { 3.0 };
        assert!(
            est.node_accesses > measured_na / band && est.node_accesses < measured_na * band,
            "k={k}: estimated NA {:.1} vs measured {:.1}",
            est.node_accesses,
            measured_na
        );
    }
}

#[test]
fn model_monotonicity_matches_measurements() {
    // Both the model and the measurements must agree that cost grows
    // with k (Figure 6's growing trend).
    let dataset = knnta::lbsn::gs().generate(0.02, 7, 7);
    let baseline = baseline_of(&dataset);
    let index = index_of(&dataset, Grouping::TarIntegral);
    let tc = dataset.grid.tc();
    let interval = TimeInterval::new(tc - 64 * Timestamp::DAY, tc);
    let aggregates: Vec<u64> = baseline
        .score_all(&KnntaQuery::new([0.0, 0.0], interval))
        .iter()
        .map(|h| h.aggregate)
        .collect();

    let mut prev_est = 0.0;
    let mut prev_measured = 0.0;
    for k in [1usize, 10, 100] {
        let model =
            CostModel::from_aggregates(&aggregates, 0.3, k, effective_fanout(36)).unwrap();
        let est = model.estimate();
        assert!(est.fpk >= prev_est, "model f(pk) grows with k");
        prev_est = est.fpk;

        index.stats().reset();
        for &p in dataset.positions.iter().step_by(211) {
            let q = KnntaQuery::new(p, interval).with_k(k).with_alpha0(0.3);
            let _ = index.query(&q);
        }
        let measured = index.stats().node_accesses() as f64;
        assert!(measured >= prev_measured, "measured accesses grow with k");
        prev_measured = measured;
    }
}
