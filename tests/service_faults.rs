//! Fault-injection suite for the query service (`DESIGN.md` §15).
//!
//! A [`FaultHook`] fires inside the shard worker's panic boundary at the
//! start of every execution, so these tests can kill a shard mid-query on
//! demand and assert the service's failure contract:
//!
//! * a caught panic rebuilds the shard and retries the task — answers
//!   after a retry are still bit-identical to the unsharded reference;
//! * retries are bounded (`retry_limit`) and cut short by the flush
//!   `deadline`;
//! * when retries are exhausted the original panic payload is re-raised
//!   through the ticket via `resume_unwind` — failure is loud, not a
//!   wrong answer;
//! * in-flight tickets **never hang**: every path (success, retry,
//!   failure, shutdown) resolves them;
//! * shutdown drains everything already accepted, and late submissions
//!   fail with an explicit shutdown panic.

mod common;

use common::tiny_dataset;
use knnta::core::{IndexConfig, Obs, QueryHit, TarIndex};
use knnta::service::{
    FaultHook, Service, ServiceConfig, M_FAILURES, M_REBUILDS, M_RETRIES,
};
use knnta::{KnntaQuery, TimeInterval, Timestamp};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bitwise identity key, as in the service oracle.
fn key(hits: &[QueryHit]) -> Vec<(u32, u64, u64)> {
    hits.iter()
        .map(|h| (h.poi.0, h.score.to_bits(), h.aggregate))
        .collect()
}

/// A handful of deterministic queries over the tiny dataset.
fn queries(grid: &knnta::EpochGrid) -> Vec<KnntaQuery> {
    let tc = grid.tc();
    (0..8)
        .map(|i| {
            let x = (i % 4) as f64 * 25.0 + 5.0;
            let y = (i / 4) as f64 * 40.0 + 10.0;
            let len = (1i64 << (i % 4)) * 7 * Timestamp::DAY;
            KnntaQuery::new([x, y], TimeInterval::new(tc - len, tc)).with_k(1 + i)
        })
        .collect()
}

fn service_with(config: ServiceConfig) -> (Service, TarIndex, Vec<KnntaQuery>) {
    let (grid, bounds, pois) = tiny_dataset();
    let mut reference = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        bounds,
        pois.iter().cloned(),
    );
    reference.set_obs(Obs::disabled());
    let qs = queries(&grid);
    let service = Service::start(config, grid, bounds, pois, Obs::enabled());
    (service, reference, qs)
}

/// A worker panic mid-query is caught, the shard is rebuilt, and the task
/// retried on the new generation — the answers still match the unsharded
/// reference bit-for-bit, and the retry/rebuild counters record it.
#[test]
fn panic_mid_query_is_retried_on_rebuilt_shard() {
    let injected = Arc::new(AtomicUsize::new(0));
    let max_attempt = Arc::new(AtomicUsize::new(0));
    let hook: FaultHook = {
        let injected = injected.clone();
        let max_attempt = max_attempt.clone();
        Arc::new(move |shard, _flush, attempt| {
            max_attempt.fetch_max(attempt, Ordering::SeqCst);
            if shard == 0 && attempt == 0 {
                injected.fetch_add(1, Ordering::SeqCst);
                panic!("injected fault: shard 0 dies on first attempt");
            }
        })
    };
    let (service, reference, qs) = service_with(
        ServiceConfig {
            shards: 2,
            workers: 1,
            max_batch: 4,
            max_delay: Duration::from_micros(500),
            ..ServiceConfig::default()
        }
        .with_fault_hook(hook),
    );
    let tickets: Vec<_> = qs.iter().map(|q| service.submit(*q)).collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait();
        assert_eq!(
            key(&got),
            key(&reference.query(&qs[i])),
            "query {i} diverged after a mid-query fault + retry",
        );
    }
    assert!(injected.load(Ordering::SeqCst) >= 1, "hook never fired");
    assert_eq!(
        max_attempt.load(Ordering::SeqCst),
        1,
        "every retry should succeed on its first rebuilt-shard attempt",
    );
    let metrics = service.obs().metrics_snapshot();
    let retries = metrics.counter(M_RETRIES).unwrap_or(0);
    let rebuilds = metrics.counter(M_REBUILDS).unwrap_or(0);
    assert!(retries >= 1, "no retry was recorded");
    assert_eq!(retries, rebuilds, "each retry runs on a rebuilt shard");
    assert_eq!(metrics.counter(M_FAILURES).unwrap_or(0), 0);
}

/// A custom panic payload: proves `resume_unwind` re-raises the worker's
/// *original* payload object, not a stringified copy.
struct InjectedFault {
    flush: u64,
}

/// When a shard panics more times than `retry_limit`, the original panic
/// payload is propagated via `resume_unwind` through one ticket of the
/// flush (the first in Hilbert order), the remaining tickets get the
/// panic message — and the service keeps answering later flushes.
#[test]
fn exhausted_retries_propagate_the_panic_and_service_recovers() {
    let doomed_flush = Arc::new(AtomicU64::new(0));
    let hook: FaultHook = {
        let doomed = doomed_flush.clone();
        Arc::new(move |_shard, flush, _attempt| {
            // The first flush ever seen is doomed on every attempt.
            let _ = doomed.compare_exchange(0, flush, Ordering::SeqCst, Ordering::SeqCst);
            if doomed.load(Ordering::SeqCst) == flush {
                std::panic::panic_any(InjectedFault { flush });
            }
        })
    };
    let (service, reference, qs) = service_with(
        ServiceConfig {
            shards: 1,
            workers: 1,
            max_batch: 2,
            max_delay: Duration::from_secs(1),
            retry_limit: 1,
            ..ServiceConfig::default()
        }
        .with_fault_hook(hook),
    );
    // Two queries → one flush of two entries (max_batch = 2). Which
    // ticket gets the original payload depends on the Hilbert order of
    // the flush, so assert over the pair.
    let t0 = service.submit(qs[0]);
    let t1 = service.submit(qs[1]);
    let payloads: Vec<_> = [t0, t1]
        .into_iter()
        .map(|t| {
            catch_unwind(AssertUnwindSafe(|| t.wait()))
                .expect_err("every ticket of the doomed flush must fail")
        })
        .collect();
    let originals = payloads
        .iter()
        .filter(|p| p.downcast_ref::<InjectedFault>().is_some())
        .count();
    assert_eq!(
        originals, 1,
        "exactly one ticket resumes the original panic payload",
    );
    let fault = payloads
        .iter()
        .find_map(|p| p.downcast_ref::<InjectedFault>())
        .expect("original payload present");
    assert_eq!(fault.flush, doomed_flush.load(Ordering::SeqCst));
    assert!(
        payloads.iter().any(|p| p
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("shard worker panicked"))),
        "the other ticket carries the panic message",
    );
    // Later flushes (different flush id → hook no longer fires) recover.
    let got = service.submit(qs[2]).wait();
    assert_eq!(
        key(&got),
        key(&reference.query(&qs[2])),
        "service must keep answering after a failed flush",
    );
    let metrics = service.obs().metrics_snapshot();
    assert_eq!(metrics.counter(M_RETRIES).unwrap_or(0), 1, "retry_limit = 1");
    assert_eq!(metrics.counter(M_FAILURES).unwrap_or(0), 1);
}

/// A zero deadline forbids retries entirely: the first caught panic is
/// already past the deadline, so it propagates without a rebuild cycle.
#[test]
fn deadline_expiry_cuts_retries_short() {
    let hook: FaultHook = Arc::new(|_, _, attempt| {
        assert_eq!(attempt, 0, "an expired flush must never be retried");
        panic!("injected fault: dies past deadline");
    });
    let (service, _reference, qs) = service_with(
        ServiceConfig {
            shards: 1,
            max_batch: 1,
            retry_limit: 100,
            deadline: Duration::ZERO,
            ..ServiceConfig::default()
        }
        .with_fault_hook(hook),
    );
    let ticket = service.submit(qs[0]);
    let payload = catch_unwind(AssertUnwindSafe(|| ticket.wait()))
        .expect_err("expired flush must fail");
    assert!(payload
        .downcast_ref::<&str>()
        .is_some_and(|m| m.contains("dies past deadline")));
    let metrics = service.obs().metrics_snapshot();
    assert_eq!(metrics.counter(M_RETRIES).unwrap_or(0), 0);
    assert_eq!(metrics.counter(M_FAILURES).unwrap_or(0), 1);
}

/// Under constant first-attempt faults on every shard, every in-flight
/// ticket still resolves within the deadline — none hang. `wait_timeout`
/// bounds the wait so a hang fails the test instead of wedging it.
#[test]
fn in_flight_queries_never_hang_under_faults() {
    let hook: FaultHook = Arc::new(|_shard, _flush, attempt| {
        if attempt == 0 {
            panic!("injected fault: first attempt always dies");
        }
    });
    let (service, reference, qs) = service_with(
        ServiceConfig {
            shards: 4,
            workers: 2,
            max_batch: 3,
            max_delay: Duration::from_micros(200),
            ..ServiceConfig::default()
        }
        .with_fault_hook(hook),
    );
    let tickets: Vec<_> = qs.iter().map(|q| service.submit(*q)).collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait_timeout(Duration::from_secs(60)) {
            Ok((got, _latency)) => {
                assert_eq!(key(&got), key(&reference.query(&qs[i])), "query {i}")
            }
            Err(_) => panic!("ticket {i} hung for 60s under fault injection"),
        }
    }
}

/// Shutdown drains the accepted queue (every pre-shutdown ticket gets its
/// answer) and submissions after shutdown fail with the explicit shutdown
/// panic instead of hanging.
#[test]
fn shutdown_drains_queue_and_late_submissions_fail_loudly() {
    let (mut service, reference, qs) = service_with(ServiceConfig {
        shards: 2,
        max_batch: 4,
        max_delay: Duration::from_millis(2),
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = qs.iter().map(|q| service.submit(*q)).collect();
    service.shutdown();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait();
        assert_eq!(
            key(&got),
            key(&reference.query(&qs[i])),
            "query {i} accepted before shutdown must still be answered",
        );
    }
    let late = service.submit(qs[0]);
    let payload = catch_unwind(AssertUnwindSafe(|| late.wait()))
        .expect_err("post-shutdown submission must fail");
    assert!(payload
        .downcast_ref::<&str>()
        .is_some_and(|m| m.contains("shut down")));
}
