//! The always-on serving telemetry (`DESIGN.md` §16): every answered query
//! must land in the sliding-window histograms with a full phase attribution,
//! the per-shard health gauges must be published, and the tail sampler must
//! stay within its bound while producing a well-formed trace document.

mod common;

use common::tiny_dataset;
use knnta::core::Obs;
use knnta::service::{Service, ServiceConfig, TelemetryConfig};
use knnta::{KnntaQuery, TimeInterval};
use std::time::Duration;

fn query_stream(n: usize) -> Vec<KnntaQuery> {
    (0..n)
        .map(|i| {
            let x = (i % 10) as f64 * 9.0 + 3.0;
            let y = (i % 7) as f64 * 13.0 + 4.0;
            KnntaQuery::new([x, y], TimeInterval::days(0, 56)).with_k(1 + i % 5)
        })
        .collect()
}

fn serve_all(config: ServiceConfig, queries: &[KnntaQuery]) -> Service {
    let (grid, bounds, pois) = tiny_dataset();
    let service = Service::start(config, grid, bounds, pois, Obs::disabled());
    // Submit in small waves so admission cuts several flushes.
    for wave in queries.chunks(4) {
        let tickets: Vec<_> = wave.iter().map(|q| service.submit(*q)).collect();
        for t in tickets {
            assert!(!t.wait().is_empty());
        }
    }
    service
}

#[test]
fn windows_attribute_every_answered_query() {
    let config = ServiceConfig {
        shards: 2,
        workers: 1,
        max_batch: 4,
        max_delay: Duration::from_micros(100),
        telemetry: TelemetryConfig {
            advance_every_flushes: 2,
            ..TelemetryConfig::default()
        },
        ..ServiceConfig::default()
    };
    let queries = query_stream(48);
    let mut service = serve_all(config, &queries);
    let telemetry = std::sync::Arc::clone(service.telemetry());
    service.shutdown();

    let snap = telemetry.snapshot();
    snap.validate().expect("snapshot must be schema-valid");
    assert_eq!(snap.schema, knnta::obs::SNAPSHOT_SCHEMA);

    // Round-trip through JSON stays valid and identical in the fields the
    // SLO gate reads.
    let parsed = knnta::obs::SnapshotDoc::parse(&snap.to_json()).expect("parse own json");
    parsed.validate().expect("round-tripped snapshot valid");
    assert_eq!(parsed.tick, snap.tick);

    // Every query is counted, and every phase histogram saw all of them.
    let answered = snap
        .counter(knnta::service::W_ANSWERED)
        .expect("answered counter")
        .lifetime;
    assert_eq!(answered, queries.len() as u64);
    for name in [
        knnta::service::W_E2E_US,
        knnta::service::W_ADMIT_US,
        knnta::service::W_QUEUE_US,
        knnta::service::W_SCATTER_US,
        knnta::service::W_MERGE_US,
    ] {
        let h = snap.histogram(name).unwrap_or_else(|| panic!("missing {name}"));
        assert!(h.count > 0, "{name} saw no samples in the window");
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99, "{name} quantiles ordered");
        assert!(h.p99 <= h.max, "{name} p99 within the observed max");
    }

    // The admission clock drove the window: several flushes happened, so the
    // ring must have rotated at least once.
    let flushes = snap.counter(knnta::service::W_FLUSHES).expect("flushes").lifetime;
    assert!(flushes >= 2, "expected multiple flushes, got {flushes}");
    assert!(snap.tick >= 1, "window clock never advanced");

    // Per-shard health gauges are published for both shards.
    for shard in 0..2 {
        let depth = snap.gauge(&format!("knnta.service.shard{shard}.queue_depth"));
        assert!(depth.is_some(), "shard {shard} queue depth gauge missing");
        let ewma = snap
            .gauge(&format!("knnta.service.shard{shard}.busy_ewma_us"))
            .expect("busy ewma gauge");
        assert!(ewma >= 0);
    }
    assert!(snap.gauge(knnta::service::G_IMBALANCE_X1000).is_some());

    // Tail sampling: bounded, counted, and exported as a valid trace whose
    // roots decompose into the four segments.
    let kept = telemetry.tail_kept_ever();
    assert!(kept > 0, "warmup alone must keep some traces");
    let tail = telemetry.tail_trace();
    tail.validate().expect("tail trace well-formed");
    let roots = tail.spans_named("served_query").count();
    assert!(roots > 0 && roots <= 32, "reservoir bound violated: {roots}");
    let segments = tail.spans_named("segment.scatter").count();
    assert_eq!(segments, roots, "every kept trace carries its segments");
}

#[test]
fn disabled_telemetry_serves_identically_and_stays_silent() {
    let config = ServiceConfig {
        shards: 2,
        workers: 1,
        max_batch: 4,
        max_delay: Duration::from_micros(100),
        telemetry: TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        },
        ..ServiceConfig::default()
    };
    let queries = query_stream(16);
    let mut service = serve_all(config, &queries);
    let telemetry = std::sync::Arc::clone(service.telemetry());
    service.shutdown();

    assert!(!telemetry.is_enabled());
    let snap = telemetry.snapshot();
    assert_eq!(snap.histograms.len(), 0, "disabled telemetry records nothing");
    assert_eq!(telemetry.tail_kept_ever(), 0);
    assert!(telemetry.tail_trace().spans.is_empty());
}
