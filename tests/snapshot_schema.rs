//! Golden-fixture pin of the `knnta.snapshot.v1` wire format.
//!
//! `tests/fixtures/snapshot_schema.golden.json` is the byte-exact JSON
//! serialisation of a fully deterministic telemetry snapshot. Any change to
//! the schema — field names, ordering, quantile encoding, counter shape —
//! shows up here as a diff, forcing a deliberate schema-version bump instead
//! of silent drift that would break external `slo` / `top` consumers.
//!
//! Regenerate after an *intentional* schema change with:
//!
//! ```text
//! KNNTA_BLESS=1 cargo test --test snapshot_schema
//! ```

use knnta::obs::{LiveWindows, SnapshotDoc};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/snapshot_schema.golden.json"
);

fn blessing() -> bool {
    std::env::var("KNNTA_BLESS").map_or(false, |v| v != "0" && !v.is_empty())
}

/// A deterministic snapshot touching every document feature: counters with
/// window/lifetime divergence, gauges, one histogram with in-window and
/// rotated-out samples, an overflow-bucket sample, and a nonzero tick.
fn golden_snapshot() -> SnapshotDoc {
    let windows = LiveWindows::new(3);
    let answered = windows.counter("golden.answered");
    let flushes = windows.counter("golden.flushes");
    let depth = windows.gauge("golden.depth");
    let hist = windows.histogram("golden.latency_us", &[100, 1_000, 10_000]);

    // Tick 0: these histogram samples rotate out of the 3-slot window once
    // the clock reaches tick 3; the counter keeps them in `lifetime`.
    answered.add(5);
    hist.record(50);
    hist.record(50);
    windows.advance(); // tick 1
    windows.advance(); // tick 2
    windows.advance(); // tick 3 — tick-0 slot reused, early samples gone
    answered.add(7);
    flushes.inc();
    depth.set(4);
    hist.record(100); // exactly on an inclusive bound
    hist.record(999);
    hist.record(2_500);
    hist.record(123_456); // overflow bucket
    windows.snapshot()
}

#[test]
fn snapshot_json_matches_the_golden_fixture() {
    let snap = golden_snapshot();
    snap.validate().expect("golden snapshot must be valid");

    // Schema invariants, independent of the fixture bytes.
    assert_eq!(snap.schema, knnta::obs::SNAPSHOT_SCHEMA);
    assert_eq!(snap.tick, 3);
    let c = snap.counter("golden.answered").expect("counter present");
    assert_eq!((c.window, c.lifetime), (7, 12), "window forgets, lifetime keeps");
    let h = snap.histogram("golden.latency_us").expect("histogram present");
    assert_eq!(h.count, 4, "rotated-out samples never count");
    assert_eq!(h.max, 123_456);
    assert_eq!(h.buckets.len(), h.bounds.len() + 1, "trailing overflow bucket");

    let json = snap.to_json();
    let parsed = SnapshotDoc::parse(&json).expect("round-trip parse");
    parsed.validate().expect("round-trip stays valid");
    assert_eq!(parsed.to_json(), json, "serialisation is a fixed point");

    if blessing() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden fixture");
        eprintln!("blessed {GOLDEN_PATH} ({} bytes)", json.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing {GOLDEN_PATH} ({e}); regenerate with KNNTA_BLESS=1")
    });
    assert_eq!(
        json, golden,
        "knnta.snapshot.v1 drifted from the pinned fixture; if the schema \
         change is intentional, bump the version and re-bless with KNNTA_BLESS=1"
    );
}
