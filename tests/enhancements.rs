//! The two Section 7 enhancements, validated end-to-end on generated LBSN
//! data: minimum weight adjustment and collective query processing.

mod common;

use common::{index_of, small_dataset};
use knnta::core::Grouping;
use knnta::lbsn::{IntervalAnchor, Workload};
use knnta::{KnntaQuery, PoiId};
use std::collections::HashSet;

#[test]
fn mwa_pruning_equals_enumerating_on_lbsn_data() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let workload = Workload::generate(&dataset, 10, IntervalAnchor::Random, 11);
    for &(point, interval) in &workload.queries {
        let q = KnntaQuery::new(point, interval).with_k(10).with_alpha0(0.5);
        let (top_p, adj_p) = index.mwa_pruning(&q);
        let (top_e, adj_e) = index.mwa_enumerating(&q);
        assert_eq!(
            top_p.iter().map(|h| h.poi).collect::<Vec<_>>(),
            top_e.iter().map(|h| h.poi).collect::<Vec<_>>()
        );
        for (a, b) in [(adj_p.lower, adj_e.lower), (adj_p.upper, adj_e.upper)] {
            match (a, b) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{x} vs {y}"),
                (x, y) => assert_eq!(x.is_some(), y.is_some()),
            }
        }
    }
}

#[test]
fn mwa_boundaries_actually_flip_results() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let workload = Workload::generate(&dataset, 8, IntervalAnchor::Random, 12);
    let mut verified = 0;
    for &(point, interval) in &workload.queries {
        let q = KnntaQuery::new(point, interval).with_k(5).with_alpha0(0.4);
        let (topk, adj) = index.mwa_pruning(&q);
        let top_set: HashSet<PoiId> = topk.iter().map(|h| h.poi).collect();
        for boundary in [adj.lower, adj.upper].into_iter().flatten() {
            // Guard against boundaries squeezed against the valid range.
            let past = if boundary < q.alpha0 {
                boundary - 1e-7
            } else {
                boundary + 1e-7
            };
            if past <= 0.0 || past >= 1.0 {
                continue;
            }
            let flipped = index.query(&q.with_alpha0(past));
            let new_set: HashSet<PoiId> = flipped.iter().map(|h| h.poi).collect();
            assert_ne!(top_set, new_set, "boundary {boundary} must change the set");
            verified += 1;
        }
    }
    assert!(verified > 0, "workload produced at least one finite boundary");
}

#[test]
fn mwa_pruning_saves_node_accesses_at_scale() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let workload = Workload::generate(&dataset, 10, IntervalAnchor::Random, 13);
    let (mut pruning_total, mut enumerating_total) = (0u64, 0u64);
    for &(point, interval) in &workload.queries {
        let q = KnntaQuery::new(point, interval).with_k(10).with_alpha0(0.3);
        index.stats().reset();
        let _ = index.mwa_pruning(&q);
        pruning_total += index.stats().node_accesses();
        index.stats().reset();
        let _ = index.mwa_enumerating(&q);
        enumerating_total += index.stats().node_accesses();
    }
    assert!(
        pruning_total * 2 < enumerating_total,
        "pruning {pruning_total} vs enumerating {enumerating_total}"
    );
}

#[test]
fn collective_processing_on_lbsn_workload() {
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    // 100 queries restricted to 5 interval types (as in Figure 16).
    let workload = Workload::generate(&dataset, 100, IntervalAnchor::Random, 14)
        .with_interval_types(5);
    let queries: Vec<KnntaQuery> = workload
        .queries
        .iter()
        .map(|&(p, iv)| KnntaQuery::new(p, iv).with_k(10).with_alpha0(0.3))
        .collect();

    index.stats().reset();
    let collective = index.query_batch_collective(&queries);
    let shared_accesses = index.stats().node_accesses();

    index.stats().reset();
    let individual = index.query_batch_individual(&queries);
    let individual_accesses = index.stats().node_accesses();

    // Same answers…
    for (i, (c, ind)) in collective.iter().zip(&individual).enumerate() {
        assert_eq!(
            c.iter().map(|h| h.poi).collect::<Vec<_>>(),
            ind.iter().map(|h| h.poi).collect::<Vec<_>>(),
            "query {i}"
        );
    }
    // …for far fewer node fetches.
    assert!(
        shared_accesses * 2 < individual_accesses,
        "collective {shared_accesses} vs individual {individual_accesses}"
    );
}

#[test]
fn collective_gain_grows_with_batch_size() {
    // Figure 15: the more queries processed collectively, the lower the
    // per-query cost.
    let dataset = small_dataset();
    let index = index_of(&dataset, Grouping::TarIntegral);
    let workload =
        Workload::generate(&dataset, 200, IntervalAnchor::Random, 15).with_interval_types(3);
    let mut per_query_costs = Vec::new();
    for batch in [10usize, 50, 200] {
        let queries: Vec<KnntaQuery> = workload.queries[..batch]
            .iter()
            .map(|&(p, iv)| KnntaQuery::new(p, iv).with_k(10))
            .collect();
        index.stats().reset();
        let _ = index.query_batch_collective(&queries);
        per_query_costs.push(index.stats().node_accesses() as f64 / batch as f64);
    }
    assert!(
        per_query_costs[2] < per_query_costs[0],
        "per-query cost shrinks: {per_query_costs:?}"
    );
}
