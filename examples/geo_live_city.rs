//! A live city dashboard on real-world coordinates: WGS-84 venues projected
//! to kilometres, a TAR-tree fed by a streaming check-in feed
//! (`LiveIndex`), weight-free exploration with the skyline, and index
//! persistence.
//!
//! Run with: `cargo run --release --example geo_live_city`

use knnta::core::{GeoPoint, GeoProjector, IndexConfig, KnntaQuery, LiveIndex, Poi, TarIndex};
use knnta::{AggregateSeries, CheckIn, EpochGrid, PoiId, TimeInterval, Timestamp};
use knnta::util::rng::{Rng, StdRng};

fn main() {
    // A synthetic "Paris": venues scattered around the city centre.
    let mut rng = StdRng::seed_from_u64(14);
    let center = GeoPoint::new(48.8566, 2.3522);
    let venues: Vec<GeoPoint> = (0..4000)
        .map(|_| {
            GeoPoint::new(
                center.lat + rng.gen_range(-0.15..0.15),
                center.lon + rng.gen_range(-0.22..0.22),
            )
        })
        .collect();

    // Project to planar kilometres.
    let proj = GeoProjector::fit(&venues);
    let bounds = proj.bounds(&venues, 2.0);
    println!(
        "projected {} venues around ({:.4}, {:.4}); city box {:.0} x {:.0} km",
        venues.len(),
        proj.origin().lat,
        proj.origin().lon,
        bounds.max[0] - bounds.min[0],
        bounds.max[1] - bounds.min[1],
    );

    // Eight weekly epochs; the index starts with no history.
    let grid = EpochGrid::fixed_days(7, 8);
    let index = TarIndex::build_bulk(
        IndexConfig::default(),
        grid.clone(),
        bounds,
        venues.iter().enumerate().map(|(i, &g)| {
            let xy = proj.project(g);
            (Poi::new(i as u32, xy[0], xy[1]), AggregateSeries::new())
        }),
    );
    let live = LiveIndex::new(index, 0);

    // Stream six weeks of check-ins: every venue has a base rate; a few are
    // trendy and heat up over time.
    let trendy: Vec<u32> = (0..25).map(|_| rng.gen_range(0..4000)).collect();
    let mut events = 0u64;
    for week in 0..6i64 {
        for _ in 0..3_000 {
            let venue = rng.gen_range(0..4000u32);
            let t = Timestamp::from_days(week * 7 + rng.gen_range(0i64..7));
            live.record(CheckIn::at(PoiId(venue), t));
            events += 1;
        }
        for &venue in &trendy {
            for _ in 0..(week as u32 + 1) * 4 {
                let t = Timestamp::from_days(week * 7 + rng.gen_range(0i64..7));
                live.record(CheckIn::at(PoiId(venue), t));
                events += 1;
            }
        }
        live.seal_epoch();
    }
    println!(
        "streamed {events} check-ins over 6 weeks ({} dropped, {} pending)",
        live.dropped(),
        live.pending()
    );

    // Fold the sealed weeks into the base tree so the base-level extensions
    // below (skyline, persistence) see the whole stream, then take an
    // immutable snapshot to query.
    live.merge_sealed();
    let snap = live.snapshot();

    // "What's hot near Notre-Dame in the last month?"
    let me = proj.project(GeoPoint::new(48.853, 2.3499));
    let last_month = TimeInterval::new(Timestamp::from_days(14), Timestamp::from_days(42));
    let query = KnntaQuery::new(me, last_month).with_k(5).with_alpha0(0.4);
    println!("\ntop-5 near Notre-Dame, last 4 weeks:");
    for hit in snap.query(&query) {
        let geo = proj.unproject(
            snap.index()
                .export_pois()
                .iter()
                .find(|(p, _)| p.id == hit.poi)
                .map(|(p, _)| p.pos)
                .unwrap(),
        );
        println!(
            "  {}  ({:.4}, {:.4})  {:>3} check-ins  {:.2} km away  score {:.3}",
            hit.poi, geo.lat, geo.lon, hit.aggregate, hit.distance, hit.score
        );
    }

    // Weight-free view: the skyline (every POI that is best for SOME
    // distance/popularity trade-off).
    let sky = snap.index().skyline(me, last_month);
    println!("\nskyline ({} venues span all trade-offs):", sky.len());
    for hit in sky.iter().take(6) {
        println!(
            "  {}  {:.2} km, {} check-ins",
            hit.poi, hit.distance, hit.aggregate
        );
    }

    // Persist the index and load it back.
    let snapshot = snap.index().save_to_vec();
    let restored = TarIndex::load_from_slice(&snapshot).expect("valid snapshot");
    assert_eq!(restored.query(&query).len(), 5);
    println!(
        "\npersisted the index: {} bytes; reloaded copy answers identically",
        snapshot.len()
    );
}
