//! Exploring results by adjusting weights — the Section 7.1 enhancement.
//!
//! New users struggle to set the distance-vs-popularity weight α0; sliding
//! it and seeing the same results is discouraging. The minimum weight
//! adjustment (MWA) tells the UI exactly how far the slider must move to
//! change the answer.
//!
//! Run with: `cargo run --release --example weight_explorer`

use knnta::core::{IndexConfig, KnntaQuery, Poi, TarIndex};
use knnta::{TimeInterval, Timestamp};
use rtree::Rect;

fn main() {
    let dataset = knnta::lbsn::nyc().generate(0.1, 7, 99);
    let grid = dataset.grid.clone();
    let index = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        Rect::new(dataset.bounds.0, dataset.bounds.1),
        dataset
            .snapshot(grid.len())
            .into_iter()
            .map(|(id, pos, series)| (Poi { id, pos }, series)),
    );
    println!(
        "NYC-like dataset: {} POIs, {} nodes\n",
        index.len(),
        index.node_count()
    );

    let me = dataset.positions[42];
    let tc = grid.tc();
    let iq = TimeInterval::new(tc - 128 * Timestamp::DAY, tc);
    let mut alpha0 = 0.5;

    // Walk the weight axis: at each step ask for the MWA and jump past it.
    for step in 0..4 {
        let query = KnntaQuery::new(me, iq).with_k(3).with_alpha0(alpha0);
        let (topk, adjustment) = index.mwa_pruning(&query);
        println!("α0 = {alpha0:.4} → top-3:");
        for hit in &topk {
            println!(
                "   {}  score {:.3}  (s0 {:.3}, s1 {:.3})",
                hit.poi, hit.score, hit.s0, hit.s1
            );
        }
        match (adjustment.lower, adjustment.upper) {
            (Some(l), Some(u)) => println!(
                "   ↕ results change below α0 = {l:.4} or above α0 = {u:.4}"
            ),
            (Some(l), None) => println!("   ↓ results change below α0 = {l:.4} only"),
            (None, Some(u)) => println!("   ↑ results change above α0 = {u:.4} only"),
            (None, None) => {
                println!("   ∎ no weight changes this top-k — done exploring");
                break;
            }
        }
        // Move just past the nearest boundary, clamped to the open (0,1).
        let Some(boundary) = adjustment.nearest(alpha0) else {
            break;
        };
        alpha0 = if boundary < alpha0 {
            (boundary - 1e-4).max(0.0001)
        } else {
            (boundary + 1e-4).min(0.9999)
        };
        println!("   … sliding to α0 = {alpha0:.4} (step {})\n", step + 1);
    }

    // Show the cost advantage of the skyline-based algorithm.
    let query = KnntaQuery::new(me, iq).with_k(10).with_alpha0(0.5);
    index.stats().reset();
    let _ = index.mwa_pruning(&query);
    let pruning = index.stats().node_accesses();
    index.stats().reset();
    let _ = index.mwa_enumerating(&query);
    let enumerating = index.stats().node_accesses();
    println!(
        "\nMWA cost, k = 10: pruning {pruning} node accesses vs enumerating {enumerating} ({}x)",
        enumerating / pruning.max(1)
    );
}
