//! Location-based mobile advertising: thousands of users' kNNTA queries per
//! second, answered collectively (Section 7.2).
//!
//! An ad platform continuously ranks venues for every active user (close +
//! trending = good ad slot). Processing each request individually re-reads
//! the same index nodes; the collective scheme shares node accesses across
//! the batch and aggregate computations across the few standard time
//! windows the product offers ("today", "this week", "this month").
//!
//! Run with: `cargo run --release --example ad_dashboard`

use knnta::core::{IndexConfig, KnntaQuery, Poi, TarIndex};
use knnta::{TimeInterval, Timestamp};
use knnta::util::rng::{Rng, StdRng};
use rtree::Rect;
use std::time::Instant;

fn main() {
    let dataset = knnta::lbsn::gw().generate(0.02, 7, 3);
    let grid = dataset.grid.clone();
    let index = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        Rect::new(dataset.bounds.0, dataset.bounds.1),
        dataset
            .snapshot(grid.len())
            .into_iter()
            .map(|(id, pos, series)| (Poi { id, pos }, series)),
    );
    println!(
        "venue index: {} POIs, {} nodes\n",
        index.len(),
        index.node_count()
    );

    // The product offers three standard windows; users are spread over the
    // map (their positions sampled near venues).
    let tc = grid.tc();
    let windows = [
        ("this week", TimeInterval::new(tc - 7 * Timestamp::DAY, tc)),
        ("this fortnight", TimeInterval::new(tc - 14 * Timestamp::DAY, tc)),
        ("this month", TimeInterval::new(tc - 28 * Timestamp::DAY, tc)),
    ];
    let mut rng = StdRng::seed_from_u64(1);
    let batch: Vec<KnntaQuery> = (0..2000)
        .map(|_| {
            let venue = dataset.positions[rng.gen_range(0..dataset.positions.len())];
            let user = [venue[0] + rng.gen_range(-0.5..0.5), venue[1] + rng.gen_range(-0.5..0.5)];
            let (_, window) = windows[rng.gen_range(0..windows.len())];
            KnntaQuery::new(user, window).with_k(10).with_alpha0(0.3)
        })
        .collect();
    println!("batch: {} user queries, {} window types", batch.len(), windows.len());

    // Individual processing: every query pays its own traversal.
    index.stats().reset();
    let t0 = Instant::now();
    let individual = index.query_batch_individual(&batch);
    let individual_time = t0.elapsed();
    let individual_accesses = index.stats().node_accesses();

    // Collective processing: shared node fetches + shared aggregates.
    index.stats().reset();
    let t0 = Instant::now();
    let collective = index.query_batch_collective(&batch);
    let collective_time = t0.elapsed();
    let collective_accesses = index.stats().node_accesses();

    // Same answers.
    assert_eq!(individual.len(), collective.len());
    for (a, b) in individual.iter().zip(&collective) {
        assert_eq!(
            a.iter().map(|h| h.poi).collect::<Vec<_>>(),
            b.iter().map(|h| h.poi).collect::<Vec<_>>()
        );
    }

    println!("\n                node accesses   per query   wall time");
    println!(
        "individual      {:>12}   {:>9.2}   {:?}",
        individual_accesses,
        individual_accesses as f64 / batch.len() as f64,
        individual_time
    );
    println!(
        "collective      {:>12}   {:>9.2}   {:?}",
        collective_accesses,
        collective_accesses as f64 / batch.len() as f64,
        collective_time
    );
    println!(
        "\nsharing factor: {:.1}x fewer node accesses",
        individual_accesses as f64 / collective_accesses.max(1) as f64
    );

    // A sample of what the ad engine sees.
    println!("\nsample ad slots for the first user:");
    for hit in &collective[0] {
        println!(
            "  {}  score {:.3}  {:>3} check-ins in window  {:.1} km away",
            hit.poi, hit.score, hit.aggregate, hit.distance
        );
    }
}
