//! Quickstart: build a TAR-tree over a handful of POIs and answer a kNNTA
//! query — the paper's running example (Figure 1 / Table 1).
//!
//! Run with: `cargo run --example quickstart`

use knnta::core::{IndexConfig, KnntaQuery, Poi, TarIndex};
use knnta::{AggregateSeries, EpochGrid, TimeInterval};
use rtree::Rect;

fn main() {
    // Three epochs ([t0,t1), [t1,t2), [t2,tc]) and the 12 POIs a–l of the
    // paper's Figure 1, with the check-in counts of Table 1.
    let grid = EpochGrid::fixed_days(1, 3);
    let bounds = Rect::new([0.0, 0.0], [11.0, 11.0]);
    let table1: [(&str, f64, f64, [u64; 3]); 12] = [
        ("a", 1.0, 9.0, [1, 1, 0]),
        ("b", 3.0, 8.0, [1, 0, 1]),
        ("c", 4.5, 8.5, [2, 2, 2]),
        ("d", 1.5, 6.5, [2, 0, 0]),
        ("e", 3.0, 6.0, [1, 1, 0]),
        ("f", 6.0, 5.0, [3, 5, 4]),
        ("g", 7.5, 6.0, [2, 3, 1]),
        ("h", 9.0, 7.0, [1, 1, 0]),
        ("i", 8.0, 3.0, [2, 2, 2]),
        ("j", 9.5, 2.0, [2, 0, 0]),
        ("k", 7.0, 1.5, [1, 0, 1]),
        ("l", 5.0, 2.0, [1, 0, 1]),
    ];

    let pois = table1.iter().enumerate().map(|(i, &(_, x, y, counts))| {
        let series = AggregateSeries::from_pairs(
            counts
                .iter()
                .enumerate()
                .map(|(e, &v)| (e as u32, v)),
        );
        (Poi::new(i as u32, x, y), series)
    });

    // Build the TAR-tree (integral 3-D grouping, 1024-byte nodes).
    let index = TarIndex::build(IndexConfig::default(), grid, bounds, pois);
    println!(
        "TAR-tree over {} POIs ({} nodes, height {})",
        index.len(),
        index.node_count(),
        index.height()
    );

    // The paper's example query: q = (4, 4.5), Iq = [t0, tc], α0 = 0.3, k = 1.
    let query = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3))
        .with_k(3)
        .with_alpha0(0.3);
    println!(
        "\nkNNTA query at (4.0, 4.5), interval [t0, tc], α0 = 0.3, k = {}:",
        query.k
    );
    for (rank, hit) in index.query(&query).iter().enumerate() {
        let name = table1[hit.poi.index()].0;
        println!(
            "  #{rank}: POI {name}  score {:.3}  (distance {:.2}, {} check-ins)",
            hit.score, hit.distance, hit.aggregate
        );
    }
    // → POI f wins: 12 check-ins over the interval (score ≈ 0.06), exactly
    //   as computed in Section 3.2 of the paper.

    println!(
        "\nnode accesses so far: {}",
        index.stats().node_accesses()
    );
}
