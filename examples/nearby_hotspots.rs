//! "Places Nearby": find nearby clubs gathering the most people lately —
//! the motivating LBSN scenario of the paper's introduction, on a synthetic
//! Foursquare-like dataset with live check-in ingestion.
//!
//! Run with: `cargo run --release --example nearby_hotspots`

use knnta::core::{Grouping, IndexConfig, KnntaQuery, Poi, TarIndex};
use knnta::{PoiId, TimeInterval, Timestamp};
use rtree::Rect;

fn main() {
    // A scaled-down Foursquare (GS) city: ~9k venues over 180 days.
    let dataset = knnta::lbsn::gs().generate(0.05, 7, 7);
    let grid = dataset.grid.clone();
    let bounds = Rect::new(dataset.bounds.0, dataset.bounds.1);
    println!(
        "generated {}: {} venues, {} check-ins over {} weeks",
        dataset.spec.name,
        dataset.len(),
        dataset.total_checkins(),
        grid.len()
    );

    let mut index = TarIndex::build(
        IndexConfig::with_grouping(Grouping::TarIntegral),
        grid.clone(),
        bounds,
        dataset
            .snapshot(grid.len())
            .into_iter()
            .map(|(id, pos, series)| (Poi { id, pos }, series)),
    );
    println!(
        "TAR-tree: {} nodes, height {}\n",
        index.node_count(),
        index.height()
    );

    // A user standing at a venue downtown asks: "popular places near me,
    // over the last four weeks" (α0 = 0.3 → popularity-weighted).
    let me = dataset.positions[100];
    let tc = grid.tc();
    let last_month = TimeInterval::new(tc - 28 * Timestamp::DAY, tc);
    let query = KnntaQuery::new(me, last_month).with_k(5).with_alpha0(0.3);

    println!("top-5 hotspots near ({:.1}, {:.1}), last 4 weeks:", me[0], me[1]);
    for hit in index.query(&query) {
        println!(
            "  {}  score {:.3}  {:>4} recent check-ins  {:.1} km away",
            hit.poi, hit.score, hit.aggregate, hit.distance
        );
    }

    // A flash mob hits one far-away venue: digest the new epoch's check-ins
    // (Section 4.2) and watch the ranking react.
    let flash_venue = PoiId(4321.min(dataset.len() as u32 - 1));
    let last_epoch = grid.len() - 1;
    index.ingest_epoch(last_epoch, &[(flash_venue, 500)]);
    println!("\n… {flash_venue} suddenly gets 500 check-ins this week …\n");

    println!("top-5 hotspots, same query:");
    for hit in index.query(&query) {
        let marker = if hit.poi == flash_venue { "  ← the flash mob" } else { "" };
        println!(
            "  {}  score {:.3}  {:>4} recent check-ins  {:.1} km away{marker}",
            hit.poi, hit.score, hit.aggregate, hit.distance
        );
    }

    // Cost: the whole session in node accesses (the paper's metric).
    println!(
        "\ntotal node accesses: {} (of {} nodes in the tree)",
        index.stats().node_accesses(),
        index.node_count()
    );
}
