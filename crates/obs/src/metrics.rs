//! Lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Registration (name → handle) takes a mutex once per call site; the
//! handles themselves are bare atomics, so the hot path never locks.
//! Names follow `knnta.<crate>.<subsystem>.<name>` (see DESIGN.md §11).
//!
//! Snapshots serialize to the stable `knnta.metrics.v1` schema:
//!
//! ```json
//! {
//!   "schema": "knnta.metrics.v1",
//!   "counters": {"knnta.core.search.pops": 12},
//!   "gauges": {"knnta.core.batch.active": 3},
//!   "histograms": [
//!     {"name": "knnta.core.storage.paged.fetch_ns",
//!      "bounds": [1000, 10000], "buckets": [5, 2, 1],
//!      "count": 8, "sum": 31250}
//!   ]
//! }
//! ```
//!
//! Histogram `buckets` has one more entry than `bounds` (the overflow
//! bucket); `bounds` are inclusive upper bounds in ascending order.

use knnta_util::json::{escape_string, JsonValue};
use knnta_util::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle (no-op when vended by a
/// disabled [`crate::Obs`]).
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub(crate) fn noop() -> Self {
        Self(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (a single atomic add; `0` is skipped).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            if n > 0 {
                c.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A set-or-adjust gauge handle (no-op when vended by a disabled
/// [`crate::Obs`]).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub(crate) fn noop() -> Self {
        Self(None)
    }

    /// Wraps an existing atomic cell (shared with the window registry).
    pub(crate) fn from_cell(cell: Arc<AtomicI64>) -> Self {
        Self(Some(cell))
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistCore {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle (no-op when vended by a disabled
/// [`crate::Obs`]). Bucket bounds are inclusive upper bounds.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistCore>>);

impl Histogram {
    pub(crate) fn noop() -> Self {
        Self(None)
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            let idx = h
                .bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(h.bounds.len());
            h.buckets[idx].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Total number of observations (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of all observed values (0 for a no-op handle).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }
}

/// The name → handle registry behind an enabled [`crate::Obs`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCore>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or fetches) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Registers (or fetches) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Registers (or fetches) the histogram `name`. For a fresh
    /// registration, `bounds` must be strictly ascending; for an existing
    /// name the already-registered bounds win.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut map = self.histograms.lock();
        let cell = map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(HistCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })
        });
        Histogram(Some(Arc::clone(cell)))
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsDoc {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| HistogramDoc {
                name: k.clone(),
                bounds: h.bounds.clone(),
                buckets: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
            })
            .collect();
        MetricsDoc {
            schema: crate::METRICS_SCHEMA.to_string(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// One histogram in a [`MetricsDoc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramDoc {
    /// Metric name.
    pub name: String,
    /// Inclusive upper bucket bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `bounds.len() + 1` entries, the last
    /// being the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A metrics artifact: a snapshot of the registry, or a parsed
/// `knnta.metrics.v1` JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsDoc {
    /// Schema identifier (`knnta.metrics.v1`).
    pub schema: String,
    /// Counter (name, value) pairs sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge (name, value) pairs sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms sorted by name.
    pub histograms: Vec<HistogramDoc>,
}

impl MetricsDoc {
    /// The counter value for `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Serializes to the `knnta.metrics.v1` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", escape_string(crate::METRICS_SCHEMA));
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", escape_string(name), v);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", escape_string(name), v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"name\": {}, \"bounds\": [", escape_string(&h.name));
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("], \"buckets\": [");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            let _ = write!(out, "], \"count\": {}, \"sum\": {}}}", h.count, h.sum);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a `knnta.metrics.v1` document (round-trips [`MetricsDoc::to_json`]).
    pub fn parse(s: &str) -> Result<MetricsDoc, String> {
        let v = JsonValue::parse(s)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema")?
            .to_string();
        let mut counters = Vec::new();
        for (name, val) in v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or("missing counters object")?
        {
            counters.push((
                name.clone(),
                val.as_u64().ok_or_else(|| format!("counter {name} not a number"))?,
            ));
        }
        let mut gauges = Vec::new();
        for (name, val) in v
            .get("gauges")
            .and_then(JsonValue::as_obj)
            .ok_or("missing gauges object")?
        {
            gauges.push((
                name.clone(),
                val.as_f64().ok_or_else(|| format!("gauge {name} not a number"))? as i64,
            ));
        }
        let mut histograms = Vec::new();
        for h in v
            .get("histograms")
            .and_then(JsonValue::as_arr)
            .ok_or("missing histograms array")?
        {
            let nums = |key: &str| -> Result<Vec<u64>, String> {
                h.get(key)
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| format!("histogram missing {key}"))?
                    .iter()
                    .map(|x| x.as_u64().ok_or_else(|| format!("bad {key} entry")))
                    .collect()
            };
            histograms.push(HistogramDoc {
                name: h
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("histogram missing name")?
                    .to_string(),
                bounds: nums("bounds")?,
                buckets: nums("buckets")?,
                count: h.get("count").and_then(JsonValue::as_u64).ok_or("histogram missing count")?,
                sum: h.get("sum").and_then(JsonValue::as_u64).ok_or("histogram missing sum")?,
            });
        }
        Ok(MetricsDoc {
            schema,
            counters,
            gauges,
            histograms,
        })
    }

    /// Structural validation: schema identifier, sorted unique names,
    /// histogram bucket arithmetic.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != crate::METRICS_SCHEMA {
            return Err(format!("unexpected schema {:?}", self.schema));
        }
        for names in [
            self.counters.iter().map(|(k, _)| k).collect::<Vec<_>>(),
            self.gauges.iter().map(|(k, _)| k).collect(),
            self.histograms.iter().map(|h| &h.name).collect(),
        ] {
            if names.windows(2).any(|w| w[0] >= w[1]) {
                return Err("metric names not sorted/unique".to_string());
            }
        }
        for h in &self.histograms {
            if h.buckets.len() != h.bounds.len() + 1 {
                return Err(format!("histogram {} bucket/bound mismatch", h.name));
            }
            if h.buckets.iter().sum::<u64>() != h.count {
                return Err(format!("histogram {} count mismatch", h.name));
            }
            if h.bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("histogram {} bounds not ascending", h.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("knnta.x");
        let b = reg.counter("knnta.x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let g = reg.gauge("knnta.g");
        g.set(10);
        g.add(-3);
        assert_eq!(reg.gauge("knnta.g").get(), 7);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("knnta.h", &[10, 100]);
        for v in [1, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 101 + 5000);
        let doc = reg.snapshot();
        assert_eq!(doc.histograms[0].buckets, vec![2, 2, 2]);
        doc.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        MetricsRegistry::new().histogram("knnta.bad", &[10, 10]);
    }

    /// Bounds are *inclusive* upper bounds: a sample landing exactly on a
    /// bound must go to that bucket (not the next one up), and `sum`/`count`
    /// must stay consistent with the bucket tally. Exercised against every
    /// shared default table so the cumulative and window registries agree.
    #[test]
    fn sample_on_inclusive_bound_keeps_sum_count_consistent() {
        for table in [
            crate::bounds::FETCH_NS,
            crate::bounds::LATENCY_US,
            crate::bounds::RATIO_X1000,
        ] {
            let reg = MetricsRegistry::new();
            let h = reg.histogram("knnta.edge", table);
            for &b in table {
                h.record(b);
            }
            let doc = reg.snapshot();
            doc.validate().unwrap();
            let hd = &doc.histograms[0];
            // One sample per bound, each in its own (inclusive) bucket;
            // nothing leaks into the overflow bucket.
            let mut want = vec![1u64; table.len()];
            want.push(0);
            assert_eq!(hd.buckets, want);
            assert_eq!(hd.count, table.len() as u64);
            assert_eq!(hd.sum, table.iter().sum::<u64>());
        }
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("knnta.core.search.pops").add(12);
        reg.counter("knnta.core.search.pushes").add(30);
        reg.gauge("knnta.core.batch.active").set(-2);
        let h = reg.histogram("knnta.core.storage.paged.fetch_ns", &[1_000, 10_000]);
        h.record(500);
        h.record(20_000);
        let doc = reg.snapshot();
        doc.validate().unwrap();
        let json = doc.to_json();
        let back = MetricsDoc::parse(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.counter("knnta.core.search.pops"), Some(12));
        assert_eq!(back.counter("absent"), None);
    }

    #[test]
    fn empty_registry_serializes_and_validates() {
        let doc = MetricsRegistry::new().snapshot();
        let back = MetricsDoc::parse(&doc.to_json()).unwrap();
        back.validate().unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn validate_rejects_broken_docs() {
        let mut doc = MetricsRegistry::new().snapshot();
        doc.schema = "bogus".to_string();
        assert!(doc.validate().is_err());
        let mut doc = MetricsRegistry::new().snapshot();
        doc.counters = vec![("b".into(), 1), ("a".into(), 2)];
        assert!(doc.validate().is_err());
        let mut doc = MetricsRegistry::new().snapshot();
        doc.histograms = vec![HistogramDoc {
            name: "h".into(),
            bounds: vec![1],
            buckets: vec![1, 2],
            count: 99,
            sum: 0,
        }];
        assert!(doc.validate().is_err());
    }
}
