//! Renders a per-phase breakdown table from a trace artifact, and a
//! `top`-style text view over live-telemetry snapshots.
//!
//! [`render_report`] backs `knnta report <trace.json>`: it aggregates the
//! synthetic `phase.*` spans the query path emits (filter scoring vs. TIA
//! aggregation vs. page I/O) into the per-phase cost decomposition the
//! paper reports (Fig. 12-style); groups the service pipeline spans
//! (`admit`/`tile`/`scatter`/`merge`, with a per-shard scatter table and
//! retry counts from the `attempt` attrs) and the per-query `segment.*`
//! spans of sampled tail traces; then a per-span-name summary and, when a
//! metrics artifact is supplied, the counter table.
//!
//! [`render_top`] backs `knnta top <snapshot.json>`: window latency
//! quantiles, rates, and shard-health gauges from a `knnta.snapshot.v1`
//! document.

use crate::live::SnapshotDoc;
use crate::metrics::MetricsDoc;
use crate::trace::TraceDoc;
use std::fmt::Write as _;

/// The service pipeline spans grouped into their own report section
/// (in pipeline order).
const SERVICE_SPANS: [&str; 4] = ["admit", "tile", "scatter", "merge"];

/// Pretty-prints `ns` with an adaptive unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// One aggregated row of the report.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    name: String,
    count: u64,
    total_ns: u64,
}

fn aggregate<'a>(names: impl Iterator<Item = (&'a str, u64)>) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    for (name, ns) in names {
        match rows.iter_mut().find(|r| r.name == name) {
            Some(r) => {
                r.count += 1;
                r.total_ns += ns;
            }
            None => rows.push(Row {
                name: name.to_string(),
                count: 1,
                total_ns: ns,
            }),
        }
    }
    rows
}

/// Renders the human-readable report for `trace`, with the counter table
/// appended when `metrics` is given.
pub fn render_report(trace: &TraceDoc, metrics: Option<&MetricsDoc>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} spans, {} events ({})",
        trace.spans.len(),
        trace.events.len(),
        trace.schema
    );

    // Top-level work: every span whose name is a root-ish unit of work.
    let queries: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.parent == 0)
        .collect();
    let total_ns: u64 = queries.iter().map(|s| s.duration_ns()).sum();
    let _ = writeln!(
        out,
        "root spans: {} (total {})",
        queries.len(),
        format_ns(total_ns)
    );

    // Fig. 12-style decomposition from the synthetic phase.* spans.
    let phases = aggregate(
        trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("phase."))
            .map(|s| (s.name.as_str(), s.duration_ns())),
    );
    if !phases.is_empty() {
        let phase_total: u64 = phases.iter().map(|r| r.total_ns).sum();
        out.push_str("\nper-phase breakdown:\n");
        let _ = writeln!(out, "  {:<14} {:>8} {:>12} {:>7}", "phase", "spans", "total", "share");
        for r in &phases {
            let share = if phase_total > 0 {
                100.0 * r.total_ns as f64 / phase_total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>12} {:>6.1}%",
                r.name.trim_start_matches("phase."),
                r.count,
                format_ns(r.total_ns),
                share
            );
        }
    }

    // Service pipeline decomposition (the PR 9 spans), in pipeline order
    // rather than lumped into the generic table.
    let service: Vec<Row> = SERVICE_SPANS
        .iter()
        .filter_map(|&phase| {
            let rows = aggregate(
                trace
                    .spans
                    .iter()
                    .filter(|s| s.name == phase)
                    .map(|s| (s.name.as_str(), s.duration_ns())),
            );
            rows.into_iter().next()
        })
        .collect();
    if !service.is_empty() {
        let service_total: u64 = service.iter().map(|r| r.total_ns).sum();
        out.push_str("\nservice phases:\n");
        let _ = writeln!(out, "  {:<14} {:>8} {:>12} {:>7}", "phase", "spans", "total", "share");
        for r in &service {
            let share = if service_total > 0 {
                100.0 * r.total_ns as f64 / service_total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>12} {:>6.1}%",
                r.name,
                r.count,
                format_ns(r.total_ns),
                share
            );
        }
    }

    // Scatter broken down by shard: execution count, total time, and
    // retries (executions with a nonzero `attempt`/`attempts` attr). Both
    // the live `scatter` spans and the `segment.shard` spans of sampled
    // tail traces carry a `shard` attr.
    let mut shards: Vec<(u64, u64, u64, u64)> = Vec::new(); // (shard, count, ns, retries)
    for s in trace
        .spans
        .iter()
        .filter(|s| s.name == "scatter" || s.name == "segment.shard")
    {
        let Some(shard) = s.attr("shard").and_then(|a| a.as_u64()) else {
            continue;
        };
        let retry = s
            .attr("attempt")
            .or_else(|| s.attr("attempts"))
            .and_then(|a| a.as_u64())
            .unwrap_or(0)
            > 0;
        match shards.iter_mut().find(|(id, ..)| *id == shard) {
            Some((_, count, ns, retries)) => {
                *count += 1;
                *ns += s.duration_ns();
                *retries += retry as u64;
            }
            None => shards.push((shard, 1, s.duration_ns(), retry as u64)),
        }
    }
    if !shards.is_empty() {
        shards.sort_by_key(|&(id, ..)| id);
        out.push_str("\nscatter by shard:\n");
        let _ = writeln!(
            out,
            "  {:<14} {:>8} {:>12} {:>8}",
            "shard", "execs", "total", "retries"
        );
        for (id, count, ns, retries) in &shards {
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>12} {:>8}",
                format!("shard {id}"),
                count,
                format_ns(*ns),
                retries
            );
        }
    }

    // Per-query latency segments from sampled tail traces (the synthetic
    // `segment.*` trees the serving telemetry retains for slow queries).
    let segments = aggregate(
        trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("segment.") && s.name != "segment.shard")
            .map(|s| (s.name.as_str(), s.duration_ns())),
    );
    if !segments.is_empty() {
        let seg_total: u64 = segments.iter().map(|r| r.total_ns).sum();
        out.push_str("\nper-query segments:\n");
        let _ = writeln!(out, "  {:<14} {:>8} {:>12} {:>7}", "segment", "spans", "total", "share");
        for r in &segments {
            let share = if seg_total > 0 {
                100.0 * r.total_ns as f64 / seg_total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>12} {:>6.1}%",
                r.name.trim_start_matches("segment."),
                r.count,
                format_ns(r.total_ns),
                share
            );
        }
    }

    let others = aggregate(
        trace
            .spans
            .iter()
            .filter(|s| {
                !s.name.starts_with("phase.")
                    && !s.name.starts_with("segment.")
                    && !SERVICE_SPANS.contains(&s.name.as_str())
            })
            .map(|s| (s.name.as_str(), s.duration_ns())),
    );
    if !others.is_empty() {
        out.push_str("\nspans:\n");
        let _ = writeln!(out, "  {:<14} {:>8} {:>12}", "name", "count", "total");
        for r in &others {
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>12}",
                r.name,
                r.count,
                format_ns(r.total_ns)
            );
        }
    }

    if let Some(m) = metrics {
        if !m.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, v) in &m.counters {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        for h in &m.histograms {
            let _ = writeln!(
                out,
                "  {:<44} {:>12} obs, mean {}",
                h.name,
                h.count,
                format_ns(if h.count > 0 { h.sum / h.count } else { 0 })
            );
        }
    }
    out
}

/// Pretty-prints `us` with an adaptive unit.
fn format_us(us: u64) -> String {
    format_ns(us.saturating_mul(1_000))
}

/// Renders the `knnta top` text view of a live-telemetry snapshot: window
/// histograms with their quantiles, windowed counter rates, and gauges
/// (per-shard health).
pub fn render_top(doc: &SnapshotDoc) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "snapshot: tick {} (window = last {} epochs, {})",
        doc.tick, doc.windows, doc.schema
    );
    if !doc.histograms.is_empty() {
        out.push_str("\nlatency (window):\n");
        let _ = writeln!(
            out,
            "  {:<40} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p95", "p99", "max"
        );
        for h in &doc.histograms {
            // Only `_us`-suffixed histograms are latencies; others (e.g.
            // the planner's calibration-ratio window) print raw values.
            let fmt = |v: u64| {
                if h.name.ends_with("_us") {
                    format_us(v)
                } else {
                    v.to_string()
                }
            };
            let _ = writeln!(
                out,
                "  {:<40} {:>8} {:>10} {:>10} {:>10} {:>10}",
                h.name,
                h.count,
                fmt(h.p50),
                fmt(h.p95),
                fmt(h.p99),
                fmt(h.max)
            );
        }
    }
    if !doc.counters.is_empty() {
        out.push_str("\ncounters:\n");
        let _ = writeln!(out, "  {:<40} {:>10} {:>12}", "counter", "window", "lifetime");
        for c in &doc.counters {
            let _ = writeln!(out, "  {:<40} {:>10} {:>12}", c.name, c.window, c.lifetime);
        }
    }
    if !doc.gauges.is_empty() {
        out.push_str("\ngauges:\n");
        for (name, v) in &doc.gauges {
            let _ = writeln!(out, "  {name:<40} {v:>10}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, Tracer};
    use crate::MetricsRegistry;

    #[test]
    fn report_aggregates_phases_and_counters() {
        let t = Tracer::new();
        let q = t.add_span("query", SpanId::NONE, 0, 1_000_000, vec![]);
        t.add_span("phase.filter", q, 0, 600_000, vec![]);
        t.add_span("phase.tia", q, 600_000, 900_000, vec![]);
        t.add_span("phase.io", q, 900_000, 1_000_000, vec![]);
        let reg = MetricsRegistry::new();
        reg.counter("knnta.core.search.node_accesses").add(42);
        let report = render_report(&t.snapshot(), Some(&reg.snapshot()));
        assert!(report.contains("per-phase breakdown"));
        assert!(report.contains("filter"));
        assert!(report.contains("60.0%"));
        assert!(report.contains("tia"));
        assert!(report.contains("io"));
        assert!(report.contains("knnta.core.search.node_accesses"));
        assert!(report.contains("42"));
    }

    #[test]
    fn report_handles_empty_trace() {
        let report = render_report(&Tracer::new().snapshot(), None);
        assert!(report.contains("0 spans"));
    }

    #[test]
    fn report_groups_service_spans_by_phase_and_shard() {
        let t = Tracer::new();
        t.add_span("admit", SpanId::NONE, 0, 100_000, vec![("flush".into(), 1u64.into())]);
        t.add_span("tile", SpanId::NONE, 100_000, 150_000, vec![]);
        for (shard, attempt, start, end) in
            [(0u64, 0u64, 150_000u64, 500_000u64), (1, 0, 150_000, 400_000), (1, 1, 400_000, 700_000)]
        {
            t.add_span(
                "scatter",
                SpanId::NONE,
                start,
                end,
                vec![("shard".into(), shard.into()), ("attempt".into(), attempt.into())],
            );
        }
        t.add_span("merge", SpanId::NONE, 700_000, 750_000, vec![]);
        let report = render_report(&t.snapshot(), None);
        assert!(report.contains("service phases:"));
        assert!(report.contains("admit"));
        assert!(report.contains("scatter"));
        assert!(report.contains("scatter by shard:"));
        assert!(report.contains("shard 0"));
        assert!(report.contains("shard 1"));
        // Shard 1 ran twice, once as a retry; service spans stay out of the
        // generic table.
        assert!(!report.contains("\nspans:"));
    }

    #[test]
    fn report_groups_tail_trace_segments() {
        let t = Tracer::new();
        let root = t.add_span("served_query", SpanId::NONE, 0, 1_000_000, vec![]);
        t.add_span("segment.admit", root, 0, 200_000, vec![]);
        t.add_span("segment.queue", root, 200_000, 300_000, vec![]);
        let scatter = t.add_span("segment.scatter", root, 300_000, 900_000, vec![]);
        t.add_span(
            "segment.shard",
            scatter,
            300_000,
            900_000,
            vec![("shard".into(), 3u64.into()), ("attempts".into(), 0u64.into())],
        );
        t.add_span("segment.merge", root, 900_000, 1_000_000, vec![]);
        let report = render_report(&t.snapshot(), None);
        assert!(report.contains("per-query segments:"));
        assert!(report.contains("admit"));
        assert!(report.contains("queue"));
        assert!(report.contains("scatter"));
        assert!(report.contains("merge"));
        assert!(report.contains("shard 3"));
        // 600µs of 1000µs total segment time.
        assert!(report.contains("60.0%"));
    }

    #[test]
    fn top_renders_snapshot_tables() {
        let w = crate::LiveWindows::new(4);
        let c = w.counter("knnta.service.answered");
        let h = w.histogram("knnta.service.window.e2e_us", &[100, 1_000]);
        let g = w.gauge("knnta.service.shard0.queue_depth");
        c.add(7);
        g.set(3);
        for v in [50, 800, 2_500] {
            h.record(v);
        }
        let top = render_top(&w.snapshot());
        assert!(top.contains("tick 0"));
        assert!(top.contains("last 4 epochs"));
        assert!(top.contains("knnta.service.window.e2e_us"));
        assert!(top.contains("knnta.service.answered"));
        assert!(top.contains("knnta.service.shard0.queue_depth"));
        // 7 window == 7 lifetime for a fresh registry.
        assert!(top.contains("7"));
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(5), "5 ns");
        assert_eq!(format_ns(1_500), "1.500 us");
        assert_eq!(format_ns(2_500_000), "2.500 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }
}
