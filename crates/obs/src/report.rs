//! Renders a per-phase breakdown table from a trace artifact.
//!
//! This backs `knnta report <trace.json>`: it aggregates the synthetic
//! `phase.*` spans the query path emits (filter scoring vs. TIA aggregation
//! vs. page I/O) into the per-phase cost decomposition the paper reports
//! (Fig. 12-style), plus a per-span-name summary and, when a metrics
//! artifact is supplied, the counter table.

use crate::metrics::MetricsDoc;
use crate::trace::TraceDoc;
use std::fmt::Write as _;

/// Pretty-prints `ns` with an adaptive unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// One aggregated row of the report.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    name: String,
    count: u64,
    total_ns: u64,
}

fn aggregate<'a>(names: impl Iterator<Item = (&'a str, u64)>) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    for (name, ns) in names {
        match rows.iter_mut().find(|r| r.name == name) {
            Some(r) => {
                r.count += 1;
                r.total_ns += ns;
            }
            None => rows.push(Row {
                name: name.to_string(),
                count: 1,
                total_ns: ns,
            }),
        }
    }
    rows
}

/// Renders the human-readable report for `trace`, with the counter table
/// appended when `metrics` is given.
pub fn render_report(trace: &TraceDoc, metrics: Option<&MetricsDoc>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} spans, {} events ({})",
        trace.spans.len(),
        trace.events.len(),
        trace.schema
    );

    // Top-level work: every span whose name is a root-ish unit of work.
    let queries: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.parent == 0)
        .collect();
    let total_ns: u64 = queries.iter().map(|s| s.duration_ns()).sum();
    let _ = writeln!(
        out,
        "root spans: {} (total {})",
        queries.len(),
        format_ns(total_ns)
    );

    // Fig. 12-style decomposition from the synthetic phase.* spans.
    let phases = aggregate(
        trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("phase."))
            .map(|s| (s.name.as_str(), s.duration_ns())),
    );
    if !phases.is_empty() {
        let phase_total: u64 = phases.iter().map(|r| r.total_ns).sum();
        out.push_str("\nper-phase breakdown:\n");
        let _ = writeln!(out, "  {:<14} {:>8} {:>12} {:>7}", "phase", "spans", "total", "share");
        for r in &phases {
            let share = if phase_total > 0 {
                100.0 * r.total_ns as f64 / phase_total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>12} {:>6.1}%",
                r.name.trim_start_matches("phase."),
                r.count,
                format_ns(r.total_ns),
                share
            );
        }
    }

    let others = aggregate(
        trace
            .spans
            .iter()
            .filter(|s| !s.name.starts_with("phase."))
            .map(|s| (s.name.as_str(), s.duration_ns())),
    );
    if !others.is_empty() {
        out.push_str("\nspans:\n");
        let _ = writeln!(out, "  {:<14} {:>8} {:>12}", "name", "count", "total");
        for r in &others {
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>12}",
                r.name,
                r.count,
                format_ns(r.total_ns)
            );
        }
    }

    if let Some(m) = metrics {
        if !m.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, v) in &m.counters {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        for h in &m.histograms {
            let _ = writeln!(
                out,
                "  {:<44} {:>12} obs, mean {}",
                h.name,
                h.count,
                format_ns(if h.count > 0 { h.sum / h.count } else { 0 })
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, Tracer};
    use crate::MetricsRegistry;

    #[test]
    fn report_aggregates_phases_and_counters() {
        let t = Tracer::new();
        let q = t.add_span("query", SpanId::NONE, 0, 1_000_000, vec![]);
        t.add_span("phase.filter", q, 0, 600_000, vec![]);
        t.add_span("phase.tia", q, 600_000, 900_000, vec![]);
        t.add_span("phase.io", q, 900_000, 1_000_000, vec![]);
        let reg = MetricsRegistry::new();
        reg.counter("knnta.core.search.node_accesses").add(42);
        let report = render_report(&t.snapshot(), Some(&reg.snapshot()));
        assert!(report.contains("per-phase breakdown"));
        assert!(report.contains("filter"));
        assert!(report.contains("60.0%"));
        assert!(report.contains("tia"));
        assert!(report.contains("io"));
        assert!(report.contains("knnta.core.search.node_accesses"));
        assert!(report.contains("42"));
    }

    #[test]
    fn report_handles_empty_trace() {
        let report = render_report(&Tracer::new().snapshot(), None);
        assert!(report.contains("0 spans"));
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(5), "5 ns");
        assert_eq!(format_ns(1_500), "1.500 us");
        assert_eq!(format_ns(2_500_000), "2.500 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }
}
