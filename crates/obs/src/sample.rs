//! Tail trace sampling: keep full span trees only for the slowest queries.
//!
//! Tracing every query on a long-running server is unbounded memory; tracing
//! none loses exactly the forensics that matter. [`TailSampler`] splits the
//! difference: each answered query *offers* its latency plus a lazy span-tree
//! builder, and the sampler retains the tree only when the latency clears a
//! **rolling quantile threshold** computed from its own ring-of-epochs
//! latency histogram (advanced by the same admission clock as
//! [`crate::LiveWindows`] — no wall-clock reads). Retention is a bounded
//! reservoir of the worst `capacity` queries, with a total order on
//! `(latency, seq)` so eviction — and therefore the whole kept set — is a
//! deterministic function of the offered stream (property-tested under
//! `KNNTA_PROP_SEED` replay).
//!
//! The trace builder closure runs only when the offer is accepted, so the
//! fast path pays one histogram update and a comparison — never a span-tree
//! allocation.

use crate::live::quantile_from;
use crate::trace::TraceDoc;
use knnta_util::sync::Mutex;

/// Tail-sampler policy knobs.
#[derive(Debug, Clone)]
pub struct TailConfig {
    /// Max retained traces (the reservoir bound).
    pub capacity: usize,
    /// Rolling latency quantile a query must reach to be kept.
    pub quantile: f64,
    /// Observations before the threshold filter engages; during warmup
    /// every offer is eligible (the reservoir bound still applies).
    pub warmup: u64,
    /// Epochs in the rolling threshold window.
    pub slots: usize,
    /// Threshold histogram bounds (inclusive upper bounds, ascending).
    pub bounds: Vec<u64>,
}

impl Default for TailConfig {
    fn default() -> Self {
        Self {
            capacity: 32,
            quantile: 0.95,
            warmup: 64,
            slots: 8,
            bounds: crate::bounds::LATENCY_US.to_vec(),
        }
    }
}

/// One retained slow-query trace.
#[derive(Debug, Clone, PartialEq)]
pub struct KeptTrace {
    /// Offer sequence number (1-based, total order across the stream).
    pub seq: u64,
    /// The query's end-to-end latency in microseconds.
    pub latency_us: u64,
    /// The full span tree for the query.
    pub trace: TraceDoc,
}

#[derive(Debug)]
struct SamplerCore {
    /// Ring of per-epoch bucket rows, `slots × (bounds.len() + 1)`.
    buckets: Vec<Vec<u64>>,
    maxes: Vec<u64>,
    tick: u64,
    observed: u64,
    seq: u64,
    kept: Vec<KeptTrace>,
    kept_ever: u64,
}

/// The bounded, deterministic slow-query reservoir. All methods are
/// thread-safe; offers are serialized by one mutex (they arrive from the
/// single merger thread in practice).
#[derive(Debug)]
pub struct TailSampler {
    config: TailConfig,
    core: Mutex<SamplerCore>,
}

impl TailSampler {
    /// A sampler with the given policy (`capacity ≥ 1`, `slots ≥ 1`,
    /// ascending `bounds`, `quantile` in `(0, 1]`).
    pub fn new(config: TailConfig) -> Self {
        assert!(config.capacity >= 1, "reservoir needs capacity");
        assert!(config.slots >= 1, "threshold window needs a slot");
        assert!(
            config.quantile > 0.0 && config.quantile <= 1.0,
            "quantile must be in (0, 1]"
        );
        assert!(
            config.bounds.windows(2).all(|w| w[0] < w[1]),
            "threshold bounds must be strictly ascending"
        );
        let width = config.bounds.len() + 1;
        let core = SamplerCore {
            buckets: (0..config.slots).map(|_| vec![0; width]).collect(),
            maxes: vec![0; config.slots],
            tick: 0,
            observed: 0,
            seq: 0,
            kept: Vec::new(),
            kept_ever: 0,
        };
        Self {
            config,
            core: Mutex::new(core),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &TailConfig {
        &self.config
    }

    /// Rotates the threshold window one epoch (zeroes the incoming slot).
    /// Driven by the owner's admission clock alongside
    /// [`crate::LiveWindows::advance`].
    pub fn advance(&self) {
        let mut c = self.core.lock();
        c.tick += 1;
        let slot = (c.tick % self.config.slots as u64) as usize;
        c.buckets[slot].iter_mut().for_each(|b| *b = 0);
        c.maxes[slot] = 0;
    }

    fn threshold_of(&self, core: &SamplerCore) -> u64 {
        let width = self.config.bounds.len() + 1;
        let mut merged = vec![0u64; width];
        for row in &core.buckets {
            for (m, b) in merged.iter_mut().zip(row) {
                *m += b;
            }
        }
        let max = core.maxes.iter().copied().max().unwrap_or(0);
        quantile_from(&self.config.bounds, &merged, max, self.config.quantile)
    }

    /// The current rolling-quantile keep threshold in microseconds
    /// (0 while the window is empty).
    pub fn threshold_us(&self) -> u64 {
        self.threshold_of(&self.core.lock())
    }

    /// Offers one answered query. Returns `true` (and invokes
    /// `make_trace`) iff the trace was retained: the latency reaches the
    /// rolling threshold (or the stream is still warming up) *and* it
    /// displaces nothing worse from a full reservoir. Eviction order is
    /// the total order on `(latency_us, seq)` — ties keep the newer query.
    pub fn offer(&self, latency_us: u64, make_trace: impl FnOnce() -> TraceDoc) -> bool {
        let mut c = self.core.lock();
        c.seq += 1;
        let seq = c.seq;
        c.observed += 1;
        // Record into the rolling threshold histogram (current epoch slot).
        let slot = (c.tick % self.config.slots as u64) as usize;
        let idx = self
            .config
            .bounds
            .iter()
            .position(|&b| latency_us <= b)
            .unwrap_or(self.config.bounds.len());
        c.buckets[slot][idx] += 1;
        c.maxes[slot] = c.maxes[slot].max(latency_us);

        let over_threshold =
            c.observed <= self.config.warmup || latency_us >= self.threshold_of(&c);
        if !over_threshold {
            return false;
        }
        if c.kept.len() == self.config.capacity {
            let (min_idx, min_key) = c
                .kept
                .iter()
                .enumerate()
                .map(|(i, k)| (i, (k.latency_us, k.seq)))
                .min_by_key(|&(_, key)| key)
                .expect("capacity >= 1");
            if (latency_us, seq) <= min_key {
                return false;
            }
            c.kept.swap_remove(min_idx);
        }
        c.kept.push(KeptTrace {
            seq,
            latency_us,
            trace: make_trace(),
        });
        c.kept_ever += 1;
        true
    }

    /// Retained traces, ordered by offer sequence.
    pub fn kept(&self) -> Vec<KeptTrace> {
        let mut kept = self.core.lock().kept.clone();
        kept.sort_by_key(|k| k.seq);
        kept
    }

    /// Current reservoir occupancy (≤ `capacity`).
    pub fn kept_len(&self) -> usize {
        self.core.lock().kept.len()
    }

    /// Traces retained over the process lifetime (including later-evicted
    /// ones) — the `tail_traces_kept` bench counter.
    pub fn kept_ever(&self) -> u64 {
        self.core.lock().kept_ever
    }

    /// Total queries offered.
    pub fn observed(&self) -> u64 {
        self.core.lock().observed
    }

    /// Merges every retained span tree into one valid `knnta.trace.v1`
    /// document (span ids remapped to stay unique), ordered by offer
    /// sequence — the artifact behind `knnta serve --tail-out`.
    pub fn export(&self) -> TraceDoc {
        let kept = self.kept();
        let mut out = TraceDoc {
            schema: crate::TRACE_SCHEMA.to_string(),
            ..TraceDoc::default()
        };
        let mut offset = 0u64;
        for k in &kept {
            let mut next_offset = offset;
            for span in &k.trace.spans {
                let mut span = span.clone();
                span.id += offset;
                if span.parent != 0 {
                    span.parent += offset;
                }
                next_offset = next_offset.max(span.id);
                out.spans.push(span);
            }
            for event in &k.trace.events {
                let mut event = event.clone();
                event.span += offset;
                out.events.push(event);
            }
            offset = next_offset;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanDoc;

    fn trace_of(latency_us: u64) -> TraceDoc {
        TraceDoc {
            schema: crate::TRACE_SCHEMA.to_string(),
            spans: vec![SpanDoc {
                id: 1,
                parent: 0,
                name: "served_query".to_string(),
                start_ns: 0,
                end_ns: latency_us * 1_000,
                attrs: vec![],
            }],
            events: vec![],
        }
    }

    fn small(capacity: usize, warmup: u64) -> TailSampler {
        TailSampler::new(TailConfig {
            capacity,
            warmup,
            slots: 2,
            bounds: vec![10, 100, 1000],
            ..TailConfig::default()
        })
    }

    #[test]
    fn warmup_keeps_everything_then_threshold_engages() {
        let s = small(8, 4);
        for v in [5, 6, 7, 8] {
            assert!(s.offer(v, || trace_of(v)));
        }
        // Threshold is now the window p95 (= max of the small window): a
        // fast query is rejected, a slow one kept.
        assert!(s.threshold_us() >= 8);
        assert!(!s.offer(1, || unreachable!("builder must stay lazy")));
        assert!(s.offer(5_000, || trace_of(5_000)));
        assert_eq!(s.kept_len(), 5);
        assert_eq!(s.kept_ever(), 5);
        assert_eq!(s.observed(), 6);
    }

    #[test]
    fn reservoir_is_bounded_and_evicts_fastest() {
        let s = small(2, 0);
        // Everything beats the empty-window threshold at first.
        assert!(s.offer(500, || trace_of(500)));
        assert!(s.offer(2_000, || trace_of(2_000)));
        // Slower than the reservoir minimum: displaces the 500µs trace.
        assert!(s.offer(3_000, || trace_of(3_000)));
        assert_eq!(s.kept_len(), 2);
        let kept: Vec<u64> = s.kept().iter().map(|k| k.latency_us).collect();
        assert_eq!(kept, vec![2_000, 3_000]);
        // Over threshold but not worse than the reservoir floor: dropped.
        let before = s.kept();
        assert!(!s.offer(1_999, || trace_of(1_999)));
        assert_eq!(s.kept(), before);
        assert_eq!(s.kept_len(), 2);
    }

    #[test]
    fn rotation_forgets_old_threshold_epochs() {
        let s = small(32, 0);
        for _ in 0..50 {
            s.offer(5_000, || trace_of(5_000));
        }
        assert_eq!(s.threshold_us(), 5_000);
        // Rotate both slots out: the threshold resets with the window.
        s.advance();
        s.advance();
        assert_eq!(s.threshold_us(), 0);
    }

    #[test]
    fn export_merges_kept_trees_into_one_valid_doc() {
        let s = small(4, 0);
        for v in [300, 700, 900] {
            assert!(s.offer(v, || trace_of(v)));
        }
        let doc = s.export();
        doc.validate().unwrap();
        assert_eq!(doc.spans.len(), 3);
        let ids: Vec<u64> = doc.spans.iter().map(|sp| sp.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
