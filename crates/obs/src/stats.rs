//! Shared access counters.
//!
//! Moved here verbatim from `pagestore::stats` so that exactly one type
//! defines hit/miss/access semantics for the whole stack (`pagestore`
//! re-exports it for backward compatibility). These counters are the
//! *oracle* accounting: schedule-invariant and bit-identical across
//! storage backends and thread counts — the metrics registry mirrors
//! them but never replaces them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters for the cost metrics the paper reports.
///
/// The dominant metric is `node_accesses` — every logical visit to an R-tree
/// / TAR-tree node during query processing increments it (Section 5: "the
/// performance of the BFS on the TAR-tree is roughly proportional to the
/// number of accessed nodes"). Physical page reads/writes and buffer
/// hits/misses are tracked separately for the disk-resident TIAs.
///
/// Cloning an `AccessStats` clones the `Arc`, so index structures and query
/// processors can share one set of counters.
#[derive(Debug, Clone, Default)]
pub struct AccessStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    node_accesses: AtomicU64,
    leaf_node_accesses: AtomicU64,
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    buffer_hits: AtomicU64,
    buffer_misses: AtomicU64,
    buffer_evictions: AtomicU64,
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Logical index node accesses (the paper's primary metric).
    pub node_accesses: u64,
    /// The subset of node accesses that hit leaf nodes (Section 6.3's
    /// analysis estimates leaf accesses only).
    pub leaf_node_accesses: u64,
    /// Physical page reads from the pagestore `Disk`.
    pub page_reads: u64,
    /// Physical page writes to the pagestore `Disk`.
    pub page_writes: u64,
    /// Buffer pool hits.
    pub buffer_hits: u64,
    /// Buffer pool misses (each implies a page read).
    pub buffer_misses: u64,
    /// Buffer pool evictions.
    pub buffer_evictions: u64,
}

impl AccessStats {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one logical node access.
    #[inline]
    pub fn record_node_access(&self) {
        self.inner.node_accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one leaf node access (in addition to the plain node access).
    #[inline]
    pub fn record_leaf_access(&self) {
        self.inner.leaf_node_accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` logical node accesses in one atomic add (used by the
    /// parallel traversal, which settles its exact deterministic count
    /// post-hoc instead of counting speculative expansions live).
    #[inline]
    pub fn record_node_accesses(&self, n: u64) {
        if n > 0 {
            self.inner.node_accesses.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` leaf node accesses in one atomic add (in addition to the
    /// plain node accesses, mirroring [`AccessStats::record_leaf_access`]).
    #[inline]
    pub fn record_leaf_accesses(&self, n: u64) {
        if n > 0 {
            self.inner.leaf_node_accesses.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one physical page read.
    #[inline]
    pub fn record_page_read(&self) {
        self.inner.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one physical page write.
    #[inline]
    pub fn record_page_write(&self) {
        self.inner.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer pool hit.
    #[inline]
    pub fn record_buffer_hit(&self) {
        self.inner.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer pool miss.
    #[inline]
    pub fn record_buffer_miss(&self) {
        self.inner.buffer_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer pool eviction.
    #[inline]
    pub fn record_buffer_eviction(&self) {
        self.inner.buffer_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Current logical node access count.
    pub fn node_accesses(&self) -> u64 {
        self.inner.node_accesses.load(Ordering::Relaxed)
    }

    /// Current leaf node access count.
    pub fn leaf_node_accesses(&self) -> u64 {
        self.inner.leaf_node_accesses.load(Ordering::Relaxed)
    }

    /// A snapshot of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            node_accesses: self.inner.node_accesses.load(Ordering::Relaxed),
            leaf_node_accesses: self.inner.leaf_node_accesses.load(Ordering::Relaxed),
            page_reads: self.inner.page_reads.load(Ordering::Relaxed),
            page_writes: self.inner.page_writes.load(Ordering::Relaxed),
            buffer_hits: self.inner.buffer_hits.load(Ordering::Relaxed),
            buffer_misses: self.inner.buffer_misses.load(Ordering::Relaxed),
            buffer_evictions: self.inner.buffer_evictions.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.inner.node_accesses.store(0, Ordering::Relaxed);
        self.inner.leaf_node_accesses.store(0, Ordering::Relaxed);
        self.inner.page_reads.store(0, Ordering::Relaxed);
        self.inner.page_writes.store(0, Ordering::Relaxed);
        self.inner.buffer_hits.store(0, Ordering::Relaxed);
        self.inner.buffer_misses.store(0, Ordering::Relaxed);
        self.inner.buffer_evictions.store(0, Ordering::Relaxed);
    }

    /// Whether two handles share the same underlying counters.
    pub fn same_counters(&self, other: &AccessStats) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (for measuring a query).
    pub fn since(self, earlier: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            node_accesses: self.node_accesses - earlier.node_accesses,
            leaf_node_accesses: self.leaf_node_accesses - earlier.leaf_node_accesses,
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
            buffer_misses: self.buffer_misses - earlier.buffer_misses,
            buffer_evictions: self.buffer_evictions - earlier.buffer_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = AccessStats::new();
        s.record_node_access();
        s.record_node_access();
        s.record_page_read();
        s.record_buffer_hit();
        s.record_buffer_miss();
        s.record_buffer_eviction();
        s.record_page_write();
        let snap = s.snapshot();
        assert_eq!(snap.node_accesses, 2);
        assert_eq!(snap.page_reads, 1);
        assert_eq!(snap.page_writes, 1);
        assert_eq!(snap.buffer_hits, 1);
        assert_eq!(snap.buffer_misses, 1);
        assert_eq!(snap.buffer_evictions, 1);
    }

    #[test]
    fn bulk_adds_match_repeated_singles() {
        let s = AccessStats::new();
        s.record_node_accesses(5);
        s.record_leaf_accesses(3);
        s.record_node_accesses(0); // no-op
        s.record_leaf_accesses(0); // no-op
        assert_eq!(s.node_accesses(), 5);
        assert_eq!(s.leaf_node_accesses(), 3);
        let t = AccessStats::new();
        for _ in 0..5 {
            t.record_node_access();
        }
        for _ in 0..3 {
            t.record_leaf_access();
        }
        assert_eq!(s.snapshot(), t.snapshot());
    }

    #[test]
    fn clone_shares_counters() {
        let s = AccessStats::new();
        let t = s.clone();
        t.record_node_access();
        assert_eq!(s.node_accesses(), 1);
        assert!(s.same_counters(&t));
        assert!(!s.same_counters(&AccessStats::new()));
    }

    #[test]
    fn reset_and_since() {
        let s = AccessStats::new();
        s.record_node_access();
        let before = s.snapshot();
        s.record_node_access();
        s.record_node_access();
        let delta = s.snapshot().since(before);
        assert_eq!(delta.node_accesses, 2);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn stats_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccessStats>();
    }
}
