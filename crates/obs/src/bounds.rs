//! Shared default bucket-bound tables.
//!
//! Every fixed-bucket histogram in the stack picks its inclusive upper
//! bounds from this module so the fetch-latency path (`crates/core`), the
//! sliding-window serving telemetry (`crates/service`), and the planner's
//! calibration-ratio window all agree on one vocabulary — and so a bound
//! tweak lands everywhere at once instead of drifting per call site.
//!
//! All tables are strictly ascending (asserted by
//! [`MetricsRegistry::histogram`](crate::MetricsRegistry::histogram) and by
//! the window registry) and leave the `> last` range to the implicit
//! overflow bucket.

/// Page-fetch latency bounds in nanoseconds (250ns .. 1ms). Used by the
/// paged node backend's `knnta.core.storage.paged.fetch_ns` histogram.
pub const FETCH_NS: &[u64] = &[
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000,
];

/// End-to-end / per-segment serving latency bounds in microseconds
/// (50µs .. 10s). Wide enough that a saturated open-loop run still lands
/// in real buckets rather than overflow.
pub const LATENCY_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 10_000_000,
];

/// Measured/estimated cost-model ratio bounds, scaled ×1000 (so `1000`
/// is a perfect estimate). Geometric ladder covering the planner's
/// calibration clamp range of 1/32× .. 32×.
pub const RATIO_X1000: &[u64] = &[
    31, 62, 125, 250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_strictly_ascending() {
        for table in [FETCH_NS, LATENCY_US, RATIO_X1000] {
            assert!(table.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
