//! # knnta-obs — unified tracing + metrics for the kNNTA stack
//!
//! The paper's evaluation (Sections 6 and 8) reasons in node accesses,
//! buffer behaviour, and per-phase cost. This crate gives every layer of the
//! reproduction one way to report those numbers:
//!
//! * [`AccessStats`] — the shared atomic access counters that were previously
//!   private to `pagestore`; they remain the *oracle* accounting (schedule
//!   invariant, bit-identical across backends and thread counts).
//! * [`metrics`] — a lock-cheap registry of named counters, gauges and
//!   fixed-bucket histograms. Registration takes a mutex once per name;
//!   the returned handles are plain atomics. Names follow
//!   `knnta.<crate>.<subsystem>.<name>`.
//! * [`trace`] — hierarchical spans with monotonic nanosecond timestamps and
//!   point events, serialized to the stable `knnta.trace.v1` JSON schema.
//! * [`report`] — renders a per-phase breakdown table (filter vs. TIA
//!   aggregation vs. page I/O, echoing the paper's Fig. 12-style
//!   decomposition) from a parsed trace, and a `top`-style view over live
//!   snapshots.
//! * [`live`] — sliding-window counters/gauges/histograms for long-running
//!   serving processes, snapshotted to the stable `knnta.snapshot.v1`
//!   schema.
//! * [`sample`] — tail trace sampling: a bounded, deterministic reservoir
//!   of span trees for queries over a rolling latency quantile.
//! * [`bounds`] — the shared default bucket-bound tables.
//!
//! Everything hangs off an [`Obs`] handle. A disabled handle
//! ([`Obs::disabled`]) carries no allocation at all: every metric handle it
//! vends is a no-op and every span call returns immediately, so the query
//! path with observability off is byte-identical to a build without it
//! (guarded by the `obs_overhead` fixture test and bench group).

#![warn(missing_docs)]

pub mod bounds;
pub mod live;
pub mod metrics;
pub mod report;
pub mod sample;
mod stats;
pub mod trace;

pub use live::{LiveWindows, SnapshotDoc, WindowCounter, WindowHistDoc, WindowHistogram};
pub use metrics::{Counter, Gauge, Histogram, MetricsDoc, MetricsRegistry};
pub use report::{format_ns, render_report, render_top};
pub use sample::{KeptTrace, TailConfig, TailSampler};
pub use stats::{AccessStats, StatsSnapshot};
pub use trace::{AttrValue, SpanGuard, SpanId, TraceDoc, Tracer};

use std::sync::Arc;

/// Schema identifier emitted in every trace artifact.
pub const TRACE_SCHEMA: &str = "knnta.trace.v1";
/// Schema identifier emitted in every metrics artifact.
pub const METRICS_SCHEMA: &str = "knnta.metrics.v1";
/// Schema identifier emitted in every live-telemetry snapshot artifact.
pub const SNAPSHOT_SCHEMA: &str = "knnta.snapshot.v1";

struct ObsCore {
    metrics: MetricsRegistry,
    tracer: Tracer,
}

/// Shared observability handle.
///
/// Cloning clones the `Arc`; a disabled handle is a `None` and costs one
/// branch per instrumentation site. All sinks are `Send + Sync`.
#[derive(Clone, Default)]
pub struct Obs {
    core: Option<Arc<ObsCore>>,
}

impl Obs {
    /// A no-op handle: every metric/span call is a cheap branch-and-return.
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// A live handle with a fresh metrics registry and tracer.
    pub fn enabled() -> Self {
        Self {
            core: Some(Arc::new(ObsCore {
                metrics: MetricsRegistry::new(),
                tracer: Tracer::new(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Whether two handles share the same sinks.
    pub fn same_sinks(&self, other: &Obs) -> bool {
        match (&self.core, &other.core) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Registers (or fetches) the counter `name`. No-op handle when disabled.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.core {
            Some(c) => c.metrics.counter(name),
            None => Counter::noop(),
        }
    }

    /// Registers (or fetches) the gauge `name`. No-op handle when disabled.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.core {
            Some(c) => c.metrics.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Registers (or fetches) the histogram `name` with the given inclusive
    /// bucket upper bounds (an overflow bucket is added automatically).
    /// No-op handle when disabled; bounds of an already-registered histogram
    /// win.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        match &self.core {
            Some(c) => c.metrics.histogram(name, bounds),
            None => Histogram::noop(),
        }
    }

    /// The tracer, if enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.core.as_deref().map(|c| &c.tracer)
    }

    /// Nanoseconds since this handle's tracer epoch (0 when disabled).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.core {
            Some(c) => c.tracer.now_ns(),
            None => 0,
        }
    }

    /// Opens a span; the returned guard closes it on drop (or explicitly via
    /// [`SpanGuard::finish`]). `parent` of [`SpanId::NONE`] makes a root span.
    pub fn span(&self, name: &str, parent: SpanId) -> SpanGuard<'_> {
        match &self.core {
            Some(c) => c.tracer.span(name, parent),
            None => SpanGuard::noop(),
        }
    }

    /// Appends a point event to `span` stamped `now` (no-op when disabled).
    pub fn event(&self, span: SpanId, name: &str, attrs: Vec<(String, AttrValue)>) {
        if let Some(c) = &self.core {
            let ts = c.tracer.now_ns();
            c.tracer.add_event(span, name, ts, attrs);
        }
    }

    /// The current trace as an in-process document (empty when disabled).
    pub fn trace_snapshot(&self) -> TraceDoc {
        match &self.core {
            Some(c) => c.tracer.snapshot(),
            None => TraceDoc::default(),
        }
    }

    /// The current trace serialized to the `knnta.trace.v1` schema.
    pub fn trace_json(&self) -> String {
        self.trace_snapshot().to_json()
    }

    /// The current metrics as an in-process document (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsDoc {
        match &self.core {
            Some(c) => c.metrics.snapshot(),
            None => MetricsDoc::default(),
        }
    }

    /// The current metrics serialized to the `knnta.metrics.v1` schema.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Counter (name, value) pairs for threading into bench results
    /// (empty when disabled).
    pub fn counter_deltas(&self) -> Vec<(String, u64)> {
        self.metrics_snapshot().counters
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("knnta.test.x");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = obs.gauge("knnta.test.g");
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = obs.histogram("knnta.test.h", &[1, 2]);
        h.record(5);
        let span = obs.span("root", SpanId::NONE);
        assert_eq!(span.id(), SpanId::NONE);
        obs.event(span.id(), "e", vec![]);
        drop(span);
        assert!(obs.trace_snapshot().spans.is_empty());
        assert!(obs.metrics_snapshot().counters.is_empty());
    }

    #[test]
    fn enabled_handle_shares_sinks_across_clones() {
        let obs = Obs::enabled();
        let other = obs.clone();
        assert!(obs.same_sinks(&other));
        assert!(!obs.same_sinks(&Obs::enabled()));
        assert!(Obs::disabled().same_sinks(&Obs::disabled()));
        other.counter("knnta.test.shared").add(3);
        assert_eq!(obs.counter("knnta.test.shared").get(), 3);
    }

    #[test]
    fn counter_deltas_are_sorted_name_value_pairs() {
        let obs = Obs::enabled();
        obs.counter("knnta.b").add(2);
        obs.counter("knnta.a").add(1);
        assert_eq!(
            obs.counter_deltas(),
            vec![("knnta.a".to_string(), 1), ("knnta.b".to_string(), 2)]
        );
    }
}
