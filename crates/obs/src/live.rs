//! Sliding-window live telemetry: ring-of-epoch-buckets counters, gauges
//! and histograms for a process that runs for days.
//!
//! The PR 5 registry ([`crate::MetricsRegistry`]) is cumulative — right for
//! one-shot runs, useless for "what is p99 *right now*". [`LiveWindows`]
//! keeps, per metric, a ring of `slots` epoch buckets. Recording is a
//! lock-free atomic add into the bucket selected by the current **tick**;
//! reads merge all live buckets, so every reported rate or quantile covers
//! exactly the last `slots` epochs.
//!
//! The tick is advanced by the *owner's* clock — the service admission loop
//! calls [`LiveWindows::advance`] every N flushes — never by wall-clock
//! reads in a hot path, so window contents are deterministic under the
//! seeded clocks the tests use. `advance` zeroes the incoming slot before
//! publishing the new tick; a record racing an advance lands in either the
//! outgoing or the fresh epoch (one sample of bounded misattribution, never
//! a stale bucket).
//!
//! Window quantiles are computed by walking the merged bucket counts to the
//! target rank and reporting that bucket's inclusive upper bound, clamped
//! to the window's observed max (so the overflow bucket reports the real
//! max, not infinity). Deterministic, allocation-free, and within one
//! bucket width of the exact order statistic.
//!
//! [`LiveWindows::snapshot`] serializes to the stable `knnta.snapshot.v1`
//! schema (see [`SnapshotDoc`]) consumed by `knnta top` and `knnta slo`.

use crate::metrics::Gauge;
use knnta_util::json::{escape_string, JsonValue};
use knnta_util::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// The shared epoch counter: `slot = tick % slots`.
#[derive(Debug)]
struct Clock {
    tick: AtomicU64,
    slots: usize,
}

impl Clock {
    #[inline]
    fn slot(&self) -> usize {
        (self.tick.load(Ordering::Acquire) % self.slots as u64) as usize
    }
}

#[derive(Debug)]
struct WinCounterCore {
    clock: Arc<Clock>,
    slots: Vec<AtomicU64>,
    lifetime: AtomicU64,
}

/// A windowed counter handle: `window_total` covers the last `slots`
/// epochs, `lifetime` the whole process. No-op when vended by a disabled
/// [`LiveWindows`].
#[derive(Clone, Debug, Default)]
pub struct WindowCounter(Option<Arc<WinCounterCore>>);

impl WindowCounter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the current epoch bucket (and the lifetime total).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            if n > 0 {
                c.slots[c.clock.slot()].fetch_add(n, Ordering::Relaxed);
                c.lifetime.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Sum over the live window (0 for a no-op handle).
    pub fn window_total(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| {
            c.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
        })
    }

    /// Process-lifetime total (0 for a no-op handle).
    pub fn lifetime(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.lifetime.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct WinHistCore {
    clock: Arc<Clock>,
    bounds: Vec<u64>,
    /// `slots * (bounds.len() + 1)` bucket cells, slot-major.
    buckets: Vec<AtomicU64>,
    counts: Vec<AtomicU64>,
    sums: Vec<AtomicU64>,
    maxes: Vec<AtomicU64>,
}

impl WinHistCore {
    fn width(&self) -> usize {
        self.bounds.len() + 1
    }

    fn zero_slot(&self, slot: usize) {
        let base = slot * self.width();
        for b in &self.buckets[base..base + self.width()] {
            b.store(0, Ordering::Relaxed);
        }
        self.counts[slot].store(0, Ordering::Relaxed);
        self.sums[slot].store(0, Ordering::Relaxed);
        self.maxes[slot].store(0, Ordering::Relaxed);
    }

    /// Merged (buckets, count, sum, max) over all live slots.
    fn merged(&self) -> (Vec<u64>, u64, u64, u64) {
        let width = self.width();
        let mut buckets = vec![0u64; width];
        let slots = self.counts.len();
        for slot in 0..slots {
            let base = slot * width;
            for (i, b) in buckets.iter_mut().enumerate() {
                *b += self.buckets[base + i].load(Ordering::Relaxed);
            }
        }
        let count = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let sum = self.sums.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        let max = self
            .maxes
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        (buckets, count, sum, max)
    }
}

/// A windowed fixed-bucket histogram handle. Bounds are inclusive upper
/// bounds; reads cover the last `slots` epochs. No-op when vended by a
/// disabled [`LiveWindows`].
#[derive(Clone, Debug, Default)]
pub struct WindowHistogram(Option<Arc<WinHistCore>>);

impl WindowHistogram {
    /// Records one observation of `v` into the current epoch bucket.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            let slot = h.clock.slot();
            let idx = h
                .bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(h.bounds.len());
            h.buckets[slot * h.width() + idx].fetch_add(1, Ordering::Relaxed);
            h.counts[slot].fetch_add(1, Ordering::Relaxed);
            h.sums[slot].fetch_add(v, Ordering::Relaxed);
            h.maxes[slot].fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Observations in the live window (0 for a no-op handle).
    pub fn window_count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.merged().1)
    }

    /// Max observation in the live window (0 for a no-op handle).
    pub fn window_max(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.merged().3)
    }

    /// The `q`-quantile over the live window (0 when empty or no-op).
    pub fn quantile(&self, q: f64) -> u64 {
        self.0.as_ref().map_or(0, |h| {
            let (buckets, _, _, max) = h.merged();
            quantile_from(&h.bounds, &buckets, max, q)
        })
    }
}

/// Walks merged bucket counts to the rank `ceil(q · total)` and reports
/// that bucket's inclusive upper bound, clamped to the observed `max`
/// (the overflow bucket therefore reports `max`). 0 on an empty window.
pub fn quantile_from(bounds: &[u64], buckets: &[u64], max: u64, q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        cum += n;
        if cum >= rank {
            return if i < bounds.len() { bounds[i].min(max) } else { max };
        }
    }
    max
}

#[derive(Debug)]
struct WindowsCore {
    clock: Arc<Clock>,
    counters: Mutex<BTreeMap<String, Arc<WinCounterCore>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<WinHistCore>>>,
}

/// The sliding-window registry. Cloning clones the `Arc`; a disabled
/// handle vends no-op metric handles, so "telemetry off" costs one branch
/// per site — the same contract as [`crate::Obs`].
#[derive(Clone, Debug, Default)]
pub struct LiveWindows {
    core: Option<Arc<WindowsCore>>,
}

impl LiveWindows {
    /// A no-op registry: every handle it vends is inert.
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// A live registry whose window spans `slots` epochs (`slots ≥ 1`).
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 1, "window needs at least one slot");
        Self {
            core: Some(Arc::new(WindowsCore {
                clock: Arc::new(Clock {
                    tick: AtomicU64::new(0),
                    slots,
                }),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether this registry records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Epochs per window (0 when disabled).
    pub fn slots(&self) -> usize {
        self.core.as_ref().map_or(0, |c| c.clock.slots)
    }

    /// The current epoch tick (0 when disabled).
    pub fn tick(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.clock.tick.load(Ordering::Acquire))
    }

    /// Starts the next epoch: zeroes the incoming ring slot of every
    /// registered windowed metric, then publishes the new tick. Called by
    /// the owner's clock (e.g. the service admission loop) — never from a
    /// hot path, never from wall-clock time.
    pub fn advance(&self) {
        let Some(core) = &self.core else { return };
        let next = core.clock.tick.load(Ordering::Acquire) + 1;
        let slot = (next % core.clock.slots as u64) as usize;
        for c in core.counters.lock().values() {
            c.slots[slot].store(0, Ordering::Relaxed);
        }
        for h in core.histograms.lock().values() {
            h.zero_slot(slot);
        }
        core.clock.tick.store(next, Ordering::Release);
    }

    /// Registers (or fetches) the windowed counter `name`.
    pub fn counter(&self, name: &str) -> WindowCounter {
        match &self.core {
            Some(core) => {
                let mut map = core.counters.lock();
                let cell = map.entry(name.to_string()).or_insert_with(|| {
                    Arc::new(WinCounterCore {
                        clock: Arc::clone(&core.clock),
                        slots: (0..core.clock.slots).map(|_| AtomicU64::new(0)).collect(),
                        lifetime: AtomicU64::new(0),
                    })
                });
                WindowCounter(Some(Arc::clone(cell)))
            }
            None => WindowCounter(None),
        }
    }

    /// Registers (or fetches) the point-in-time gauge `name` (gauges are
    /// instantaneous, so they carry no ring).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.core {
            Some(core) => {
                let mut map = core.gauges.lock();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicI64::new(0)));
                Gauge::from_cell(Arc::clone(cell))
            }
            None => Gauge::default(),
        }
    }

    /// Registers (or fetches) the windowed histogram `name` with the given
    /// inclusive bucket upper bounds (strictly ascending; an overflow
    /// bucket is added automatically). Bounds of an already-registered
    /// histogram win.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> WindowHistogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        match &self.core {
            Some(core) => {
                let mut map = core.histograms.lock();
                let cell = map.entry(name.to_string()).or_insert_with(|| {
                    let width = bounds.len() + 1;
                    Arc::new(WinHistCore {
                        clock: Arc::clone(&core.clock),
                        bounds: bounds.to_vec(),
                        buckets: (0..core.clock.slots * width)
                            .map(|_| AtomicU64::new(0))
                            .collect(),
                        counts: (0..core.clock.slots).map(|_| AtomicU64::new(0)).collect(),
                        sums: (0..core.clock.slots).map(|_| AtomicU64::new(0)).collect(),
                        maxes: (0..core.clock.slots).map(|_| AtomicU64::new(0)).collect(),
                    })
                });
                WindowHistogram(Some(Arc::clone(cell)))
            }
            None => WindowHistogram(None),
        }
    }

    /// A point-in-time window snapshot (empty when disabled). Histogram
    /// quantiles are precomputed so consumers never re-derive them.
    pub fn snapshot(&self) -> SnapshotDoc {
        let Some(core) = &self.core else {
            return SnapshotDoc::default();
        };
        let counters = core
            .counters
            .lock()
            .iter()
            .map(|(k, c)| CounterDoc {
                name: k.clone(),
                window: c.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum(),
                lifetime: c.lifetime.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = core
            .gauges
            .lock()
            .iter()
            .map(|(k, g)| (k.clone(), g.load(Ordering::Relaxed)))
            .collect();
        let histograms = core
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| {
                let (buckets, count, sum, max) = h.merged();
                let q = |q| quantile_from(&h.bounds, &buckets, max, q);
                WindowHistDoc {
                    name: k.clone(),
                    bounds: h.bounds.clone(),
                    p50: q(0.50),
                    p95: q(0.95),
                    p99: q(0.99),
                    buckets,
                    count,
                    sum,
                    max,
                }
            })
            .collect();
        SnapshotDoc {
            schema: crate::SNAPSHOT_SCHEMA.to_string(),
            tick: core.clock.tick.load(Ordering::Acquire),
            windows: core.clock.slots as u64,
            counters,
            gauges,
            histograms,
        }
    }
}

/// One windowed counter in a [`SnapshotDoc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDoc {
    /// Metric name.
    pub name: String,
    /// Sum over the live window.
    pub window: u64,
    /// Process-lifetime total.
    pub lifetime: u64,
}

/// One windowed histogram in a [`SnapshotDoc`]: merged buckets over the
/// live window plus precomputed quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowHistDoc {
    /// Metric name.
    pub name: String,
    /// Inclusive upper bucket bounds, ascending.
    pub bounds: Vec<u64>,
    /// Merged per-bucket counts; `bounds.len() + 1` entries (overflow last).
    pub buckets: Vec<u64>,
    /// Window observation count.
    pub count: u64,
    /// Window sum of observed values.
    pub sum: u64,
    /// Window max observation.
    pub max: u64,
    /// Window median (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// Window 95th percentile.
    pub p95: u64,
    /// Window 99th percentile.
    pub p99: u64,
}

impl WindowHistDoc {
    /// Recomputes the `q`-quantile from the serialized buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from(&self.bounds, &self.buckets, self.max, q)
    }
}

/// A live-telemetry snapshot: the stable `knnta.snapshot.v1` artifact
/// emitted by `knnta serve --stats-out` and consumed by `knnta top` /
/// `knnta slo`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotDoc {
    /// Schema identifier (`knnta.snapshot.v1`).
    pub schema: String,
    /// Epoch tick at snapshot time.
    pub tick: u64,
    /// Epochs per window.
    pub windows: u64,
    /// Windowed counters sorted by name.
    pub counters: Vec<CounterDoc>,
    /// Gauge (name, value) pairs sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Windowed histograms sorted by name.
    pub histograms: Vec<WindowHistDoc>,
}

impl SnapshotDoc {
    /// The counter entry for `name`, if present.
    pub fn counter(&self, name: &str) -> Option<&CounterDoc> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// The gauge value for `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// The histogram entry for `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&WindowHistDoc> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes to the `knnta.snapshot.v1` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", escape_string(crate::SNAPSHOT_SCHEMA));
        let _ = writeln!(out, "  \"tick\": {},", self.tick);
        let _ = writeln!(out, "  \"windows\": {},", self.windows);
        out.push_str("  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"window\": {}, \"lifetime\": {}}}",
                escape_string(&c.name),
                c.window,
                c.lifetime
            );
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", escape_string(name), v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"name\": {}, \"bounds\": [", escape_string(&h.name));
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("], \"buckets\": [");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            let _ = write!(
                out,
                "], \"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count, h.sum, h.max, h.p50, h.p95, h.p99
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a `knnta.snapshot.v1` document (round-trips [`SnapshotDoc::to_json`]).
    pub fn parse(s: &str) -> Result<SnapshotDoc, String> {
        let v = JsonValue::parse(s)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema")?
            .to_string();
        let tick = v.get("tick").and_then(JsonValue::as_u64).ok_or("missing tick")?;
        let windows = v
            .get("windows")
            .and_then(JsonValue::as_u64)
            .ok_or("missing windows")?;
        let mut counters = Vec::new();
        for (name, val) in v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or("missing counters object")?
        {
            counters.push(CounterDoc {
                name: name.clone(),
                window: val
                    .get("window")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("counter {name} missing window"))?,
                lifetime: val
                    .get("lifetime")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("counter {name} missing lifetime"))?,
            });
        }
        let mut gauges = Vec::new();
        for (name, val) in v
            .get("gauges")
            .and_then(JsonValue::as_obj)
            .ok_or("missing gauges object")?
        {
            gauges.push((
                name.clone(),
                val.as_f64().ok_or_else(|| format!("gauge {name} not a number"))? as i64,
            ));
        }
        let mut histograms = Vec::new();
        for h in v
            .get("histograms")
            .and_then(JsonValue::as_arr)
            .ok_or("missing histograms array")?
        {
            let nums = |key: &str| -> Result<Vec<u64>, String> {
                h.get(key)
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| format!("histogram missing {key}"))?
                    .iter()
                    .map(|x| x.as_u64().ok_or_else(|| format!("bad {key} entry")))
                    .collect()
            };
            let num = |key: &str| -> Result<u64, String> {
                h.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("histogram missing {key}"))
            };
            histograms.push(WindowHistDoc {
                name: h
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("histogram missing name")?
                    .to_string(),
                bounds: nums("bounds")?,
                buckets: nums("buckets")?,
                count: num("count")?,
                sum: num("sum")?,
                max: num("max")?,
                p50: num("p50")?,
                p95: num("p95")?,
                p99: num("p99")?,
            });
        }
        Ok(SnapshotDoc {
            schema,
            tick,
            windows,
            counters,
            gauges,
            histograms,
        })
    }

    /// Structural validation: schema identifier, sorted unique names,
    /// bucket arithmetic, counter `window ≤ lifetime`, and quantiles that
    /// match a recomputation from the serialized buckets.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != crate::SNAPSHOT_SCHEMA {
            return Err(format!("unexpected schema {:?}", self.schema));
        }
        if self.windows == 0 {
            return Err("windows must be >= 1".to_string());
        }
        for names in [
            self.counters.iter().map(|c| &c.name).collect::<Vec<_>>(),
            self.gauges.iter().map(|(k, _)| k).collect(),
            self.histograms.iter().map(|h| &h.name).collect(),
        ] {
            if names.windows(2).any(|w| w[0] >= w[1]) {
                return Err("metric names not sorted/unique".to_string());
            }
        }
        for c in &self.counters {
            if c.window > c.lifetime {
                return Err(format!("counter {} window exceeds lifetime", c.name));
            }
        }
        for h in &self.histograms {
            if h.buckets.len() != h.bounds.len() + 1 {
                return Err(format!("histogram {} bucket/bound mismatch", h.name));
            }
            if h.buckets.iter().sum::<u64>() != h.count {
                return Err(format!("histogram {} count mismatch", h.name));
            }
            if h.bounds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("histogram {} bounds not ascending", h.name));
            }
            if (h.p50, h.p95, h.p99) != (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)) {
                return Err(format!("histogram {} quantiles inconsistent", h.name));
            }
            if h.count > 0 && !(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max) {
                return Err(format!("histogram {} quantiles not monotonic", h.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let w = LiveWindows::disabled();
        assert!(!w.is_enabled());
        let c = w.counter("knnta.test.c");
        c.add(3);
        assert_eq!(c.window_total(), 0);
        assert_eq!(c.lifetime(), 0);
        let h = w.histogram("knnta.test.h", &[10]);
        h.record(5);
        assert_eq!(h.window_count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        w.advance();
        assert_eq!(w.tick(), 0);
        assert_eq!(w.snapshot(), SnapshotDoc::default());
    }

    #[test]
    fn window_forgets_rotated_out_epochs() {
        let w = LiveWindows::new(3);
        let c = w.counter("knnta.test.c");
        let h = w.histogram("knnta.test.h", &[10, 100]);
        c.add(5);
        h.record(7);
        assert_eq!(c.window_total(), 5);
        assert_eq!(h.window_count(), 1);
        // Two advances keep the epoch in the 3-slot window...
        w.advance();
        w.advance();
        c.add(1);
        assert_eq!(c.window_total(), 6);
        assert_eq!(c.lifetime(), 6);
        // ...the third rotates it out.
        w.advance();
        assert_eq!(c.window_total(), 1);
        assert_eq!(c.lifetime(), 6);
        assert_eq!(h.window_count(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn quantiles_walk_merged_buckets() {
        let w = LiveWindows::new(4);
        let h = w.histogram("knnta.test.h", &[10, 100, 1000]);
        // Spread records across epochs; quantiles merge all four slots.
        for (epoch, values) in [[1u64, 5, 9], [20, 30, 40], [200, 300, 400], [7, 8, 2000]]
            .iter()
            .enumerate()
        {
            if epoch > 0 {
                w.advance();
            }
            for &v in values {
                h.record(v);
            }
        }
        assert_eq!(h.window_count(), 12);
        assert_eq!(h.window_max(), 2000);
        // 12 records: 5 ≤ 10, 3 ≤ 100, 3 ≤ 1000, 1 overflow.
        assert_eq!(h.quantile(0.50), 100);
        assert_eq!(h.quantile(0.75), 1000);
        // Overflow bucket reports the observed max, not infinity.
        assert_eq!(h.quantile(1.0), 2000);
        // Quantile never exceeds the observed max within a bucket either.
        let w2 = LiveWindows::new(1);
        let h2 = w2.histogram("knnta.test.h2", &[1000]);
        h2.record(3);
        assert_eq!(h2.quantile(0.5), 3);
    }

    #[test]
    fn snapshot_round_trips_and_validates() {
        let w = LiveWindows::new(2);
        let c = w.counter("knnta.test.answered");
        let g = w.gauge("knnta.test.depth");
        let h = w.histogram("knnta.test.lat_us", &[100, 1000]);
        c.add(4);
        g.set(-2);
        for v in [50, 400, 70_000] {
            h.record(v);
        }
        w.advance();
        c.add(1);
        let doc = w.snapshot();
        doc.validate().unwrap();
        assert_eq!(doc.tick, 1);
        assert_eq!(doc.windows, 2);
        let cd = doc.counter("knnta.test.answered").unwrap();
        assert_eq!((cd.window, cd.lifetime), (5, 5));
        assert_eq!(doc.gauge("knnta.test.depth"), Some(-2));
        let hd = doc.histogram("knnta.test.lat_us").unwrap();
        assert_eq!(hd.count, 3);
        assert_eq!(hd.max, 70_000);
        assert_eq!(hd.p99, 70_000);
        let back = SnapshotDoc::parse(&doc.to_json()).unwrap();
        back.validate().unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn validate_rejects_broken_docs() {
        let good = LiveWindows::new(2).snapshot();
        good.validate().unwrap();
        let mut doc = good.clone();
        doc.schema = "bogus".to_string();
        assert!(doc.validate().is_err());
        let mut doc = good.clone();
        doc.windows = 0;
        assert!(doc.validate().is_err());
        let mut doc = good.clone();
        doc.counters = vec![CounterDoc {
            name: "c".into(),
            window: 5,
            lifetime: 3,
        }];
        assert!(doc.validate().is_err());
        let mut doc = good;
        doc.histograms = vec![WindowHistDoc {
            name: "h".into(),
            bounds: vec![10],
            buckets: vec![1, 0],
            count: 1,
            sum: 5,
            max: 5,
            p50: 9, // recomputation gives 5
            p95: 9,
            p99: 9,
        }];
        assert!(doc.validate().is_err());
    }
}
