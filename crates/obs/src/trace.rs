//! Hierarchical tracing spans with monotonic nanosecond timestamps.
//!
//! A [`Tracer`] records spans (intervals with an explicit parent) and point
//! events (timestamped records attached to a span). Timestamps are
//! nanoseconds since the tracer's creation `Instant`, so they are monotonic
//! and comparable across threads within one trace.
//!
//! Serialized form is the stable `knnta.trace.v1` schema:
//!
//! ```json
//! {
//!   "schema": "knnta.trace.v1",
//!   "spans": [
//!     {"id": 1, "parent": 0, "name": "query", "start_ns": 0,
//!      "end_ns": 12345, "attrs": {"k": 10, "backend": "paged"}}
//!   ],
//!   "events": [
//!     {"span": 2, "name": "pop", "ts_ns": 17,
//!      "attrs": {"key": 0.5, "stolen": false}}
//!   ]
//! }
//! ```
//!
//! `parent: 0` marks a root span. [`TraceDoc::validate`] rejects orphaned
//! spans, inverted intervals, children escaping their parent's interval, and
//! events outside their span.

use knnta_util::json::{escape_string, JsonValue};
use knnta_util::sync::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A span identifier; `SpanId::NONE` (0) means "no span / no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (used as the parent of root spans).
    pub const NONE: SpanId = SpanId(0);
}

/// An attribute value attached to a span or event.
///
/// Numbers are kept as `f64` — exact for every counter and timestamp this
/// stack records (integers up to 2^53) — so serialized documents round-trip
/// to equal in-process documents.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A numeric attribute.
    Num(f64),
    /// A string attribute.
    Str(String),
    /// A boolean attribute.
    Bool(bool),
}

impl AttrValue {
    /// The value as a `u64` (truncating), if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::Num(n) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Num(v as f64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Num(v as f64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Num(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Attribute list type used throughout the tracer.
pub type Attrs = Vec<(String, AttrValue)>;

struct SpanRec {
    id: u64,
    parent: u64,
    name: String,
    start_ns: u64,
    end_ns: Option<u64>,
    attrs: Attrs,
}

struct EventRec {
    span: u64,
    name: String,
    ts_ns: u64,
    attrs: Attrs,
}

#[derive(Default)]
struct TraceBuf {
    spans: Vec<SpanRec>,
    events: Vec<EventRec>,
}

/// The span/event sink behind an enabled [`crate::Obs`].
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    buf: Mutex<TraceBuf>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh tracer; its creation instant is timestamp 0.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            buf: Mutex::new(TraceBuf::default()),
        }
    }

    /// Nanoseconds since the tracer epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a span starting now; close it with [`Tracer::end_span`].
    pub fn start_span(&self, name: &str, parent: SpanId) -> SpanId {
        let id = self.alloc_id();
        let start_ns = self.now_ns();
        self.buf.lock().spans.push(SpanRec {
            id,
            parent: parent.0,
            name: name.to_string(),
            start_ns,
            end_ns: None,
            attrs: Vec::new(),
        });
        SpanId(id)
    }

    /// Closes an open span at the current timestamp (idempotent).
    pub fn end_span(&self, id: SpanId) {
        let end = self.now_ns();
        let mut buf = self.buf.lock();
        if let Some(rec) = buf.spans.iter_mut().find(|s| s.id == id.0) {
            if rec.end_ns.is_none() {
                rec.end_ns = Some(end.max(rec.start_ns));
            }
        }
    }

    /// Appends attributes to a span (open or closed).
    pub fn set_attrs(&self, id: SpanId, attrs: Attrs) {
        let mut buf = self.buf.lock();
        if let Some(rec) = buf.spans.iter_mut().find(|s| s.id == id.0) {
            rec.attrs.extend(attrs);
        }
    }

    /// Records a fully-formed span with explicit timestamps. Used for
    /// post-hoc recording — e.g. per-worker spans assembled by the parallel
    /// frontier coordinator after the workers have joined, or synthetic
    /// per-phase breakdown spans.
    pub fn add_span(
        &self,
        name: &str,
        parent: SpanId,
        start_ns: u64,
        end_ns: u64,
        attrs: Attrs,
    ) -> SpanId {
        let id = self.alloc_id();
        self.buf.lock().spans.push(SpanRec {
            id,
            parent: parent.0,
            name: name.to_string(),
            start_ns,
            end_ns: Some(end_ns.max(start_ns)),
            attrs,
        });
        SpanId(id)
    }

    /// Records a point event attached to `span` at `ts_ns`.
    pub fn add_event(&self, span: SpanId, name: &str, ts_ns: u64, attrs: Attrs) {
        self.buf.lock().events.push(EventRec {
            span: span.0,
            name: name.to_string(),
            ts_ns,
            attrs,
        });
    }

    /// Opens a span and returns a guard that closes it on drop.
    pub fn span<'a>(&'a self, name: &str, parent: SpanId) -> SpanGuard<'a> {
        let id = self.start_span(name, parent);
        SpanGuard {
            tracer: Some(self),
            id,
        }
    }

    /// A copy of everything recorded so far. Spans still open are closed at
    /// the snapshot timestamp in the copy (the live records stay open).
    pub fn snapshot(&self) -> TraceDoc {
        let now = self.now_ns();
        let buf = self.buf.lock();
        TraceDoc {
            schema: crate::TRACE_SCHEMA.to_string(),
            spans: buf
                .spans
                .iter()
                .map(|s| SpanDoc {
                    id: s.id,
                    parent: s.parent,
                    name: s.name.clone(),
                    start_ns: s.start_ns,
                    end_ns: s.end_ns.unwrap_or_else(|| now.max(s.start_ns)),
                    attrs: s.attrs.clone(),
                })
                .collect(),
            events: buf
                .events
                .iter()
                .map(|e| EventDoc {
                    span: e.span,
                    name: e.name.clone(),
                    ts_ns: e.ts_ns,
                    attrs: e.attrs.clone(),
                })
                .collect(),
        }
    }
}

/// RAII guard for a span opened via [`Tracer::span`] / [`crate::Obs::span`];
/// closes the span when dropped.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    id: SpanId,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn noop() -> Self {
        Self {
            tracer: None,
            id: SpanId::NONE,
        }
    }

    /// The span's id ([`SpanId::NONE`] for a disabled guard).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Appends attributes to the span.
    pub fn set_attrs(&self, attrs: Attrs) {
        if let Some(t) = self.tracer {
            t.set_attrs(self.id, attrs);
        }
    }

    /// Closes the span now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            t.end_span(self.id);
        }
    }
}

/// One span in a [`TraceDoc`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDoc {
    /// Unique nonzero span id.
    pub id: u64,
    /// Parent span id; 0 for root spans.
    pub parent: u64,
    /// Span name (e.g. `query`, `worker`, `phase.tia`).
    pub name: String,
    /// Start, nanoseconds since trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since trace epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Attributes in recording order.
    pub attrs: Attrs,
}

impl SpanDoc {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// The attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// One event in a [`TraceDoc`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventDoc {
    /// The span this event belongs to.
    pub span: u64,
    /// Event name (e.g. `pop`).
    pub name: String,
    /// Timestamp, nanoseconds since trace epoch.
    pub ts_ns: u64,
    /// Attributes in recording order.
    pub attrs: Attrs,
}

impl EventDoc {
    /// The attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A trace artifact: a tracer snapshot, or a parsed `knnta.trace.v1`
/// JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceDoc {
    /// Schema identifier (`knnta.trace.v1`).
    pub schema: String,
    /// All spans in recording order.
    pub spans: Vec<SpanDoc>,
    /// All events in recording order.
    pub events: Vec<EventDoc>,
}

fn write_attrs(out: &mut String, attrs: &Attrs) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: ", escape_string(k));
        match v {
            AttrValue::Num(n) => {
                let n = if n.is_finite() { *n } else { 0.0 };
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", n as i64);
                } else {
                    let _ = write!(out, "{n:?}");
                }
            }
            AttrValue::Str(s) => out.push_str(&escape_string(s)),
            AttrValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push('}');
}

fn parse_attrs(v: Option<&JsonValue>) -> Result<Attrs, String> {
    let Some(v) = v else { return Ok(Vec::new()) };
    let obj = v.as_obj().ok_or("attrs not an object")?;
    obj.iter()
        .map(|(k, val)| {
            let a = match val {
                JsonValue::Num(n) => AttrValue::Num(*n),
                JsonValue::Str(s) => AttrValue::Str(s.clone()),
                JsonValue::Bool(b) => AttrValue::Bool(*b),
                other => return Err(format!("attr {k} has unsupported type {other:?}")),
            };
            Ok((k.clone(), a))
        })
        .collect()
}

impl TraceDoc {
    /// The span with id `id`, if present.
    pub fn span(&self, id: u64) -> Option<&SpanDoc> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// All spans named `name`, in recording order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanDoc> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Direct children of span `id`, in recording order.
    pub fn children_of(&self, id: u64) -> impl Iterator<Item = &SpanDoc> {
        self.spans.iter().filter(move |s| s.parent == id)
    }

    /// Events attached to span `id`, in recording order.
    pub fn events_of(&self, id: u64) -> impl Iterator<Item = &EventDoc> {
        self.events.iter().filter(move |e| e.span == id)
    }

    /// Serializes to the `knnta.trace.v1` schema, one span/event per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", escape_string(crate::TRACE_SCHEMA));
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"id\": {}, \"parent\": {}, \"name\": {}, \"start_ns\": {}, \"end_ns\": {}, \"attrs\": ",
                s.id,
                s.parent,
                escape_string(&s.name),
                s.start_ns,
                s.end_ns
            );
            write_attrs(&mut out, &s.attrs);
            out.push('}');
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"span\": {}, \"name\": {}, \"ts_ns\": {}, \"attrs\": ",
                e.span,
                escape_string(&e.name),
                e.ts_ns
            );
            write_attrs(&mut out, &e.attrs);
            out.push('}');
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a `knnta.trace.v1` document (round-trips [`TraceDoc::to_json`]).
    pub fn parse(s: &str) -> Result<TraceDoc, String> {
        let v = JsonValue::parse(s)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema")?
            .to_string();
        let mut spans = Vec::new();
        for s in v
            .get("spans")
            .and_then(JsonValue::as_arr)
            .ok_or("missing spans array")?
        {
            let field = |key: &str| {
                s.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("span missing {key}"))
            };
            spans.push(SpanDoc {
                id: field("id")?,
                parent: field("parent")?,
                name: s
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("span missing name")?
                    .to_string(),
                start_ns: field("start_ns")?,
                end_ns: field("end_ns")?,
                attrs: parse_attrs(s.get("attrs"))?,
            });
        }
        let mut events = Vec::new();
        for e in v
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or("missing events array")?
        {
            events.push(EventDoc {
                span: e
                    .get("span")
                    .and_then(JsonValue::as_u64)
                    .ok_or("event missing span")?,
                name: e
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("event missing name")?
                    .to_string(),
                ts_ns: e
                    .get("ts_ns")
                    .and_then(JsonValue::as_u64)
                    .ok_or("event missing ts_ns")?,
                attrs: parse_attrs(e.get("attrs"))?,
            });
        }
        Ok(TraceDoc {
            schema,
            spans,
            events,
        })
    }

    /// Structural validation: schema identifier, unique nonzero ids, no
    /// orphaned spans (every nonzero parent exists), `end >= start`, every
    /// child interval inside its parent's, every event attached to an
    /// existing span and timestamped within it.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != crate::TRACE_SCHEMA {
            return Err(format!("unexpected schema {:?}", self.schema));
        }
        let mut ids = std::collections::HashMap::new();
        for s in &self.spans {
            if s.id == 0 {
                return Err(format!("span {:?} has reserved id 0", s.name));
            }
            if ids.insert(s.id, s).is_some() {
                return Err(format!("duplicate span id {}", s.id));
            }
        }
        for s in &self.spans {
            if s.end_ns < s.start_ns {
                return Err(format!("span {} ({}) ends before it starts", s.id, s.name));
            }
            if s.parent != 0 {
                let parent = ids
                    .get(&s.parent)
                    .ok_or_else(|| format!("orphaned span {} ({}): parent {} not in trace", s.id, s.name, s.parent))?;
                if s.start_ns < parent.start_ns || s.end_ns > parent.end_ns {
                    return Err(format!(
                        "span {} ({}) [{}, {}] escapes parent {} [{}, {}]",
                        s.id, s.name, s.start_ns, s.end_ns, s.parent, parent.start_ns, parent.end_ns
                    ));
                }
            }
        }
        for e in &self.events {
            let span = ids
                .get(&e.span)
                .ok_or_else(|| format!("event {} attached to unknown span {}", e.name, e.span))?;
            if e.ts_ns < span.start_ns || e.ts_ns > span.end_ns {
                return Err(format!(
                    "event {} at {} outside span {} [{}, {}]",
                    e.name, e.ts_ns, e.span, span.start_ns, span.end_ns
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_closes_span_on_drop() {
        let t = Tracer::new();
        let root_id;
        {
            let root = t.span("query", SpanId::NONE);
            root_id = root.id();
            root.set_attrs(vec![("k".into(), 10u64.into())]);
            let child = t.span("phase.tia", root.id());
            t.add_event(child.id(), "lookup", t.now_ns(), vec![("hit".into(), true.into())]);
        }
        let doc = t.snapshot();
        assert_eq!(doc.spans.len(), 2);
        let root = doc.span(root_id.0).unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(root.attr("k").and_then(AttrValue::as_u64), Some(10));
        doc.validate().unwrap();
    }

    #[test]
    fn snapshot_closes_open_spans_in_copy_only() {
        let t = Tracer::new();
        let id = t.start_span("open", SpanId::NONE);
        let doc = t.snapshot();
        assert!(doc.span(id.0).unwrap().end_ns >= doc.span(id.0).unwrap().start_ns);
        doc.validate().unwrap();
        t.end_span(id);
        t.snapshot().validate().unwrap();
    }

    #[test]
    fn synthetic_spans_and_events_round_trip() {
        let t = Tracer::new();
        let root = t.add_span("query", SpanId::NONE, 0, 1000, vec![("backend".into(), "paged".into())]);
        let worker = t.add_span(
            "worker",
            root,
            10,
            900,
            vec![("worker".into(), 1u64.into()), ("steals".into(), 2u64.into())],
        );
        t.add_event(
            worker,
            "pop",
            17,
            vec![
                ("key".into(), 0.5f64.into()),
                ("stolen".into(), false.into()),
            ],
        );
        let doc = t.snapshot();
        doc.validate().unwrap();
        let json = doc.to_json();
        let back = TraceDoc::parse(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back, doc);
        let ev = back.events_of(worker.0).next().unwrap();
        assert_eq!(ev.attr("key").and_then(AttrValue::as_f64), Some(0.5));
        assert_eq!(ev.attr("stolen").and_then(AttrValue::as_bool), Some(false));
    }

    #[test]
    fn empty_trace_round_trips() {
        let doc = Tracer::new().snapshot();
        let back = TraceDoc::parse(&doc.to_json()).unwrap();
        back.validate().unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn validate_rejects_orphans_and_escapes() {
        let t = Tracer::new();
        t.add_span("orphan", SpanId(999), 0, 10, vec![]);
        assert!(t.snapshot().validate().unwrap_err().contains("orphaned"));

        let t = Tracer::new();
        let root = t.add_span("root", SpanId::NONE, 100, 200, vec![]);
        t.add_span("child", root, 50, 150, vec![]);
        assert!(t.snapshot().validate().unwrap_err().contains("escapes"));

        let t = Tracer::new();
        let root = t.add_span("root", SpanId::NONE, 100, 200, vec![]);
        t.add_event(root, "late", 500, vec![]);
        assert!(t.snapshot().validate().unwrap_err().contains("outside"));

        let t = Tracer::new();
        t.add_event(SpanId(42), "nowhere", 0, vec![]);
        assert!(t.snapshot().validate().unwrap_err().contains("unknown span"));
    }

    #[test]
    fn validate_rejects_duplicate_and_zero_ids() {
        let mut doc = Tracer::new().snapshot();
        doc.spans.push(SpanDoc {
            id: 0,
            parent: 0,
            name: "zero".into(),
            start_ns: 0,
            end_ns: 1,
            attrs: vec![],
        });
        assert!(doc.validate().is_err());

        let t = Tracer::new();
        t.add_span("a", SpanId::NONE, 0, 1, vec![]);
        let mut doc = t.snapshot();
        let dup = doc.spans[0].clone();
        doc.spans.push(dup);
        assert!(doc.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let t = Tracer::new();
        let a = t.now_ns();
        let b = t.now_ns();
        assert!(b >= a);
    }
}
