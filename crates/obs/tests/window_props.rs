//! Property tests for the live-telemetry substrate: the sliding window must
//! forget rotated-out epochs exactly, and the tail sampler must stay within
//! its memory bound while keeping a deterministic set for a given stream.

use knnta_obs::bounds::LATENCY_US;
use knnta_obs::live::quantile_from;
use knnta_obs::{LiveWindows, TailConfig, TailSampler, TraceDoc, TRACE_SCHEMA};
use knnta_util::prop::{check, Gen};

/// One recorded sample plus the tick it landed on — the shadow model keeps
/// every sample forever and filters by tick, which is exactly the behaviour
/// the ring of epoch buckets must reproduce without keeping anything.
struct Shadow {
    slots: u64,
    samples: Vec<(u64, u64)>, // (tick, value)
}

impl Shadow {
    fn in_window(&self, now: u64) -> impl Iterator<Item = u64> + '_ {
        let oldest = now.saturating_sub(self.slots - 1);
        self.samples
            .iter()
            .filter(move |&&(t, _)| t >= oldest)
            .map(|&(_, v)| v)
    }

    fn expected(&self, now: u64, q: f64) -> (u64, u64, u64) {
        let mut buckets = vec![0u64; LATENCY_US.len() + 1];
        let mut max = 0u64;
        let mut count = 0u64;
        for v in self.in_window(now) {
            let i = LATENCY_US
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(LATENCY_US.len());
            buckets[i] += 1;
            max = max.max(v);
            count += 1;
        }
        (count, max, quantile_from(LATENCY_US, &buckets, max, q))
    }
}

/// Rotated-out buckets never contribute: after an arbitrary interleaving of
/// records and advances, count / max / every quantile of the live histogram
/// equal those computed from only the samples whose tick is still in-window.
#[test]
fn window_rotation_forgets_exactly() {
    check("window_rotation_forgets_exactly", 64, |g: &mut Gen| {
        let slots = g.usize_in(1..6);
        let windows = LiveWindows::new(slots);
        let hist = windows.histogram("prop.latency_us", LATENCY_US);
        let mut shadow = Shadow {
            slots: slots as u64,
            samples: Vec::new(),
        };
        let ops = g.usize_in(1..120);
        for _ in 0..ops {
            if g.bool() {
                windows.advance();
            } else {
                let v = g.u64_in(0..20_000_000);
                hist.record(v);
                shadow.samples.push((windows.tick(), v));
            }
            let now = windows.tick();
            for &q in &[0.0, 0.5, 0.95, 0.99, 1.0] {
                let (count, max, quant) = shadow.expected(now, q);
                assert_eq!(hist.window_count(), count, "count at tick {now}");
                assert_eq!(hist.window_max(), max, "max at tick {now}");
                assert_eq!(hist.quantile(q), quant, "q={q} at tick {now}");
            }
        }
    });
}

fn tiny_trace(seq: u64) -> TraceDoc {
    TraceDoc {
        schema: TRACE_SCHEMA.into(),
        spans: vec![knnta_obs::trace::SpanDoc {
            id: 1,
            parent: 0,
            name: format!("q{seq}"),
            start_ns: 0,
            end_ns: 1,
            attrs: Vec::new(),
        }],
        events: Vec::new(),
    }
}

/// Replays one generated offer/advance stream against a fresh sampler and
/// returns the kept (seq, latency) set plus how many trace closures actually
/// ran — laziness is part of the memory bound.
fn run_stream(stream: &[(bool, u64)], config: &TailConfig) -> (Vec<(u64, u64)>, u64) {
    let sampler = TailSampler::new(config.clone());
    let mut built = 0u64;
    for (i, &(adv, latency)) in stream.iter().enumerate() {
        if adv {
            sampler.advance();
        }
        sampler.offer(latency, || {
            built += 1;
            tiny_trace(i as u64)
        });
        assert!(
            sampler.kept_len() <= config.capacity,
            "reservoir exceeded capacity after offer {i}"
        );
    }
    (
        sampler.kept().iter().map(|k| (k.seq, k.latency_us)).collect(),
        built,
    )
}

/// The reservoir never exceeds its capacity, never materialises more traces
/// than it admitted, and the kept set is a pure function of the offer stream
/// — replaying the same stream yields the identical set, which is what makes
/// `KNNTA_PROP_SEED` reproduction of a tail capture meaningful.
#[test]
fn tail_sampler_is_bounded_and_deterministic() {
    check("tail_sampler_is_bounded_and_deterministic", 64, |g: &mut Gen| {
        let config = TailConfig {
            capacity: g.usize_in(1..12),
            warmup: g.u64_in(0..16),
            slots: g.usize_in(1..5),
            ..TailConfig::default()
        };
        let stream: Vec<(bool, u64)> = g.vec(1, 200, |g| {
            // Heavy-tailed latencies so both sides of the threshold appear.
            let base = g.u64_in(1..1_000);
            let spike = if g.bool() { g.u64_in(0..5_000_000) } else { 0 };
            (g.usize_in(0..8) == 0, base + spike)
        });
        let (kept_a, built_a) = run_stream(&stream, &config);
        let (kept_b, built_b) = run_stream(&stream, &config);
        assert_eq!(kept_a, kept_b, "kept set must be deterministic per stream");
        assert_eq!(built_a, built_b);
        assert!(kept_a.len() <= config.capacity);
        assert!(
            built_a <= stream.len() as u64,
            "never builds more traces than offers"
        );
        // Sorted by admission order, and every kept latency is really from
        // the stream at that position (seq is 1-based).
        for w in kept_a.windows(2) {
            assert!(w[0].0 < w[1].0, "kept set sorted by seq");
        }
        for &(seq, latency) in &kept_a {
            assert_eq!(stream[seq as usize - 1].1, latency);
        }
    });
}
