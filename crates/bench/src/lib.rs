//! Shared plumbing for the experiment harness that regenerates every table
//! and figure of the paper's evaluation (Section 8).
//!
//! The entry point is the `repro` binary (`cargo run -p knnta-bench
//! --release --bin repro -- <experiment>`); micro-benchmarks live in
//! `benches/`, run on the in-repo [`knnta_util::bench`] runner, and write
//! `BENCH_<suite>.json` next to the workspace root. Everything here is
//! deterministic under a seed.

#![warn(missing_docs)]

use knnta_core::{Grouping, IndexConfig, KnntaQuery, Poi, ScanBaseline, TarIndex};
use lbsn::{DatasetSpec, IntervalAnchor, LbsnDataset, Workload};
use rtree::Rect;
use std::time::Instant;
use tempora::{AggregateSeries, PoiId, TimeInterval};

/// A generated dataset plus its full-time snapshot, ready for indexing.
pub struct BenchData {
    /// The generated dataset.
    pub dataset: LbsnDataset,
    /// `(id, position, series)` for every POI alive at `tc`.
    pub snapshot: Vec<(PoiId, [f64; 2], AggregateSeries)>,
}

/// Experiment-wide knobs (scale, workload size, seeds).
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Dataset scale (1.0 = the paper's size); 0 = per-dataset default.
    pub scale: f64,
    /// Queries per measurement (the paper uses 1000).
    pub queries: usize,
    /// Epoch length in days (the paper's default is 7).
    pub epoch_days: i64,
    /// RNG seed.
    pub seed: u64,
    /// Bootstrap replicates for Table 2's p-value.
    pub bootstrap: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 0.0,
            queries: 200,
            epoch_days: 7,
            seed: 20_260_704,
            bootstrap: 25,
        }
    }
}

impl BenchConfig {
    /// The effective scale for `spec` (per-dataset defaults keep the suite
    /// laptop-sized while staying in the paper's regime).
    pub fn scale_for(&self, spec: &DatasetSpec) -> f64 {
        if self.scale > 0.0 {
            return self.scale;
        }
        match spec.name {
            "GW" => 0.02,
            "GS" => 0.05,
            _ => 0.10, // NYC, LA
        }
    }
}

/// Generates a dataset and its snapshot.
pub fn load(spec: &DatasetSpec, config: &BenchConfig) -> BenchData {
    let dataset = spec.generate(config.scale_for(spec), config.epoch_days, config.seed);
    let snapshot = dataset.snapshot(dataset.grid.len());
    BenchData { dataset, snapshot }
}

impl BenchData {
    /// The data-space bounds as a rect.
    pub fn bounds(&self) -> Rect<2> {
        Rect::new(self.dataset.bounds.0, self.dataset.bounds.1)
    }

    /// Builds an index over the snapshot.
    pub fn index(&self, grouping: Grouping) -> TarIndex {
        self.index_with(IndexConfig::with_grouping(grouping))
    }

    /// Builds an index with an explicit config.
    pub fn index_with(&self, config: IndexConfig) -> TarIndex {
        TarIndex::build(
            config,
            self.dataset.grid.clone(),
            self.bounds(),
            self.snapshot
                .iter()
                .map(|(id, pos, s)| (Poi { id: *id, pos: *pos }, s.clone())),
        )
    }

    /// Builds an index over a time-prefix snapshot (the Figure 8 growth
    /// experiment).
    pub fn index_at_fraction(&self, grouping: Grouping, fraction: f64) -> TarIndex {
        TarIndex::build(
            IndexConfig::with_grouping(grouping),
            self.dataset.grid.clone(),
            self.bounds(),
            self.dataset
                .snapshot_at(fraction)
                .into_iter()
                .map(|(id, pos, s)| (Poi { id, pos }, s)),
        )
    }

    /// Builds the sequential-scan baseline.
    pub fn baseline(&self) -> ScanBaseline {
        ScanBaseline::build(
            self.dataset.grid.clone(),
            self.bounds(),
            self.snapshot
                .iter()
                .map(|(id, pos, s)| (Poi { id: *id, pos: *pos }, s.clone())),
        )
    }

    /// A workload of `(point, interval)` pairs (Section 8's distribution).
    pub fn workload(&self, count: usize, seed: u64) -> Workload {
        Workload::generate(&self.dataset, count, IntervalAnchor::Random, seed)
    }

    /// Fully-specified queries from a workload.
    pub fn queries(&self, count: usize, k: usize, alpha0: f64, seed: u64) -> Vec<KnntaQuery> {
        self.workload(count, seed)
            .queries
            .iter()
            .map(|&(p, iv)| KnntaQuery::new(p, iv).with_k(k).with_alpha0(alpha0))
            .collect()
    }
}

/// Averages per query for one measured configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Mean CPU time per query in milliseconds.
    pub cpu_ms: f64,
    /// Mean node accesses per query.
    pub node_accesses: f64,
    /// Mean *leaf* node accesses per query (Section 6.3's unit).
    pub leaf_accesses: f64,
    /// Mean `f(pk)` (score of the k-th hit) over queries that returned `k`
    /// results.
    pub fpk: f64,
}

/// Runs `queries` against `index` and averages the costs.
pub fn measure_index(index: &TarIndex, queries: &[KnntaQuery]) -> Measurement {
    index.stats().reset();
    let mut fpk_sum = 0.0;
    let mut fpk_n = 0usize;
    let t0 = Instant::now();
    for q in queries {
        let hits = index.query(q);
        if hits.len() == q.k {
            fpk_sum += hits.last().expect("k >= 1").score;
            fpk_n += 1;
        }
    }
    let elapsed = t0.elapsed();
    let n = queries.len().max(1) as f64;
    Measurement {
        cpu_ms: elapsed.as_secs_f64() * 1e3 / n,
        node_accesses: index.stats().node_accesses() as f64 / n,
        leaf_accesses: index.stats().leaf_node_accesses() as f64 / n,
        fpk: if fpk_n > 0 { fpk_sum / fpk_n as f64 } else { 0.0 },
    }
}

/// Runs `queries` against the scan baseline (CPU time only — it touches no
/// index nodes).
pub fn measure_baseline(baseline: &ScanBaseline, queries: &[KnntaQuery]) -> Measurement {
    let t0 = Instant::now();
    for q in queries {
        let _ = baseline.query(q);
    }
    let n = queries.len().max(1) as f64;
    Measurement {
        cpu_ms: t0.elapsed().as_secs_f64() * 1e3 / n,
        ..Default::default()
    }
}

/// Per-POI aggregates over one interval (parameterises the cost model).
pub fn aggregates_over(baseline: &ScanBaseline, interval: TimeInterval) -> Vec<u64> {
    baseline
        .score_all(&KnntaQuery::new([0.0, 0.0], interval).with_k(1))
        .iter()
        .map(|h| h.aggregate)
        .collect()
}

/// Simple fixed-width table printer for the experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_measure_smoke() {
        let config = BenchConfig {
            scale: 0.002,
            queries: 5,
            ..Default::default()
        };
        let data = load(&lbsn::gs(), &config);
        assert!(!data.snapshot.is_empty());
        let index = data.index(Grouping::TarIntegral);
        let queries = data.queries(5, 10, 0.3, 1);
        let m = measure_index(&index, &queries);
        assert!(m.node_accesses >= 1.0);
        assert!(m.leaf_accesses <= m.node_accesses);
        let baseline = data.baseline();
        let mb = measure_baseline(&baseline, &queries);
        assert!(mb.cpu_ms >= 0.0);
    }

    #[test]
    fn growth_index_smoke() {
        let config = BenchConfig {
            scale: 0.002,
            ..Default::default()
        };
        let data = load(&lbsn::gs(), &config);
        let early = data.index_at_fraction(Grouping::IndSpa, 0.2);
        let full = data.index_at_fraction(Grouping::IndSpa, 1.0);
        assert!(early.len() <= full.len());
    }

    #[test]
    fn table_prints() {
        let mut t = Table::new(&["k", "value"]);
        t.row(vec!["1".into(), fmt(0.123456)]);
        t.row(vec!["10".into(), fmt(123.456)]);
        t.print();
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.5), "0.500");
        assert_eq!(fmt(42.0), "42.00");
        assert_eq!(fmt(420.0), "420");
    }
}
