//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p knnta-bench --release --bin repro -- all
//! cargo run -p knnta-bench --release --bin repro -- table2 fig9 fig13 \
//!     [--scale 0.05] [--queries 500] [--seed 7] [--dataset GW,GS] [--boot 50]
//! ```
//!
//! Each experiment prints the same rows/series the paper reports; see
//! EXPERIMENTS.md for the recorded paper-vs-measured comparison.

use costmodel::{effective_fanout, estimate_support_area, CostModel};
use knnta_bench::{
    aggregates_over, fmt, load, measure_baseline, measure_index, BenchConfig, BenchData, Table,
};
use knnta_core::{Grouping, IndexConfig, KnntaQuery};
use lbsn::DatasetSpec;
use knnta_util::rng::StdRng;
use std::time::Instant;
use tempora::{TimeInterval, Timestamp};

const ALL_EXPERIMENTS: &[&str] = &[
    "table2", "table4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "ablation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut config = BenchConfig::default();
    let mut datasets = vec!["GW".to_string(), "GS".to_string()];

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = args[i].parse().expect("--scale takes a float");
            }
            "--queries" => {
                i += 1;
                config.queries = args[i].parse().expect("--queries takes a count");
            }
            "--seed" => {
                i += 1;
                config.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--boot" => {
                i += 1;
                config.bootstrap = args[i].parse().expect("--boot takes a count");
            }
            "--dataset" => {
                i += 1;
                datasets = args[i].split(',').map(|s| s.to_uppercase()).collect();
            }
            "all" => experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            exp if ALL_EXPERIMENTS.contains(&exp) => experiments.push(exp.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if experiments.is_empty() {
        eprintln!("usage: repro <experiment|all> [...options]");
        eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    let specs: Vec<DatasetSpec> = datasets
        .iter()
        .map(|name| lbsn::spec_by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}")))
        .collect();

    for exp in &experiments {
        let t0 = Instant::now();
        match exp.as_str() {
            "table2" => table2(&config),
            "table4" => table4(&config),
            "fig6" => {
                for spec in &specs {
                    fig6(spec, &config);
                }
            }
            "fig7" => {
                for spec in &specs {
                    fig7(spec, &config);
                }
            }
            "fig8" => {
                for spec in &specs {
                    fig8(spec, &config);
                }
            }
            "fig9" => {
                for spec in &specs {
                    fig9(spec, &config);
                }
            }
            "fig10" => {
                for spec in &specs {
                    fig10(spec, &config);
                }
            }
            "fig11" => {
                for spec in &specs {
                    fig11(spec, &config);
                }
            }
            "fig12" => {
                for spec in &specs {
                    fig12(spec, &config);
                }
            }
            "fig13" => {
                for spec in &specs {
                    fig13(spec, &config);
                }
            }
            "fig14" => {
                for spec in &specs {
                    fig14(spec, &config);
                }
            }
            "fig15" => {
                for spec in &specs {
                    fig15(spec, &config);
                }
            }
            "fig16" => {
                for spec in &specs {
                    fig16(spec, &config);
                }
            }
            "ablation" => {
                for spec in &specs {
                    ablation(spec, &config);
                }
            }
            _ => unreachable!(),
        }
        eprintln!("[{exp} took {:.1?}]\n", t0.elapsed());
    }
}

/// Table 2: power-law fitting of the aggregate data.
fn table2(config: &BenchConfig) {
    println!("== Table 2: power-law fitting (CSN method) on the synthetic datasets ==");
    println!("(paper values: NYC β̂=3.20 x̂min=31 p=0.68 | LA 3.07/16/0.18 | GW 2.82/85/0.29 | GS 2.19/59/0.21)\n");
    let mut table = Table::new(&["data", "n", "beta_hat", "xmin_hat", "p-value"]);
    let mut rng = StdRng::seed_from_u64(config.seed);
    for spec in lbsn::all_specs() {
        let data = load(&spec, config);
        let totals = data.dataset.totals();
        let fit = lbsn::fit_power_law(&totals, 50).expect("fit");
        let p = lbsn::goodness_of_fit(&totals, &fit, config.bootstrap, &mut rng);
        table.row(vec![
            spec.name.into(),
            totals.len().to_string(),
            format!("{:.2}", fit.beta),
            fit.xmin.to_string(),
            format!("{p:.2}"),
        ]);
    }
    table.print();
}

/// Table 4: dataset statistics (scaled).
fn table4(config: &BenchConfig) {
    println!("== Table 4: datasets (scaled synthetic reproduction) ==\n");
    let mut table = Table::new(&[
        "name", "scale", "locations", "check-ins", "days", "epochs", "paper locations", "paper check-ins",
    ]);
    for spec in lbsn::all_specs() {
        let data = load(&spec, config);
        table.row(vec![
            spec.name.into(),
            format!("{:.3}", config.scale_for(&spec)),
            data.dataset.len().to_string(),
            data.dataset.total_checkins().to_string(),
            spec.days.to_string(),
            data.dataset.grid.len().to_string(),
            spec.locations.to_string(),
            spec.checkins.to_string(),
        ]);
    }
    table.print();
}

/// The cost-model estimate for a mixed-interval workload: per interval
/// length, fit the aggregates and estimate, then average weighted by the
/// workload's frequency of that length.
fn model_estimates(
    data: &BenchData,
    queries: &[KnntaQuery],
    alpha0: f64,
    k: usize,
    support: f64,
) -> (f64, f64) {
    use std::collections::HashMap;
    let baseline = data.baseline();
    let fanout = effective_fanout(rtree::RTreeParams::for_node_size(1024, 3).max_entries);
    let mut by_len: HashMap<i64, usize> = HashMap::new();
    for q in queries {
        *by_len.entry(q.interval.duration()).or_insert(0) += 1;
    }
    let (mut fpk_sum, mut na_sum, mut weight) = (0.0, 0.0, 0usize);
    for (len, count) in by_len {
        let tc = data.dataset.grid.tc();
        let iv = TimeInterval::new(tc - len, tc);
        let aggs = aggregates_over(&baseline, iv);
        if let Some(model) = CostModel::from_aggregates(&aggs, alpha0, k, fanout) {
            let est = model.with_support_area(support).estimate();
            fpk_sum += est.fpk * count as f64;
            na_sum += est.node_accesses * count as f64;
            weight += count;
        }
        // Intervals too short to cover an epoch have no layers; the
        // measured side also has f(pk) ≈ α1 there. Skip them, as the
        // paper's analysis does (it assumes a populated power law).
    }
    if weight == 0 {
        (0.0, 0.0)
    } else {
        (fpk_sum / weight as f64, na_sum / weight as f64)
    }
}

/// Figure 6: cost-analysis validation by varying k.
fn fig6(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 6: cost analysis validation, varying k ({}) ==\n", spec.name);
    let data = load(spec, config);
    let index = data.index(Grouping::TarIntegral);
    let support = estimate_support_area(&data.dataset.positions, data.dataset.bounds);
    let mut table = Table::new(&[
        "k",
        "f(pk) measured",
        "f(pk) estimated",
        "leaf NA measured",
        "leaf NA estimated",
    ]);
    for k in [1usize, 5, 10, 50, 100] {
        let queries = data.queries(config.queries, k, 0.3, config.seed + k as u64);
        let m = measure_index(&index, &queries);
        let (est_fpk, est_na) = model_estimates(&data, &queries, 0.3, k, support);
        table.row(vec![
            k.to_string(),
            fmt(m.fpk),
            fmt(est_fpk),
            fmt(m.leaf_accesses),
            fmt(est_na),
        ]);
    }
    table.print();
}

/// Figure 7: cost-analysis validation by varying α0.
fn fig7(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 7: cost analysis validation, varying α0 ({}) ==\n", spec.name);
    let data = load(spec, config);
    let index = data.index(Grouping::TarIntegral);
    let support = estimate_support_area(&data.dataset.positions, data.dataset.bounds);
    let mut table = Table::new(&[
        "alpha0",
        "f(pk) measured",
        "f(pk) estimated",
        "leaf NA measured",
        "leaf NA estimated",
    ]);
    for alpha0 in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let queries = data.queries(config.queries, 10, alpha0, config.seed + 71);
        let m = measure_index(&index, &queries);
        let (est_fpk, est_na) = model_estimates(&data, &queries, alpha0, 10, support);
        table.row(vec![
            format!("{alpha0:.1}"),
            fmt(m.fpk),
            fmt(est_fpk),
            fmt(m.leaf_accesses),
            fmt(est_na),
        ]);
    }
    table.print();
}

/// Runs the four approaches over one query set.
fn compare_approaches(
    data: &BenchData,
    indexes: &[(&str, &knnta_core::TarIndex)],
    queries: &[KnntaQuery],
    table: &mut Table,
    label: String,
) {
    let baseline = data.baseline();
    let mb = measure_baseline(&baseline, queries);
    let mut cells = vec![label, fmt(mb.cpu_ms)];
    let mut nas = Vec::new();
    for (_, index) in indexes {
        let m = measure_index(index, queries);
        cells.push(fmt(m.cpu_ms));
        nas.push(fmt(m.node_accesses));
    }
    cells.extend(nas);
    table.row(cells);
}

fn approaches_header() -> [&'static str; 8] {
    [
        "x",
        "baseline ms",
        "IND-agg ms",
        "IND-spa ms",
        "TAR ms",
        "IND-agg NA",
        "IND-spa NA",
        "TAR NA",
    ]
}

/// Figure 8: growth of the LBSN (snapshots at 20%..100% of time).
fn fig8(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 8: LBSN growth, snapshots of the time span ({}) ==\n", spec.name);
    let data = load(spec, config);
    let mut table = Table::new(&approaches_header());
    for pct in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let agg = data.index_at_fraction(Grouping::IndAgg, pct);
        let spa = data.index_at_fraction(Grouping::IndSpa, pct);
        let tar = data.index_at_fraction(Grouping::TarIntegral, pct);
        // Queries whose intervals lie inside the snapshot's time prefix.
        let tc_days = (data.dataset.grid.tc().days() as f64 * pct) as i64;
        let queries: Vec<KnntaQuery> = data
            .queries(config.queries, 10, 0.3, config.seed + (pct * 10.0) as u64)
            .into_iter()
            .map(|mut q| {
                let len = q.interval.duration().min(tc_days * Timestamp::DAY);
                let end = Timestamp::from_days(tc_days);
                q.interval = TimeInterval::new(end - len, end);
                q
            })
            .collect();
        let indexes = [("IND-agg", &agg), ("IND-spa", &spa), ("TAR", &tar)];
        compare_approaches(&data, &indexes, &queries, &mut table, format!("{:.0}%", pct * 100.0));
    }
    table.print();
}

/// Figure 9: varying k.
fn fig9(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 9: varying k ({}) ==\n", spec.name);
    let data = load(spec, config);
    let agg = data.index(Grouping::IndAgg);
    let spa = data.index(Grouping::IndSpa);
    let tar = data.index(Grouping::TarIntegral);
    let indexes = [("IND-agg", &agg), ("IND-spa", &spa), ("TAR", &tar)];
    let mut table = Table::new(&approaches_header());
    for k in [1usize, 5, 10, 50, 100] {
        let queries = data.queries(config.queries, k, 0.3, config.seed + 900 + k as u64);
        compare_approaches(&data, &indexes, &queries, &mut table, format!("k={k}"));
    }
    table.print();
}

/// Figure 10: varying α0.
fn fig10(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 10: varying α0 ({}) ==\n", spec.name);
    let data = load(spec, config);
    let agg = data.index(Grouping::IndAgg);
    let spa = data.index(Grouping::IndSpa);
    let tar = data.index(Grouping::TarIntegral);
    let indexes = [("IND-agg", &agg), ("IND-spa", &spa), ("TAR", &tar)];
    let mut table = Table::new(&approaches_header());
    for alpha0 in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let queries = data.queries(config.queries, 10, alpha0, config.seed + 1000);
        compare_approaches(&data, &indexes, &queries, &mut table, format!("a0={alpha0:.1}"));
    }
    table.print();
}

/// Figure 11: varying the epoch length (regenerates the dataset per length).
fn fig11(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 11: varying the epoch length ({}) ==\n", spec.name);
    let mut table = Table::new(&approaches_header());
    for epoch_days in [1i64, 3, 7, 14, 28] {
        let cfg = BenchConfig {
            epoch_days,
            ..*config
        };
        let data = load(spec, &cfg);
        let agg = data.index(Grouping::IndAgg);
        let spa = data.index(Grouping::IndSpa);
        let tar = data.index(Grouping::TarIntegral);
        let indexes = [("IND-agg", &agg), ("IND-spa", &spa), ("TAR", &tar)];
        let queries = data.queries(config.queries, 10, 0.3, config.seed + 1100);
        compare_approaches(&data, &indexes, &queries, &mut table, format!("{epoch_days}d"));
    }
    table.print();
}

/// Figure 12: varying the R-tree node size.
fn fig12(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 12: varying the node size ({}) ==\n", spec.name);
    let data = load(spec, config);
    let mut table = Table::new(&approaches_header());
    for node_size in [512usize, 1024, 2048, 4096, 8192] {
        let mk = |grouping| {
            data.index_with(IndexConfig {
                grouping,
                node_size,
                forced_reinsert: true,
            })
        };
        let agg = mk(Grouping::IndAgg);
        let spa = mk(Grouping::IndSpa);
        let tar = mk(Grouping::TarIntegral);
        let indexes = [("IND-agg", &agg), ("IND-spa", &spa), ("TAR", &tar)];
        let queries = data.queries(config.queries, 10, 0.3, config.seed + 1200);
        compare_approaches(&data, &indexes, &queries, &mut table, format!("{node_size}B"));
    }
    table.print();
}

/// Figure 13: MWA algorithms, varying k.
fn fig13(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 13: computing the MWA, varying k ({}) ==\n", spec.name);
    let data = load(spec, config);
    let index = data.index(Grouping::TarIntegral);
    let mut table = Table::new(&[
        "k",
        "enumerating ms",
        "pruning ms",
        "enumerating NA",
        "pruning NA",
    ]);
    // The enumerating baseline is O(k · full traversals): keep the query
    // count small, exactly like the paper's trimmed MWA workload.
    let n_queries = (config.queries / 20).clamp(5, 25);
    for k in [10usize, 50, 100, 500, 1000] {
        let queries = data.queries(n_queries, k, 0.3, config.seed + 1300 + k as u64);
        index.stats().reset();
        let t0 = Instant::now();
        for q in &queries {
            let _ = index.mwa_enumerating(q);
        }
        let enum_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let enum_na = index.stats().node_accesses() as f64 / queries.len() as f64;
        index.stats().reset();
        let t0 = Instant::now();
        for q in &queries {
            let _ = index.mwa_pruning(q);
        }
        let prune_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let prune_na = index.stats().node_accesses() as f64 / queries.len() as f64;
        table.row(vec![
            k.to_string(),
            fmt(enum_ms),
            fmt(prune_ms),
            fmt(enum_na),
            fmt(prune_na),
        ]);
    }
    table.print();
}

/// Figure 14: MWA algorithms, varying α0.
fn fig14(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 14: computing the MWA, varying α0 ({}) ==\n", spec.name);
    let data = load(spec, config);
    let index = data.index(Grouping::TarIntegral);
    let mut table = Table::new(&[
        "alpha0",
        "enumerating ms",
        "pruning ms",
        "enumerating NA",
        "pruning NA",
    ]);
    let n_queries = (config.queries / 10).clamp(5, 50);
    for alpha0 in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let queries = data.queries(n_queries, 10, alpha0, config.seed + 1400);
        index.stats().reset();
        let t0 = Instant::now();
        for q in &queries {
            let _ = index.mwa_enumerating(q);
        }
        let enum_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let enum_na = index.stats().node_accesses() as f64 / queries.len() as f64;
        index.stats().reset();
        let t0 = Instant::now();
        for q in &queries {
            let _ = index.mwa_pruning(q);
        }
        let prune_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let prune_na = index.stats().node_accesses() as f64 / queries.len() as f64;
        table.row(vec![
            format!("{alpha0:.1}"),
            fmt(enum_ms),
            fmt(prune_ms),
            fmt(enum_na),
            fmt(prune_na),
        ]);
    }
    table.print();
}

/// Figure 15: collective processing, varying the number of queries.
fn fig15(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 15: collective processing, varying #queries ({}) ==\n", spec.name);
    let data = load(spec, config);
    let index = data.index(Grouping::TarIntegral);
    let mut table = Table::new(&[
        "queries",
        "individual ms",
        "collective ms",
        "individual NA",
        "collective NA",
    ]);
    // 10 interval types, as users pick from a few presets (Section 7.2).
    let base = data.workload(10_000, config.seed + 1500).with_interval_types(10);
    for count in [100usize, 500, 1000, 5000, 10_000] {
        let queries: Vec<KnntaQuery> = base.queries[..count]
            .iter()
            .map(|&(p, iv)| KnntaQuery::new(p, iv).with_k(10).with_alpha0(0.3))
            .collect();
        index.stats().reset();
        let t0 = Instant::now();
        let _ = index.query_batch_individual(&queries);
        let ind_ms = t0.elapsed().as_secs_f64() * 1e3 / count as f64;
        let ind_na = index.stats().node_accesses() as f64 / count as f64;
        index.stats().reset();
        let t0 = Instant::now();
        let _ = index.query_batch_collective(&queries);
        let col_ms = t0.elapsed().as_secs_f64() * 1e3 / count as f64;
        let col_na = index.stats().node_accesses() as f64 / count as f64;
        table.row(vec![
            count.to_string(),
            fmt(ind_ms),
            fmt(col_ms),
            fmt(ind_na),
            fmt(col_na),
        ]);
    }
    table.print();
}

/// Figure 16: collective processing, varying the number of query types.
fn fig16(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Figure 16: collective processing, varying #query types ({}) ==\n", spec.name);
    let data = load(spec, config);
    let index = data.index(Grouping::TarIntegral);
    let mut table = Table::new(&[
        "types",
        "individual ms",
        "collective ms",
        "individual NA",
        "collective NA",
    ]);
    let base = data.workload(1000, config.seed + 1600);
    for types in [1usize, 5, 10, 50, 100] {
        let queries: Vec<KnntaQuery> = base
            .with_interval_types(types)
            .queries
            .iter()
            .map(|&(p, iv)| KnntaQuery::new(p, iv).with_k(10).with_alpha0(0.3))
            .collect();
        index.stats().reset();
        let t0 = Instant::now();
        let _ = index.query_batch_individual(&queries);
        let ind_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let ind_na = index.stats().node_accesses() as f64 / queries.len() as f64;
        index.stats().reset();
        let t0 = Instant::now();
        let _ = index.query_batch_collective(&queries);
        let col_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let col_na = index.stats().node_accesses() as f64 / queries.len() as f64;
        table.row(vec![
            types.to_string(),
            fmt(ind_ms),
            fmt(col_ms),
            fmt(ind_na),
            fmt(col_na),
        ]);
    }
    table.print();
}

/// Ablations beyond the paper's figures: forced reinsertion on/off, and the
/// disk-resident (MVBT) TIA backend with its real page I/O, per epoch
/// length.
fn ablation(spec: &DatasetSpec, config: &BenchConfig) {
    println!("== Ablation: forced reinsert & disk-TIA I/O ({}) ==\n", spec.name);

    // Forced reinsertion on/off (TAR-tree).
    let data = load(spec, config);
    let mut table = Table::new(&["reinsert", "nodes", "TAR ms", "TAR NA"]);
    for (label, reinsert) in [("on", true), ("off", false)] {
        let index = data.index_with(IndexConfig {
            grouping: Grouping::TarIntegral,
            node_size: 1024,
            forced_reinsert: reinsert,
        });
        let queries = data.queries(config.queries, 10, 0.3, config.seed + 1700);
        let m = measure_index(&index, &queries);
        table.row(vec![
            label.into(),
            index.node_count().to_string(),
            fmt(m.cpu_ms),
            fmt(m.node_accesses),
        ]);
    }
    table.print();
    println!();

    // Disk-TIA backend: MVBT pages behind a 10-slot LRU buffer per TIA
    // (the paper's storage setup), varying the epoch length.
    let mut table = Table::new(&[
        "epoch", "mem ms", "disk ms", "TIA pages", "page reads/q", "buffer hit rate",
    ]);
    for epoch_days in [3i64, 7, 14] {
        let cfg = BenchConfig { epoch_days, ..*config };
        let data = load(spec, &cfg);
        let index = data.index(Grouping::TarIntegral);
        let tias = index.materialize_disk_tias(1024, 10);
        let queries = data.queries(config.queries.min(100), 10, 0.3, config.seed + 1800);
        let m_mem = measure_index(&index, &queries);
        tias.cool_down(); // cold cache: measure real page I/O
        let t0 = Instant::now();
        for q in &queries {
            let _ = index.query_with_disk_tias(q, &tias);
        }
        let disk_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let io = tias.io_snapshot();
        let hits = io.buffer_hits as f64;
        let total = (io.buffer_hits + io.buffer_misses).max(1) as f64;
        table.row(vec![
            format!("{epoch_days}d"),
            fmt(m_mem.cpu_ms),
            fmt(disk_ms),
            tias.page_count().to_string(),
            fmt(io.page_reads as f64 / queries.len() as f64),
            format!("{:.1}%", 100.0 * hits / total),
        ]);
    }
    table.print();
}
