//! Live-ingestion micro-benchmarks: concurrent check-in throughput at 1, 4
//! and 8 write shards, and snapshot-query latency while writers are
//! hammering the tier vs after it has quiesced.
//!
//! The `checkins/shards8` result backs the throughput gate in
//! `scripts/verify.sh`: one iteration records [`EVENTS_PER_ITER`] check-ins
//! from `shards` writer threads, so a median at or below
//! `EVENTS_PER_ITER × 1000 ns` means the tier sustains at least one million
//! check-ins per second on this node.

use knnta_bench::{load, BenchConfig, BenchData};
use knnta_core::{Grouping, IndexConfig, LiveIndex, LiveOptions, Poi, TarIndex};
use knnta_util::bench::Harness;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use tempora::{AggregateSeries, CheckIn, Timestamp};

/// Check-ins recorded per timed iteration.
const EVENTS_PER_ITER: usize = 200_000;

fn bench_config() -> BenchConfig {
    BenchConfig {
        scale: 0.01,
        queries: 16,
        ..Default::default()
    }
}

/// A live tier over the dataset's POIs with nothing digested yet.
fn live_of(data: &BenchData, shards: usize) -> LiveIndex {
    let index = TarIndex::build(
        IndexConfig::with_grouping(Grouping::TarIntegral),
        data.dataset.grid.clone(),
        data.bounds(),
        data.snapshot
            .iter()
            .map(|(id, pos, _)| (Poi { id: *id, pos: *pos }, AggregateSeries::new())),
    );
    LiveIndex::with_options(
        index,
        0,
        LiveOptions {
            shards,
            ..LiveOptions::default()
        },
    )
}

/// Exactly [`EVENTS_PER_ITER`] valued check-ins cycling over the dataset's
/// per-(POI, epoch) totals, timestamps jittered by a fixed-seed LCG.
fn synth_events(data: &BenchData) -> Vec<CheckIn> {
    let grid = &data.dataset.grid;
    let mut events = Vec::with_capacity(EVENTS_PER_ITER);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    'outer: loop {
        for epoch in 0..grid.len() {
            let start = grid.epoch(epoch).start;
            for (id, _, series) in &data.snapshot {
                let v = series.get(epoch as u32);
                if v == 0 {
                    continue;
                }
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let offset = ((x >> 33) as i64) % (7 * Timestamp::DAY);
                events.push(CheckIn::with_value(*id, start + offset, v as u32));
                if events.len() == EVENTS_PER_ITER {
                    break 'outer;
                }
            }
        }
    }
    events
}

fn ingestion(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let events = synth_events(&data);
    let mut group = h.group("ingestion");
    group.sample_size(10);

    // Write-path throughput: `shards` writer threads splitting the batch
    // round-robin. No sealing in the timed path — this is the hot-path cost
    // of `record` alone (roll read-lock + shard mutex + hash upsert).
    for shards in [1usize, 4, 8] {
        let live = live_of(&data, shards);
        group.bench(format!("checkins/shards{shards}"), |b| {
            b.counters(vec![("events_per_iter".to_string(), EVENTS_PER_ITER as u64)]);
            b.iter(|| {
                std::thread::scope(|s| {
                    for w in 0..shards {
                        let live = &live;
                        let events = &events;
                        s.spawn(move || {
                            for e in events.iter().skip(w).step_by(shards) {
                                live.record(e.clone());
                            }
                        });
                    }
                });
            })
        });
    }

    // Snapshot-query latency while 4 writers + a sealer churn the tier,
    // vs the same tier quiesced (everything sealed and merged). Queries
    // cycle through a fixed workload; each iteration takes a fresh
    // snapshot, which is the serving pattern.
    let live = live_of(&data, 8);
    let queries = data.queries(config.queries, 10, 0.3, config.seed);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 0..4 {
            let live = &live;
            let events = &events;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for e in events.iter().skip(w).step_by(4) {
                        live.record(e.clone());
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                }
            });
        }
        {
            let live = &live;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    live.seal_epoch();
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
            });
        }
        let mut qi = 0usize;
        group.bench("snapshot_query/during_ingest", |b| {
            b.iter(|| {
                let q = &queries[qi % queries.len()];
                qi += 1;
                black_box(live.snapshot().query(q))
            })
        });
        stop.store(true, Ordering::Relaxed);
    });

    while live.current_epoch() < live.grid().len() {
        live.seal_epoch();
    }
    live.seal_epoch();
    live.merge_sealed();
    let mut qi = 0usize;
    group.bench("snapshot_query/quiesced", |b| {
        b.iter(|| {
            let q = &queries[qi % queries.len()];
            qi += 1;
            black_box(live.snapshot().query(q))
        })
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("ingestion");
    ingestion(&mut h);
    h.finish().expect("write BENCH_ingestion.json");
}
