//! Micro-benchmarks for the substrates the TAR-tree is built on: the
//! multi-version B-tree (TIA), the R*-tree, and the page store.

use knnta_util::bench::Harness;
use mvbt::{Mvbt, MvbtTia};
use pagestore::{AccessStats, BufferPool, BufferPoolConfig, Bytes, Disk, PolicyKind};
use rtree::{NoAug, RStarGrouping, RStarTree, RTreeParams, Rect};
use std::hint::black_box;
use std::sync::Arc;
use tempora::{AggregateSeries, EpochGrid, TimeInterval};

fn lcg_points(n: usize) -> Vec<[f64; 2]> {
    let mut x = 7u64;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((x >> 16) % 100_000) as f64 / 100.0;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((x >> 16) % 100_000) as f64 / 100.0;
            [a, b]
        })
        .collect()
}

/// MVBT: insertion throughput and interval-aggregate queries.
fn mvbt_ops(h: &mut Harness) {
    let mut group = h.group("mvbt");
    group.sample_size(20);
    group.bench("insert_10k", |b| {
        b.iter(|| {
            let disk = Arc::new(Disk::new(1024, AccessStats::new()));
            let pool = Arc::new(BufferPool::new(disk, 64));
            let mut t = Mvbt::new(pool);
            for k in 0..10_000i64 {
                t.insert(black_box((k * 7919) % 10_000), k as u128, 1);
            }
            t
        })
    });
    // TIA aggregate queries over a loaded index.
    let grid = EpochGrid::fixed_days(1, 1000);
    let disk = Arc::new(Disk::new(1024, AccessStats::new()));
    let mut tia = MvbtTia::new(disk, 10);
    tia.load_series(
        &grid,
        &AggregateSeries::from_pairs((0..1000u32).map(|e| (e, (e % 17 + 1) as u64))),
    );
    for days in [16i64, 256] {
        let iq = TimeInterval::days(100, 100 + days);
        group.bench(format!("tia_aggregate/{days}"), |b| {
            b.iter(|| black_box(tia.aggregate_over(iq)))
        });
    }
    group.finish();
}

/// R*-tree: incremental insert vs STR bulk load, and k-NN queries.
fn rtree_ops(h: &mut Harness) {
    let mut group = h.group("rtree");
    group.sample_size(10);
    let points = lcg_points(20_000);
    group.bench("insert_20k", |b| {
        b.iter(|| {
            let mut t: RStarTree<2, u32, NoAug, RStarGrouping> = RStarTree::new(
                RTreeParams::with_max_entries(50),
                NoAug,
                RStarGrouping,
                AccessStats::new(),
            );
            for (i, p) in points.iter().enumerate() {
                t.insert(Rect::point(*p), i as u32);
            }
            t
        })
    });
    group.bench("bulk_load_20k", |b| {
        b.iter(|| {
            let mut t: RStarTree<2, u32, NoAug, RStarGrouping> = RStarTree::new(
                RTreeParams::with_max_entries(50),
                NoAug,
                RStarGrouping,
                AccessStats::new(),
            );
            t.bulk_load(
                points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (Rect::point(*p), i as u32, ()))
                    .collect(),
            );
            t
        })
    });
    let mut t: RStarTree<2, u32, NoAug, RStarGrouping> = RStarTree::new(
        RTreeParams::with_max_entries(50),
        NoAug,
        RStarGrouping,
        AccessStats::new(),
    );
    for (i, p) in points.iter().enumerate() {
        t.insert(Rect::point(*p), i as u32);
    }
    group.bench("knn_10_of_20k", |b| {
        b.iter(|| black_box(t.nearest(&[500.0, 500.0], 10)))
    });
    group.finish();
}

/// Buffer pool: hit and miss paths.
fn pagestore_ops(h: &mut Harness) {
    let mut group = h.group("pagestore");
    let stats = AccessStats::new();
    let disk = Arc::new(Disk::new(1024, stats));
    let pool = BufferPool::new(Arc::clone(&disk), 10);
    let pages: Vec<_> = (0..100).map(|_| pool.allocate()).collect();
    for &p in &pages {
        pool.write(p, Bytes::from(vec![7u8; 512]));
    }
    group.bench("buffered_read_hit", |b| {
        let hot = pages[0];
        let _ = pool.read(hot);
        b.iter(|| black_box(pool.read(hot)))
    });
    group.bench("buffered_read_thrash", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 13) % pages.len(); // stride defeats the 10-slot LRU
            black_box(pool.read(pages[i]))
        })
    });
    group.finish();
}

/// Replacement-policy sweep: the same mixed hot-set/scan read pattern
/// through every policy × buffer capacity. The workload is deterministic,
/// so each configuration's buffer hit rate is a fixed property of the
/// (policy, capacity) pair; it is measured up front and embedded in the
/// bench id (`clock/cap8/hit63pct`), making hit rates diffable PR over PR
/// alongside the latency columns.
fn pagestore_policy_ops(h: &mut Harness) {
    let mut group = h.group("pagestore_policy");
    let stats = AccessStats::new();
    let disk = Arc::new(Disk::new(1024, stats.clone()));
    let pages: Vec<_> = (0..64).map(|_| disk.allocate()).collect();
    for &p in &pages {
        disk.write(p, Bytes::from(vec![3u8; 512]));
    }
    // ~3/4 references to an 8-page hot set, interleaved with full scans —
    // the mix where LRU, CLOCK and 2Q genuinely diverge (scans flush LRU,
    // 2Q shields its hot queue, CLOCK sits in between).
    let mut x = 11u64;
    let pattern: Vec<usize> = (0..4096)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x >> 62 != 0 {
                (x >> 16) as usize % 8
            } else {
                i % pages.len()
            }
        })
        .collect();
    for policy in PolicyKind::ALL {
        for capacity in [4usize, 8, 16] {
            let pool = BufferPool::with_config(
                Arc::clone(&disk),
                BufferPoolConfig::new(capacity, policy),
            );
            // One cold pass pins down the deterministic hit rate.
            stats.reset();
            for &i in &pattern {
                let _ = pool.read(pages[i]);
            }
            let s = stats.snapshot();
            let hit_pct = 100 * s.buffer_hits / (s.buffer_hits + s.buffer_misses);
            group.bench(format!("{policy}/cap{capacity}/hit{hit_pct}pct"), |b| {
                b.iter(|| {
                    for &i in &pattern {
                        black_box(pool.read(pages[i]));
                    }
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("substrates");
    mvbt_ops(&mut h);
    rtree_ops(&mut h);
    pagestore_ops(&mut h);
    pagestore_policy_ops(&mut h);
    h.finish().expect("write BENCH_substrates.json");
}
