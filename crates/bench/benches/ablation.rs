//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! forced reinsertion on/off, in-memory vs MVBT-backed (disk) TIAs, and
//! build cost per grouping strategy.

use knnta_bench::{load, BenchConfig};
use knnta_core::{Grouping, IndexConfig};
use knnta_util::bench::Harness;
use std::hint::black_box;

fn bench_config() -> BenchConfig {
    BenchConfig {
        scale: 0.005,
        queries: 32,
        ..Default::default()
    }
}

/// R* forced reinsertion: query latency with and without it.
fn forced_reinsert(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let mut group = h.group("forced_reinsert");
    for (label, reinsert) in [("on", true), ("off", false)] {
        let index = data.index_with(IndexConfig {
            grouping: Grouping::TarIntegral,
            node_size: 1024,
            forced_reinsert: reinsert,
        });
        let queries = data.queries(config.queries, 10, 0.3, config.seed);
        group.bench(label, |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.query(q));
                }
            })
        });
    }
    group.finish();
}

/// TIA backend: aggregates from the in-memory series vs the disk-resident
/// multi-version B-tree (10 buffer slots, as in the paper's setup).
fn tia_backend(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let index = data.index(Grouping::TarIntegral);
    let tias = index.materialize_disk_tias(1024, 10);
    let queries = data.queries(config.queries, 10, 0.3, config.seed);
    let mut group = h.group("tia_backend");
    group.sample_size(20);
    group.bench("memory", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.query(q));
            }
        })
    });
    group.bench("mvbt_disk", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.query_with_disk_tias(q, &tias));
            }
        })
    });
    group.finish();
}

/// Index build time per grouping strategy.
fn build(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let mut group = h.group("build");
    group.sample_size(10);
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        group.bench(format!("{grouping}"), |b| {
            b.iter(|| black_box(data.index(grouping)))
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new("ablation");
    forced_reinsert(&mut h);
    tia_backend(&mut h);
    build(&mut h);
    h.finish().expect("write BENCH_ablation.json");
}
