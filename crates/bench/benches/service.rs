//! Query-service macro-benchmarks: throughput scaling across engine-shard
//! counts, and tail latency vs offered load.
//!
//! The `service/qps/shardsN` benches back the scaling gate in
//! `scripts/verify.sh`: every bench pushes the *same* closed burst of
//! [`BURST`] power-law queries through a service and waits for every
//! answer, so per-iteration time is inverse throughput at saturating load
//! — and, the work per iteration being fixed, equal time is equal latency
//! distribution. They run in one **interleaved** group (round-robin
//! sampling) so machine noise lands on every shard count alike and
//! `bench_diff --within --assert-ratio-ge qps/shards1 qps/shards8 2.0`
//! gates the ratio, not the wobbling absolutes. Note the gate needs real
//! cores to pass: on a single-core box every shard count serializes onto
//! the same CPU and the ratio collapses to ~1.
//!
//! The `service_p95` group measures the open-loop client at increasing
//! offered load on the widest service; each bench records the client's
//! measured `p95_us`/`qps` as counters in `BENCH_service.json`, tracing
//! the latency-vs-load curve (the saturation knee).

use knnta_bench::{load, BenchConfig, BenchData};
use knnta_core::{Obs, Poi};
use knnta_service::client::{powerlaw_queries, run_open_loop, ClientConfig};
use knnta_service::{Service, ServiceConfig, TelemetryConfig};
use knnta_util::bench::Harness;
use std::hint::black_box;
use std::time::Duration;
use tempora::AggregateSeries;

/// Queries per timed iteration (one closed burst).
const BURST: usize = 256;

fn bench_config() -> BenchConfig {
    BenchConfig {
        scale: 0.01,
        ..Default::default()
    }
}

/// A service over the dataset's full snapshot at the given shard count.
/// `telemetry` toggles the always-on sliding-window instrumentation — the
/// `service_obs` group benches both settings to gate its overhead.
fn service_of(data: &BenchData, shards: usize, telemetry: bool) -> Service {
    let pois: Vec<(Poi, AggregateSeries)> = data
        .snapshot
        .iter()
        .map(|(id, pos, series)| (Poi { id: *id, pos: *pos }, series.clone()))
        .collect();
    Service::start(
        ServiceConfig {
            shards,
            workers: 1,
            max_batch: 32,
            max_delay: Duration::from_micros(100),
            telemetry: TelemetryConfig {
                enabled: telemetry,
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
        data.dataset.grid.clone(),
        data.bounds(),
        pois,
        Obs::disabled(),
    )
}

fn main() {
    let mut h = Harness::new("service");
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let stream = powerlaw_queries(
        &data.dataset,
        &ClientConfig {
            queries: BURST,
            ..ClientConfig::default()
        },
    );

    // Throughput at saturating load, round-robin across shard counts. The
    // services run with the production default: telemetry on.
    let services: Vec<(usize, Service)> =
        [1usize, 2, 4, 8].iter().map(|&s| (s, service_of(&data, s, true))).collect();
    {
        let mut g = h.interleaved_group("service");
        g.sample_size(15);
        for (shards, service) in &services {
            let stream = &stream;
            g.bench(format!("qps/shards{shards}"), move || {
                let tickets: Vec<_> = stream.iter().map(|q| service.submit(*q)).collect();
                for t in tickets {
                    black_box(t.wait());
                }
            });
        }
        g.finish();
    }

    // Telemetry overhead: the same closed burst through two otherwise
    // identical 4-shard services, windows + tail sampler on vs off.
    // Interleaved so `bench_diff --within --assert-le
    // service_obs/qps/telemetry_on service_obs/qps/telemetry_off`
    // gates the cost of the always-on instrumentation.
    {
        let on = service_of(&data, 4, true);
        let off = service_of(&data, 4, false);
        let mut g = h.interleaved_group("service_obs");
        g.sample_size(15);
        for (label, service) in [("telemetry_off", &off), ("telemetry_on", &on)] {
            let stream = &stream;
            g.bench(format!("qps/{label}"), move || {
                let tickets: Vec<_> = stream.iter().map(|q| service.submit(*q)).collect();
                for t in tickets {
                    black_box(t.wait());
                }
            });
        }
        g.finish();
    }

    // Tail latency vs offered load on the widest service. One calibration
    // run per load level records the client-side p95 and achieved qps as
    // counters; the timed iterations then repeat the same open-loop run.
    let wide = &services.last().expect("services non-empty").1;
    let mut g = h.group("service_p95");
    g.sample_size(10);
    for rate in [2_000.0f64, 8_000.0, 32_000.0] {
        let report = run_open_loop(wide, &stream, rate);
        g.bench(format!("p95_vs_load/rate{}", rate as u64), |b| {
            b.counters(vec![
                ("p95_us".to_string(), report.p95_us),
                ("qps".to_string(), report.qps as u64),
                // How many slow-query traces the tail sampler has retained
                // so far — evidence the always-on capture really fires
                // under load, alongside the latency curve it explains.
                ("tail_traces_kept".to_string(), wide.telemetry().tail_kept_ever()),
            ]);
            b.iter(|| black_box(run_open_loop(wide, &stream, rate).p95_us))
        });
    }
    g.finish();

    h.finish().expect("write BENCH_service.json");
}
