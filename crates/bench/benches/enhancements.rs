//! Micro-benchmarks for the Section 7 enhancements (Figures 13–16) and
//! the cost model / power-law machinery (Table 2, Figures 6–7).

use knnta_bench::{aggregates_over, load, BenchConfig};
use knnta_core::{BatchOptions, BatchOrder, Grouping, KnntaQuery};
use knnta_util::bench::Harness;
use std::hint::black_box;

fn bench_config() -> BenchConfig {
    BenchConfig {
        scale: 0.01,
        queries: 16,
        ..Default::default()
    }
}

/// Figures 13–14: minimum weight adjustment, pruning vs enumerating.
fn mwa(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let index = data.index(Grouping::TarIntegral);
    let mut group = h.group("mwa");
    group.sample_size(10);
    for k in [10usize, 100] {
        let queries = data.queries(4, k, 0.3, config.seed);
        group.bench(format!("pruning/{k}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.mwa_pruning(q));
                }
            })
        });
        group.bench(format!("enumerating/{k}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.mwa_enumerating(q));
                }
            })
        });
    }
    group.finish();
}

/// Figures 15–16: collective vs individual batch processing. The
/// `collective_hilbert` series is the full scheme (Hilbert ordering +
/// shared aggregate memoisation); `collective_naive` disables both
/// (input order, no cache) to isolate their contribution.
fn collective(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let index = data.index(Grouping::TarIntegral);
    let mut group = h.group("batch");
    group.sample_size(10);
    for count in [100usize, 1000] {
        let queries: Vec<KnntaQuery> = data
            .workload(count, config.seed)
            .with_interval_types(10)
            .queries
            .iter()
            .map(|&(p, iv)| KnntaQuery::new(p, iv).with_k(10).with_alpha0(0.3))
            .collect();
        group.bench(format!("collective_hilbert/{count}"), |b| {
            b.iter(|| black_box(index.query_batch_collective(&queries)))
        });
        let naive = BatchOptions {
            order: BatchOrder::Input,
            agg_cache: false,
            ..BatchOptions::default()
        };
        group.bench(format!("collective_naive/{count}"), |b| {
            b.iter(|| black_box(index.query_batch_collective_with(&queries, &naive)))
        });
        group.bench(format!("individual/{count}"), |b| {
            b.iter(|| black_box(index.query_batch_individual(&queries)))
        });
    }
    group.finish();
}

/// Table 2 machinery: CSN power-law fitting.
fn powerlaw_fit(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let totals = data.dataset.totals();
    h.bench_function("powerlaw_fit", |b| {
        b.iter(|| black_box(lbsn::fit_power_law(black_box(&totals), 50)))
    });
}

/// Figures 6–7 machinery: the cost model estimate.
fn cost_model(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let baseline = data.baseline();
    let tc = data.dataset.grid.tc();
    let interval = tempora::TimeInterval::new(tc - 64 * tempora::Timestamp::DAY, tc);
    let aggs = aggregates_over(&baseline, interval);
    h.bench_function("cost_model_estimate", |b| {
        b.iter(|| {
            let model = costmodel::CostModel::from_aggregates(
                black_box(&aggs),
                0.3,
                10,
                costmodel::effective_fanout(36),
            )
            .expect("model");
            black_box(model.estimate())
        })
    });
}

fn main() {
    let mut h = Harness::new("enhancements");
    mwa(&mut h);
    collective(&mut h);
    powerlaw_fit(&mut h);
    cost_model(&mut h);
    h.finish().expect("write BENCH_enhancements.json");
}
