//! Micro-benchmarks for kNNTA query processing: one benchmark group per
//! figure family (8–12), measuring wall-clock query latency per grouping
//! strategy (the CPU-time axis of the paper's plots).

use knnta_bench::{load, BenchConfig};
use knnta_core::{Grouping, IndexConfig};
use knnta_util::bench::Harness;
use std::hint::black_box;

fn bench_config() -> BenchConfig {
    BenchConfig {
        scale: 0.01,
        queries: 64,
        ..Default::default()
    }
}

/// Figures 8–9: query latency per grouping strategy and k.
fn grouping_and_k(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gw(), &config);
    let baseline = data.baseline();
    let mut group = h.group("query_latency");
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = data.index(grouping);
        for k in [1usize, 10, 100] {
            let queries = data.queries(config.queries, k, 0.3, config.seed);
            group.bench(format!("{grouping}/{k}"), |b| {
                b.iter(|| {
                    for q in &queries {
                        black_box(index.query(q));
                    }
                })
            });
        }
    }
    for k in [1usize, 10, 100] {
        let queries = data.queries(config.queries, k, 0.3, config.seed);
        group.bench(format!("baseline-scan/{k}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(baseline.query(q));
                }
            })
        });
    }
    group.finish();
}

/// Figure 10: latency against the weight α0 (TAR-tree only; the repro
/// binary covers the full comparison).
fn alpha_sweep(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let index = data.index(Grouping::TarIntegral);
    let mut group = h.group("alpha0");
    for alpha0 in [0.1, 0.5, 0.9] {
        let queries = data.queries(config.queries, 10, alpha0, config.seed);
        group.bench(format!("{alpha0}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.query(q));
                }
            })
        });
    }
    group.finish();
}

/// Figure 12: latency against the node size.
fn node_size_sweep(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let mut group = h.group("node_size");
    for node_size in [512usize, 1024, 4096] {
        let index = data.index_with(IndexConfig {
            grouping: Grouping::TarIntegral,
            node_size,
            forced_reinsert: true,
        });
        let queries = data.queries(config.queries, 10, 0.3, config.seed);
        group.bench(format!("{node_size}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.query(q));
                }
            })
        });
    }
    group.finish();
}

/// Packed immutable serving tier (DESIGN.md §12): the same workload as
/// `query_latency`, answered from the Hilbert-packed single-buffer image.
/// The `KNNTA_BENCH_DIFF` lane of `scripts/verify.sh` gates
/// `packed/TAR-tree/{k}` against `query_latency/TAR-tree/{k}` on median
/// *and* p95 via `bench_diff --within --metric both`: the packed tier has
/// to actually beat the pointer-based tree, or it has no reason to exist.
fn packed(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gw(), &config);
    let index = data.index(Grouping::TarIntegral);
    let packed = index.pack();
    let mut group = h.group("packed");
    for k in [1usize, 10, 100] {
        let queries = data.queries(config.queries, k, 0.3, config.seed);
        group.bench(format!("TAR-tree/{k}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.query_on(q, knnta_core::StorageBackend::Packed(&packed)));
                }
            })
        });
    }
    group.finish();
}

/// Cost-model planner (DESIGN.md §14): the planned execution against each
/// fixed configuration it chooses among, on the `query_latency` workload.
/// The `KNNTA_BENCH_DIFF` lane of `scripts/verify.sh` gates
/// `planner/planned/{k}` against every `planner/{cfg}/{k}` at p95 with 15%
/// slack: being within 1.15× of *every* fixed configuration implies being
/// within 1.15× of the best one, so a planner that picks a bad
/// configuration — or spends too long deciding — fails the build. The
/// planned numbers include the full planning cost: stats refresh, cost
/// estimation, and the calibration feedback after every query.
fn planner(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gw(), &config);
    let index = data.index(Grouping::TarIntegral);
    let packed = index.pack();
    let paged = index.materialize_paged_nodes(
        index.config_node_size(),
        pagestore::BufferPoolConfig::new(10, pagestore::PolicyKind::Lru),
    );
    const KS: [usize; 3] = [1, 10, 100];
    let queries_by_k: Vec<_> = KS
        .iter()
        .map(|&k| data.queries(config.queries, k, 0.3, config.seed))
        .collect();
    let mut execs: Vec<_> = KS
        .iter()
        .map(|_| {
            knnta_core::Executor::new(&index)
                .with_packed(&packed)
                .with_paged(&paged)
        })
        .collect();
    // Interleaved (round-robin) sampling: planned and the fixed configs
    // share every round's machine state, so the gated p95 *ratios* stay
    // stable against bursty container noise.
    let (index, packed, paged) = (&index, &packed, &paged);
    let mut group = h.interleaved_group("planner");
    for ((&k, queries), exec) in KS.iter().zip(&queries_by_k).zip(execs.iter_mut()) {
        // One plan outside the timed region: the stats extraction and
        // power-law fit are per-content-epoch costs, not per-query ones,
        // and a single cold sample would otherwise dominate the p95 the
        // gate reads.
        exec.plan(&queries[0]);
        group.bench(format!("paged_seq/{k}"), move || {
            for q in queries {
                black_box(index.query_on(q, knnta_core::StorageBackend::Paged(paged)));
            }
        });
        group.bench(format!("mem_seq/{k}"), move || {
            for q in queries {
                black_box(index.query(q));
            }
        });
        group.bench(format!("packed_seq/{k}"), move || {
            for q in queries {
                black_box(index.query_on(q, knnta_core::StorageBackend::Packed(packed)));
            }
        });
        group.bench(format!("planned/{k}"), move || {
            for q in queries {
                black_box(exec.query(q));
            }
        });
    }
    group.finish();
}

/// Intra-query parallelism (ROADMAP: work-stealing frontier): sequential
/// `query` against `query_parallel` at 1–8 workers, on the traversal shape
/// that favours it — large k and a wide interval, so the frontier is deep
/// enough to shard.
fn parallel_single(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gw(), &config);
    let index = data.index(Grouping::TarIntegral);
    // Fewer, heavier queries: k=200 over the full workload interval mix.
    let queries = data.queries(16, 200, 0.3, config.seed);
    let mut group = h.group("parallel_single");
    group.bench("sequential", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.query(q));
            }
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench(format!("threads/{threads}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.query_parallel(q, threads));
                }
            })
        });
    }
    group.finish();
}

/// Observability overhead guard: the same query mix on three indexes —
/// untouched (obs never set), obs explicitly disabled, and obs fully
/// enabled. The `KNNTA_OBS_CHECK` verify lane asserts
/// `median(disabled) <= median(baseline) * 1.05` via `bench_diff --within`,
/// pinning the disabled-mode cost to one branch per instrumentation site.
fn obs_overhead(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let queries = data.queries(config.queries, 10, 0.3, config.seed);
    let mut group = h.group("obs_overhead");
    let baseline = data.index(Grouping::TarIntegral);
    group.bench("baseline", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(baseline.query(q));
            }
        })
    });
    let mut disabled = data.index(Grouping::TarIntegral);
    disabled.set_obs(knnta_core::Obs::disabled());
    group.bench("disabled", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(disabled.query(q));
            }
        })
    });
    let mut enabled = data.index(Grouping::TarIntegral);
    enabled.set_obs(knnta_core::Obs::enabled());
    group.bench("enabled", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(enabled.query(q));
            }
        });
        b.counters(enabled.obs().counter_deltas());
    });
    group.finish();
}

/// Check-in digestion throughput (Section 4.2 maintenance).
fn ingest(h: &mut Harness) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let mut group = h.group("ingest_epoch");
    group.sample_size(20);
    let updates: Vec<(tempora::PoiId, u64)> = data
        .snapshot
        .iter()
        .step_by(7)
        .map(|(id, _, _)| (*id, 3u64))
        .collect();
    group.bench("batch", |b| {
        b.iter_batched(
            || data.index(Grouping::TarIntegral),
            |mut index| {
                index.ingest_epoch(black_box(0), black_box(&updates));
                index
            },
        )
    });
    group.finish();
}

fn main() {
    let mut h = Harness::new("queries");
    grouping_and_k(&mut h);
    packed(&mut h);
    planner(&mut h);
    alpha_sweep(&mut h);
    node_size_sweep(&mut h);
    parallel_single(&mut h);
    obs_overhead(&mut h);
    ingest(&mut h);
    h.finish().expect("write BENCH_queries.json");
}
