//! Criterion micro-benchmarks for kNNTA query processing: one benchmark
//! group per figure family (8–12), measuring wall-clock query latency per
//! grouping strategy (the CPU-time axis of the paper's plots).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knnta_bench::{load, BenchConfig};
use knnta_core::{Grouping, IndexConfig};
use std::hint::black_box;

fn bench_config() -> BenchConfig {
    BenchConfig {
        scale: 0.01,
        queries: 64,
        ..Default::default()
    }
}

/// Figures 8–9: query latency per grouping strategy and k.
fn grouping_and_k(c: &mut Criterion) {
    let config = bench_config();
    let data = load(&lbsn::gw(), &config);
    let baseline = data.baseline();
    let mut group = c.benchmark_group("query_latency");
    for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
        let index = data.index(grouping);
        for k in [1usize, 10, 100] {
            let queries = data.queries(config.queries, k, 0.3, config.seed);
            group.bench_with_input(
                BenchmarkId::new(format!("{grouping}"), k),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        for q in queries {
                            black_box(index.query(q));
                        }
                    })
                },
            );
        }
    }
    for k in [1usize, 10, 100] {
        let queries = data.queries(config.queries, k, 0.3, config.seed);
        group.bench_with_input(BenchmarkId::new("baseline-scan", k), &queries, |b, queries| {
            b.iter(|| {
                for q in queries {
                    black_box(baseline.query(q));
                }
            })
        });
    }
    group.finish();
}

/// Figure 10: latency against the weight α0 (TAR-tree only; the repro
/// binary covers the full comparison).
fn alpha_sweep(c: &mut Criterion) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let index = data.index(Grouping::TarIntegral);
    let mut group = c.benchmark_group("alpha0");
    for alpha0 in [0.1, 0.5, 0.9] {
        let queries = data.queries(config.queries, 10, alpha0, config.seed);
        group.bench_with_input(
            BenchmarkId::from_parameter(alpha0),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for q in queries {
                        black_box(index.query(q));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Figure 12: latency against the node size.
fn node_size_sweep(c: &mut Criterion) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let mut group = c.benchmark_group("node_size");
    for node_size in [512usize, 1024, 4096] {
        let index = data.index_with(IndexConfig {
            grouping: Grouping::TarIntegral,
            node_size,
            forced_reinsert: true,
        });
        let queries = data.queries(config.queries, 10, 0.3, config.seed);
        group.bench_with_input(
            BenchmarkId::from_parameter(node_size),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for q in queries {
                        black_box(index.query(q));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Check-in digestion throughput (Section 4.2 maintenance).
fn ingest(c: &mut Criterion) {
    let config = bench_config();
    let data = load(&lbsn::gs(), &config);
    let mut group = c.benchmark_group("ingest_epoch");
    group.sample_size(20);
    let updates: Vec<(tempora::PoiId, u64)> = data
        .snapshot
        .iter()
        .step_by(7)
        .map(|(id, _, _)| (*id, 3u64))
        .collect();
    group.bench_function("batch", |b| {
        b.iter_batched(
            || data.index(Grouping::TarIntegral),
            |mut index| {
                index.ingest_epoch(black_box(0), black_box(&updates));
                index
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, grouping_and_k, alpha_sweep, node_size_sweep, ingest);
criterion_main!(benches);
