//! Randomised oracle tests: the MVBT must agree with a naive multiversion
//! map on every operation at every version, under arbitrary interleavings of
//! inserts, upserts and deletes, for several page sizes.

use knnta_util::prop::{check, Gen};
use mvbt::{Mvbt, MvbtTia};
use pagestore::{AccessStats, BufferPool, Disk};
use std::collections::BTreeMap;
use std::sync::Arc;
use tempora::{AggregateSeries, EpochGrid, TimeInterval};

/// A naive fully-persistent map: the complete operation log, replayed per
/// query.
#[derive(Default)]
struct Oracle {
    /// (key, start, end, value)
    records: Vec<(i64, u64, u64, u128)>,
}

impl Oracle {
    fn insert(&mut self, key: i64, value: u128, v: u64) {
        self.delete(key, v);
        self.records.push((key, v, u64::MAX, value));
    }

    fn delete(&mut self, key: i64, v: u64) -> bool {
        for r in self.records.iter_mut() {
            if r.0 == key && r.1 <= v && v < r.2 && r.3 != u128::MAX {
                if r.1 == v {
                    r.2 = r.1; // empty lifetime: never visible
                } else {
                    r.2 = v;
                }
                return true;
            }
        }
        false
    }

    fn get(&self, key: i64, v: u64) -> Option<u128> {
        self.records
            .iter()
            .find(|r| r.0 == key && r.1 <= v && v < r.2)
            .map(|r| r.3)
    }

    fn range(&self, lo: i64, hi: i64, v: u64) -> Vec<(i64, u128)> {
        let mut out: Vec<(i64, u128)> = self
            .records
            .iter()
            .filter(|r| lo <= r.0 && r.0 <= hi && r.1 <= v && v < r.2)
            .map(|r| (r.0, r.3))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

#[derive(Debug, Clone)]
enum MvOp {
    Insert(i64, u64),
    Delete(i64),
    /// Advance the version clock before the next operation.
    Tick,
}

fn gen_ops(g: &mut Gen, max_key: i64, n: usize) -> Vec<MvOp> {
    g.vec(1, n, |g| match g.weighted(&[3, 1, 1]) {
        0 => MvOp::Insert(g.i64_in(0..max_key), g.u64_in(0..1000)),
        1 => MvOp::Delete(g.i64_in(0..max_key)),
        _ => MvOp::Tick,
    })
}

fn run_against_oracle(ops: &[MvOp], page_size: usize) {
    let disk = Arc::new(Disk::new(page_size, AccessStats::new()));
    let pool = Arc::new(BufferPool::new(disk, 10));
    let mut tree = Mvbt::new(pool);
    let mut oracle = Oracle::default();
    let mut v = 1u64;
    let mut checkpoints = vec![0u64];
    for op in ops {
        match *op {
            MvOp::Insert(k, val) => {
                tree.insert(k, val as u128, v);
                oracle.insert(k, val as u128, v);
            }
            MvOp::Delete(k) => {
                let a = tree.delete(k, v);
                let b = oracle.delete(k, v);
                assert_eq!(a, b, "delete({k}) at v{v}");
            }
            MvOp::Tick => {
                checkpoints.push(v);
                v += 1;
            }
        }
    }
    checkpoints.push(v);
    // Validate every checkpoint version: structural invariants, full range,
    // point lookups.
    for &cv in &checkpoints {
        tree.check_invariants(cv);
        assert_eq!(
            tree.range(i64::MIN, i64::MAX, cv),
            oracle.range(i64::MIN, i64::MAX, cv),
            "full range at v{cv}"
        );
        for k in 0..8 {
            assert_eq!(tree.get(k, cv), oracle.get(k, cv), "get({k}) at v{cv}");
        }
        assert_eq!(tree.range(2, 5, cv), oracle.range(2, 5, cv), "window at v{cv}");
    }
}

/// Tiny pages (deep trees, frequent splits/merges) against the oracle.
#[test]
fn mvbt_matches_oracle_tiny_pages() {
    check("mvbt_matches_oracle_tiny_pages", 64, |g| {
        let ops = gen_ops(g, 40, 300);
        run_against_oracle(&ops, 256);
    });
}

/// Paper-sized pages against the oracle.
#[test]
fn mvbt_matches_oracle_1k_pages() {
    check("mvbt_matches_oracle_1k_pages", 64, |g| {
        let ops = gen_ops(g, 200, 400);
        run_against_oracle(&ops, 1024);
    });
}

/// The TIA's interval aggregate always equals the in-memory series
/// oracle, including after raise_to updates.
#[test]
fn tia_matches_series_oracle() {
    check("tia_matches_series_oracle", 64, |g| {
        let inserts = g.vec(1, 120, |g| (g.u32_in(0..100), g.u64_in(1..50)));
        let raises = g.vec(0, 60, |g| (g.u32_in(0..100), g.u64_in(1..80)));
        let windows = g.vec(1, 12, |g| (g.i64_in(0..100), g.i64_in(0..100)));
        let grid = EpochGrid::fixed_days(1, 100);
        let disk = Arc::new(Disk::new(512, AccessStats::new()));
        let mut tia = MvbtTia::new(disk, 10);
        let mut oracle = AggregateSeries::new();
        // insert_epoch has last-write-wins (upsert) semantics per epoch; the
        // series oracle mirrors that with set().
        let mut seen = BTreeMap::new();
        for &(e, val) in &inserts {
            seen.insert(e, val);
        }
        for (&e, &val) in &seen {
            tia.insert_epoch(&grid, e as usize, val);
            oracle.set(e, val);
        }
        for &(e, val) in &raises {
            tia.raise_to(&grid, e as usize, val);
            oracle.raise_to(e, val);
        }
        assert_eq!(tia.to_series(&grid), oracle.clone());
        for &(a, b) in &windows {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let iq = TimeInterval::days(lo, hi);
            assert_eq!(tia.aggregate_over(iq), oracle.aggregate_over(&grid, iq));
        }
    });
}

/// Deterministic heavy mixed workload across page sizes (not proptest so it
/// always runs the same way in CI).
#[test]
fn deterministic_mixed_workload_many_page_sizes() {
    for page_size in [256, 512, 1024, 2048] {
        let disk = Arc::new(Disk::new(page_size, AccessStats::new()));
        let pool = Arc::new(BufferPool::new(disk, 10));
        let mut tree = Mvbt::new(pool);
        let mut model: BTreeMap<i64, u128> = BTreeMap::new();
        let mut v = 0u64;
        let mut x = 1u64;
        for step in 0..3000u64 {
            // xorshift for a deterministic pseudo-random stream
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 500) as i64;
            v = step + 1;
            if x % 10 < 7 {
                tree.insert(key, x as u128, v);
                model.insert(key, x as u128);
            } else {
                let a = tree.delete(key, v);
                let b = model.remove(&key).is_some();
                assert_eq!(a, b, "delete {key} step {step} page {page_size}");
            }
        }
        let got = tree.range(i64::MIN, i64::MAX, v);
        let want: Vec<(i64, u128)> = model.into_iter().collect();
        assert_eq!(got, want, "final state page_size={page_size}");
    }
}

/// Regression: a key inserted through the leftmost-fallback route used to
/// become unreachable when a later split recomputed the chunk's router from
/// its minimum live key, discarding the dead parent entry's smaller
/// coverage bound. Router absorption (versioned router lowering) fixes it.
/// This is the minimised 39-op sequence that exposed the bug.
#[test]
fn regression_leftmost_fallback_key_survives_splits() {
    let disk = Arc::new(Disk::new(256, AccessStats::new()));
    let pool = Arc::new(BufferPool::new(disk, 10));
    let mut t = Mvbt::new(pool);
    // (key, value, kind): kind 0 = insert, 1 = delete, 2 = tick.
    let ops: [(i64, u64, u8); 39] = [
        (33, 958, 0), (1, 82, 0), (25, 873, 0), (31, 396, 0), (2, 109, 0),
        (7, 248, 0), (36, 614, 0), (37, 888, 0), (0, 0, 2), (2, 0, 1),
        (39, 290, 0), (27, 491, 0), (26, 29, 0), (20, 340, 0), (14, 135, 0),
        (4, 332, 0), (34, 87, 0), (16, 747, 0), (6, 169, 0), (0, 0, 2),
        (9, 234, 0), (36, 506, 0), (0, 14, 0), (2, 877, 0), (14, 0, 1),
        (29, 206, 0), (24, 136, 0), (0, 0, 2), (18, 382, 0), (32, 813, 0),
        (10, 838, 0), (4, 647, 0), (19, 156, 0), (38, 62, 0), (7, 980, 0),
        (24, 58, 0), (14, 852, 0), (31, 202, 0), (14, 145, 0),
    ];
    let mut v = 1u64;
    for (k, val, kind) in ops {
        match kind {
            0 => t.insert(k, val as u128, v),
            1 => {
                t.delete(k, v);
            }
            _ => v += 1,
        }
        // Live keys must stay unique and every one reachable via get().
        let range = t.range(i64::MIN, i64::MAX, v);
        for w in range.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate live key at v{v}");
        }
        for &(key, value) in &range {
            assert_eq!(t.get(key, v), Some(value), "key {key} reachable at v{v}");
        }
    }
    assert_eq!(t.get(14, v), Some(145));
}

/// Broad randomized reachability sweep (deterministic seeds): after every
/// operation, every live record must be reachable by point lookup.
#[test]
fn randomized_reachability_sweep() {
    for seed in 0..40u64 {
        let disk = Arc::new(Disk::new(256, AccessStats::new()));
        let pool = Arc::new(BufferPool::new(disk, 10));
        let mut t = Mvbt::new(pool);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut v = 1u64;
        for step in 0..300 {
            match rnd() % 5 {
                0..=2 => t.insert((rnd() % 48) as i64, rnd() as u128, v),
                3 => {
                    t.delete((rnd() % 48) as i64, v);
                }
                _ => v += 1,
            }
            if step % 25 == 0 {
                for (key, value) in t.range(i64::MIN, i64::MAX, v) {
                    assert_eq!(t.get(key, v), Some(value), "seed {seed} step {step}");
                }
            }
        }
    }
}
