//! A disk-based **multi-version B-tree** (MVBT) and the TIA built on it.
//!
//! The paper implements each entry's *temporal index on the aggregate* (TIA)
//! with "the disk-based multi-version B-tree \[Becker et al., VLDBJ 1996\] …
//! as it has been proven to be asymptotically optimal" (Section 4.1). This
//! crate provides that substrate from scratch:
//!
//! * [`Mvbt`] — a partially persistent B+-tree over a
//!   [`pagestore::BufferPool`]: every entry carries a version interval
//!   `[start, end)`; inserts and deletes happen at the current version and
//!   queries can target *any* version. Structural changes follow the MVBT
//!   scheme: version splits (copy the live entries into a fresh node), key
//!   splits on strong overflow, and merges with a sibling on weak underflow.
//! * [`MvbtTia`] — the TIA: epoch records `⟨ts, te, agg⟩` keyed by epoch
//!   start, with the interval-containment aggregate query of Section 4.3 and
//!   the `raise_to` maintenance operation internal TAR-tree entries need.
//!
//! All node reads and writes go through the buffer pool, so the paper's
//! "10 buffer slots per TIA" configuration and its I/O accounting are real.

#![warn(missing_docs)]

mod node;
mod tia;
mod tree;

pub use node::{InternalEntry, LeafEntry, Node, NodeBody, VERSION_INF};
pub use tia::MvbtTia;
pub use tree::{Mvbt, MvbtParams};
