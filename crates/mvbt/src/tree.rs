//! The multi-version B-tree.

use crate::node::{
    InternalEntry, LeafEntry, Node, NodeBody, HEADER_BYTES, INTERNAL_ENTRY_BYTES, LEAF_ENTRY_BYTES,
    VERSION_INF,
};
use pagestore::{BufferPool, PageId};
use std::sync::Arc;

/// Structural parameters of an [`Mvbt`].
///
/// Following Becker et al. (VLDBJ 1996): `B` is the block capacity, `d` the
/// weak-version-condition minimum (each non-root node must keep at least `d`
/// entries alive at every version of its lifetime), and after a version
/// split the number of live entries in a fresh node should land in
/// `[strong_low, strong_high]` so the node can absorb Θ(B) further updates
/// before the next reorganisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvbtParams {
    /// Max entries (alive + dead) per leaf node.
    pub leaf_capacity: usize,
    /// Max entries (alive + dead) per internal node.
    pub internal_capacity: usize,
    /// Weak condition minimum `d` for leaves.
    pub leaf_min_live: usize,
    /// Weak condition minimum `d` for internal nodes.
    pub internal_min_live: usize,
    /// Strong lower threshold for leaves (merge below this).
    pub leaf_strong_low: usize,
    /// Strong lower threshold for internal nodes.
    pub internal_strong_low: usize,
    /// Strong upper threshold for leaves (key split above this).
    pub leaf_strong_high: usize,
    /// Strong upper threshold for internal nodes.
    pub internal_strong_high: usize,
}

impl MvbtParams {
    /// Derives parameters from the page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the page is too small to hold at least 4 entries per node.
    pub fn for_page_size(page_size: usize) -> Self {
        let leaf_capacity = page_size.saturating_sub(HEADER_BYTES) / LEAF_ENTRY_BYTES;
        let internal_capacity = page_size.saturating_sub(HEADER_BYTES) / INTERNAL_ENTRY_BYTES;
        assert!(
            leaf_capacity >= 4 && internal_capacity >= 4,
            "page size {page_size} too small for an MVBT node (need >= 4 entries)"
        );
        let thresholds = |cap: usize| {
            let d = (cap / 5).max(1);
            let low = (3 * cap / 10).max(d + 1);
            let high = (4 * cap / 5).max(2 * low).min(cap);
            (d, low, high)
        };
        let (ld, ll, lh) = thresholds(leaf_capacity);
        let (id, il, ih) = thresholds(internal_capacity);
        MvbtParams {
            leaf_capacity,
            internal_capacity,
            leaf_min_live: ld,
            internal_min_live: id,
            leaf_strong_low: ll,
            internal_strong_low: il,
            leaf_strong_high: lh,
            internal_strong_high: ih,
        }
    }

    fn capacity(&self, leaf: bool) -> usize {
        if leaf {
            self.leaf_capacity
        } else {
            self.internal_capacity
        }
    }

    fn min_live(&self, leaf: bool) -> usize {
        if leaf {
            self.leaf_min_live
        } else {
            self.internal_min_live
        }
    }

    fn strong_low(&self, leaf: bool) -> usize {
        if leaf {
            self.leaf_strong_low
        } else {
            self.internal_strong_low
        }
    }

    fn strong_high(&self, leaf: bool) -> usize {
        if leaf {
            self.leaf_strong_high
        } else {
            self.internal_strong_high
        }
    }
}

/// What a recursive update did to the subtree root it was applied to.
enum Outcome {
    /// Node updated in place; all conditions hold.
    Intact,
    /// Node is dead at the current version; these `(router, page)` nodes
    /// replace it (0, 1 or 2 of them).
    Replaced(Vec<(i64, PageId)>),
    /// Node updated in place but violates the weak version condition; the
    /// parent should merge it with a sibling.
    Underflow,
}

/// A partially persistent B+-tree (multi-version B-tree, MVBT).
///
/// * Updates ([`Mvbt::insert`], [`Mvbt::delete`]) happen at a version `v`
///   that must be `>=` every previous update version.
/// * Queries ([`Mvbt::get`], [`Mvbt::range`]) can target **any** version.
///
/// ```
/// use mvbt::Mvbt;
/// use pagestore::{AccessStats, BufferPool, Disk};
/// use std::sync::Arc;
///
/// let disk = Arc::new(Disk::new(1024, AccessStats::new()));
/// let mut tree = Mvbt::new(Arc::new(BufferPool::new(disk, 10)));
/// tree.insert(7, 70, 1);   // version 1
/// tree.delete(7, 2);       // version 2
/// tree.insert(7, 99, 3);   // version 3
/// assert_eq!(tree.get(7, 1), Some(70)); // the past stays queryable
/// assert_eq!(tree.get(7, 2), None);
/// assert_eq!(tree.get(7, 3), Some(99));
/// ```
///
/// Every node visit is a buffered page access through the
/// [`BufferPool`], so I/O statistics reflect real page traffic.
///
/// Leaf inserts have *upsert* semantics: inserting a key that is alive kills
/// the old record at `v` and makes the new one visible from `v` on — exactly
/// the "logical update" the TIA's max-maintenance needs.
#[derive(Debug)]
pub struct Mvbt {
    pool: Arc<BufferPool>,
    params: MvbtParams,
    /// The root* structure: `(start_version, root page)`, push-only; the root
    /// for version `v` is the last entry with `start_version <= v`.
    roots: Vec<(u64, PageId)>,
    current: u64,
}

impl Mvbt {
    /// Creates an empty tree whose nodes live in pages of `pool`'s disk,
    /// with parameters derived from the page size.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        let params = MvbtParams::for_page_size(pool.disk().page_size());
        Self::with_params(pool, params)
    }

    /// Creates an empty tree with explicit parameters (for tests that force
    /// tiny nodes).
    pub fn with_params(pool: Arc<BufferPool>, params: MvbtParams) -> Self {
        let root = pool.allocate();
        let node = Node::new_leaf(0);
        pool.write(root, node.encode());
        Mvbt {
            pool,
            params,
            roots: vec![(0, root)],
            current: 0,
        }
    }

    /// The structural parameters in use.
    pub fn params(&self) -> &MvbtParams {
        &self.params
    }

    /// The latest update version seen.
    pub fn current_version(&self) -> u64 {
        self.current
    }

    /// Number of root eras (grows when the root is replaced).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    fn read_node(&self, page: PageId) -> Node {
        Node::decode(self.pool.read(page))
    }

    fn write_node(&self, page: PageId, node: &Node) {
        self.pool.write(page, node.encode());
    }

    /// The root page for `version` (diagnostics / structural tests).
    pub fn root_for_debug(&self, version: u64) -> PageId {
        self.root_for(version)
    }

    fn root_for(&self, version: u64) -> PageId {
        let idx = self.roots.partition_point(|&(s, _)| s <= version);
        // roots[0].0 == 0, so idx >= 1 always.
        self.roots[idx - 1].1
    }

    /// Inserts `key -> value` at version `v` (upsert: kills any live record
    /// with the same key first).
    ///
    /// # Panics
    ///
    /// Panics if `v` is smaller than a previously used update version.
    pub fn insert(&mut self, key: i64, value: u128, v: u64) {
        self.apply(Op::Insert { key, value }, v);
    }

    /// Deletes the live record with `key` at version `v`. Returns whether a
    /// record was found (and killed).
    pub fn delete(&mut self, key: i64, v: u64) -> bool {
        self.apply(Op::Delete { key }, v)
    }

    /// The value of `key` at `version`, if a record was alive then.
    pub fn get(&self, key: i64, version: u64) -> Option<u128> {
        let mut page = self.root_for(version);
        loop {
            let node = self.read_node(page);
            match node.body {
                NodeBody::Leaf(entries) => {
                    return entries
                        .iter()
                        .find(|e| e.key == key && e.alive_at(version))
                        .map(|e| e.value);
                }
                NodeBody::Internal(entries) => {
                    match route(&entries, key, version) {
                        Some(child) => page = child,
                        None => return None,
                    };
                }
            }
        }
    }

    /// All `(key, value)` records alive at `version` with `lo <= key <= hi`,
    /// in ascending key order.
    pub fn range(&self, lo: i64, hi: i64, version: u64) -> Vec<(i64, u128)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        self.range_rec(self.root_for(version), lo, hi, version, &mut out);
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn range_rec(&self, page: PageId, lo: i64, hi: i64, version: u64, out: &mut Vec<(i64, u128)>) {
        let node = self.read_node(page);
        match node.body {
            NodeBody::Leaf(entries) => {
                out.extend(
                    entries
                        .iter()
                        .filter(|e| e.alive_at(version) && lo <= e.key && e.key <= hi)
                        .map(|e| (e.key, e.value)),
                );
            }
            NodeBody::Internal(entries) => {
                let live: Vec<&InternalEntry> =
                    entries.iter().filter(|e| e.alive_at(version)).collect();
                for (i, e) in live.iter().enumerate() {
                    // The leftmost live child covers (-inf, next router); any
                    // other child covers [its router, next router).
                    let cover_lo = if i == 0 { i64::MIN } else { e.router };
                    let cover_hi = live.get(i + 1).map_or(i64::MAX, |n| n.router - 1);
                    if cover_lo <= hi && cover_hi >= lo {
                        self.range_rec(e.child, lo, hi, version, out);
                    }
                }
            }
        }
    }

    /// Number of records alive at `version` (O(n) — test/diagnostic helper).
    pub fn live_len(&self, version: u64) -> usize {
        self.range(i64::MIN, i64::MAX, version).len()
    }

    /// Checks the structural invariants of the tree as visible at `version`;
    /// panics with a description on the first violation. Test helper.
    ///
    /// Checked per reachable node: entry count within capacity; levels
    /// uniform (leaves at equal depth); live keys unique tree-wide and all
    /// reachable by [`Mvbt::get`]; every live key at least its subtree's
    /// router ("router absorption" keeps routers true lower bounds for keys
    /// inserted after the absorbing update).
    pub fn check_invariants(&self, version: u64) {
        let root = self.root_for(version);
        let mut keys: Vec<i64> = Vec::new();
        let mut leaf_depths: Vec<usize> = Vec::new();
        self.check_rec(root, version, 0, &mut keys, &mut leaf_depths);
        keys.sort_unstable();
        for w in keys.windows(2) {
            assert_ne!(w[0], w[1], "duplicate live key {} at v{version}", w[0]);
        }
        for &k in &keys {
            assert!(
                self.get(k, version).is_some(),
                "live key {k} unreachable at v{version}"
            );
        }
        if let (Some(min), Some(max)) = (
            leaf_depths.iter().min().copied(),
            leaf_depths.iter().max().copied(),
        ) {
            assert_eq!(min, max, "leaves at unequal depths at v{version}");
        }
    }

    fn check_rec(
        &self,
        page: PageId,
        version: u64,
        depth: usize,
        keys: &mut Vec<i64>,
        leaf_depths: &mut Vec<usize>,
    ) {
        let node = self.read_node(page);
        match &node.body {
            NodeBody::Leaf(entries) => {
                assert!(
                    entries.len() <= self.params.leaf_capacity,
                    "{page} exceeds leaf capacity"
                );
                leaf_depths.push(depth);
                keys.extend(entries.iter().filter(|e| e.alive_at(version)).map(|e| e.key));
            }
            NodeBody::Internal(entries) => {
                assert!(
                    entries.len() <= self.params.internal_capacity,
                    "{page} exceeds internal capacity"
                );
                for e in entries.iter().filter(|e| e.alive_at(version)) {
                    self.check_rec(e.child, version, depth + 1, keys, leaf_depths);
                }
            }
        }
    }

    fn apply(&mut self, op: Op, v: u64) -> bool {
        assert!(
            v >= self.current,
            "update version {v} precedes current version {}",
            self.current
        );
        self.current = v;
        let root = *self.roots.last().map(|(_, p)| p).expect("roots non-empty");
        let mut found = true;
        let outcome = self.update_rec(root, v, &op, &mut found);
        match outcome {
            Outcome::Intact | Outcome::Underflow => {} // weak condition waived at the root
            Outcome::Replaced(mut list) => match list.len() {
                0 => {
                    // Everything died: fresh empty leaf root.
                    let page = self.pool.allocate();
                    self.write_node(page, &Node::new_leaf(v));
                    self.push_root(v, page);
                }
                1 => self.push_root(v, list[0].1),
                _ => {
                    list.sort_unstable_by_key(|&(r, _)| r);
                    let entries = list
                        .into_iter()
                        .map(|(router, child)| InternalEntry {
                            router,
                            start: v,
                            end: VERSION_INF,
                            child,
                        })
                        .collect();
                    let node = Node {
                        start_version: v,
                        body: NodeBody::Internal(entries),
                    };
                    let page = self.pool.allocate();
                    self.write_node(page, &node);
                    self.push_root(v, page);
                }
            },
        }
        found
    }

    fn push_root(&mut self, v: u64, page: PageId) {
        let last = self.roots.last_mut().expect("roots non-empty");
        if last.0 == v {
            last.1 = page;
        } else {
            self.roots.push((v, page));
        }
    }

    fn update_rec(&mut self, page: PageId, v: u64, op: &Op, found: &mut bool) -> Outcome {
        let mut node = self.read_node(page);
        match &mut node.body {
            NodeBody::Leaf(entries) => {
                match *op {
                    Op::Insert { key, value } => {
                        // Upsert: kill a live record with the same key first.
                        if let Some(i) = entries.iter().position(|e| e.key == key && e.alive_at(v))
                        {
                            kill_leaf_entry(entries, i, v);
                        }
                        let new = LeafEntry {
                            key,
                            start: v,
                            end: VERSION_INF,
                            value,
                        };
                        let pos = entries.partition_point(|e| (e.key, e.start) < (key, v));
                        entries.insert(pos, new);
                    }
                    Op::Delete { key } => {
                        match entries.iter().position(|e| e.key == key && e.alive_at(v)) {
                            Some(i) => kill_leaf_entry(entries, i, v),
                            None => {
                                *found = false;
                                return Outcome::Intact;
                            }
                        }
                    }
                }
                self.finish_node(page, node, v)
            }
            NodeBody::Internal(entries) => {
                let key = match *op {
                    Op::Insert { key, .. } | Op::Delete { key } => key,
                };
                let Some(mut child_idx) = route_index(entries, key, v) else {
                    // No live child at v: only possible on a degenerate
                    // all-dead subtree; deletes are no-ops there.
                    *found = false;
                    return Outcome::Intact;
                };
                let child_page = entries[child_idx].child;
                // Router absorption: an insert below every live router
                // descends into the leftmost child, whose router must be
                // lowered to keep the invariant "all keys in a subtree are
                // >= its router" (otherwise a later split would recompute
                // the chunk router from its keys and strand this key).
                // Lowering a router is itself a versioned update so
                // historical queries keep seeing the old value.
                let mut absorbed = false;
                if matches!(op, Op::Insert { .. }) && key < entries[child_idx].router {
                    if entries[child_idx].start == v {
                        entries[child_idx].router = key;
                    } else {
                        kill_internal_entry(entries, child_idx, v);
                        insert_child_entries(entries, &[(key, child_page)], v);
                    }
                    child_idx = entries
                        .iter()
                        .position(|e| e.alive_at(v) && e.child == child_page)
                        .expect("absorbed entry is live");
                    absorbed = true;
                }
                match self.update_rec(child_page, v, op, found) {
                    Outcome::Intact => {
                        if absorbed {
                            self.finish_node(page, node, v)
                        } else {
                            Outcome::Intact
                        }
                    }
                    Outcome::Replaced(list) => {
                        let single = (list.len() == 1).then(|| list[0].1);
                        let entries = node.body_internal_mut();
                        kill_internal_entry(entries, child_idx, v);
                        insert_child_entries(entries, &list, v);
                        // Strong underflow after a version split: the fresh
                        // node has too few live entries to absorb Θ(B)
                        // deletes, so merge it with a sibling right away
                        // (Becker et al., Section 3.3).
                        if let Some(new_page) = single {
                            let fresh = self.read_node(new_page);
                            if fresh.live_count(v) < self.params.strong_low(fresh.is_leaf()) {
                                let entries = node.body_internal_mut();
                                if let Some(idx) =
                                    entries.iter().position(|e| e.is_live() && e.child == new_page)
                                {
                                    self.reorganize_child(&mut node, idx, v, false);
                                }
                            }
                        }
                        self.finish_node(page, node, v)
                    }
                    Outcome::Underflow => {
                        self.reorganize_child(&mut node, child_idx, v, false);
                        self.finish_node(page, node, v)
                    }
                }
            }
        }
    }

    /// Writes `node` back and reports its structural condition, resolving
    /// overflow locally (version / key split).
    fn finish_node(&mut self, page: PageId, node: Node, v: u64) -> Outcome {
        let leaf = node.is_leaf();
        if node.len() > self.params.capacity(leaf) {
            return Outcome::Replaced(self.split_node(node, v));
        }
        let live = node.live_count(v);
        self.write_node(page, &node);
        if live < self.params.min_live(leaf) {
            Outcome::Underflow
        } else {
            Outcome::Intact
        }
    }

    /// Version/key split of an overflowing node: copies the entries alive at
    /// `v` into one or two fresh nodes. The old node (and its page) stays
    /// behind for historical queries.
    fn split_node(&mut self, node: Node, v: u64) -> Vec<(i64, PageId)> {
        let leaf = node.is_leaf();
        let high = self.params.strong_high(leaf);
        let parts: Vec<Node> = match node.body {
            NodeBody::Leaf(entries) => {
                let mut live: Vec<LeafEntry> =
                    entries.into_iter().filter(|e| e.alive_at(v)).collect();
                live.sort_unstable_by_key(|e| (e.key, e.start));
                chunk_into(live, high)
                    .into_iter()
                    .map(|chunk| Node {
                        start_version: v,
                        body: NodeBody::Leaf(chunk),
                    })
                    .collect()
            }
            NodeBody::Internal(entries) => {
                let mut live: Vec<InternalEntry> =
                    entries.into_iter().filter(|e| e.alive_at(v)).collect();
                live.sort_unstable_by_key(|e| (e.router, e.start));
                chunk_into(live, high)
                    .into_iter()
                    .map(|chunk| Node {
                        start_version: v,
                        body: NodeBody::Internal(chunk),
                    })
                    .collect()
            }
        };
        parts
            .into_iter()
            .filter(|n| !n.is_empty())
            .map(|n| {
                let router = min_router(&n);
                let page = self.pool.allocate();
                self.write_node(page, &n);
                (router, page)
            })
            .collect()
    }

    /// Handles a weak-underflowing child of `parent`: version-split the
    /// child, merge its live entries with a live sibling's, and key-split
    /// the result if it strong-overflows (Becker et al., Section 3.3).
    ///
    /// `force_copy` makes the child shed dead entries even when no sibling
    /// is available.
    fn reorganize_child(&mut self, parent: &mut Node, child_idx: usize, v: u64, force_copy: bool) {
        let entries = parent.body_internal_mut();
        let child_page = entries[child_idx].child;
        let child = self.read_node(child_page);
        let leaf = child.is_leaf();

        // Pick a live sibling adjacent in router order: prefer the next
        // live entry, fall back to the previous one.
        let mut live_idx: Vec<usize> = (0..entries.len())
            .filter(|&i| entries[i].alive_at(v))
            .collect();
        live_idx.sort_by_key(|&i| entries[i].router);
        let pos = live_idx
            .iter()
            .position(|&i| i == child_idx)
            .expect("child entry is live in parent");
        let sibling_idx = live_idx
            .get(pos + 1)
            .or_else(|| pos.checked_sub(1).map(|p| &live_idx[p]))
            .copied();

        let Some(sib_idx) = sibling_idx else {
            // No live sibling (parent has one live child): the weak
            // condition is waived, but an overflowing child must still be
            // compacted.
            if force_copy {
                let list = self.split_node(child, v);
                let entries = parent.body_internal_mut();
                kill_internal_entry(entries, child_idx, v);
                insert_child_entries(entries, &list, v);
            }
            return;
        };

        let sibling_page = entries[sib_idx].child;
        let sibling = self.read_node(sibling_page);
        debug_assert_eq!(sibling.is_leaf(), leaf, "siblings are on one level");

        // Merge the two live sets and re-chunk against the strong bounds.
        let high = self.params.strong_high(leaf);
        let merged: Vec<Node> = if leaf {
            let mut live: Vec<LeafEntry> = collect_live_leaf(&child, v);
            live.extend(collect_live_leaf(&sibling, v));
            live.sort_unstable_by_key(|e| (e.key, e.start));
            chunk_into(live, high)
                .into_iter()
                .map(|chunk| Node {
                    start_version: v,
                    body: NodeBody::Leaf(chunk),
                })
                .collect()
        } else {
            let mut live: Vec<InternalEntry> = collect_live_internal(&child, v);
            live.extend(collect_live_internal(&sibling, v));
            live.sort_unstable_by_key(|e| (e.router, e.start));
            chunk_into(live, high)
                .into_iter()
                .map(|chunk| Node {
                    start_version: v,
                    body: NodeBody::Internal(chunk),
                })
                .collect()
        };

        let mut list: Vec<(i64, PageId)> = merged
            .into_iter()
            .filter(|n| !n.is_empty())
            .map(|n| {
                let router = min_router(&n);
                let page = self.pool.allocate();
                self.write_node(page, &n);
                (router, page)
            })
            .collect();
        if list.is_empty() {
            // Both live sets were empty; keep routing alive with one empty
            // node so inserts always find a path.
            let node = if leaf {
                Node::new_leaf(v)
            } else {
                Node::new_internal(v)
            };
            let page = self.pool.allocate();
            self.write_node(page, &node);
            let router = parent.body_internal_mut()[child_idx].router;
            list.push((router, page));
        }

        let entries = parent.body_internal_mut();
        // Kill the higher index first so the lower one stays valid.
        let (a, b) = if child_idx > sib_idx {
            (child_idx, sib_idx)
        } else {
            (sib_idx, child_idx)
        };
        kill_internal_entry(entries, a, v);
        kill_internal_entry(entries, b, v);
        insert_child_entries(entries, &list, v);
    }
}

impl Node {
    fn body_internal_mut(&mut self) -> &mut Vec<InternalEntry> {
        match &mut self.body {
            NodeBody::Internal(v) => v,
            NodeBody::Leaf(_) => panic!("expected internal node"),
        }
    }
}

enum Op {
    Insert { key: i64, value: u128 },
    Delete { key: i64 },
}

/// Kills leaf entry `i` at version `v`: same-version records vanish without
/// trace, older records get `end = v`.
fn kill_leaf_entry(entries: &mut Vec<LeafEntry>, i: usize, v: u64) {
    if entries[i].start == v {
        entries.remove(i);
    } else {
        entries[i].end = v;
    }
}

/// Kills internal entry `i` at version `v` (same rules as leaf entries).
fn kill_internal_entry(entries: &mut Vec<InternalEntry>, i: usize, v: u64) {
    if entries[i].start == v {
        entries.remove(i);
    } else {
        entries[i].end = v;
    }
}

/// Inserts replacement child entries, keeping router order.
fn insert_child_entries(entries: &mut Vec<InternalEntry>, list: &[(i64, PageId)], v: u64) {
    for &(router, child) in list {
        let e = InternalEntry {
            router,
            start: v,
            end: VERSION_INF,
            child,
        };
        let pos = entries.partition_point(|x| (x.router, x.start) < (router, v));
        entries.insert(pos, e);
    }
}

/// Routing rule shared by searches and updates: among the entries alive at
/// `version`, pick the one with the largest router `<= key`; if `key`
/// precedes every router, the leftmost live entry covers it.
fn route_index(entries: &[InternalEntry], key: i64, version: u64) -> Option<usize> {
    let mut best: Option<usize> = None; // largest router <= key
    let mut leftmost: Option<usize> = None; // smallest router overall
    for (i, e) in entries.iter().enumerate() {
        if !e.alive_at(version) {
            continue;
        }
        if leftmost.is_none_or(|l: usize| e.router < entries[l].router) {
            leftmost = Some(i);
        }
        if e.router <= key && best.is_none_or(|b: usize| e.router > entries[b].router) {
            best = Some(i);
        }
    }
    best.or(leftmost)
}

fn route(entries: &[InternalEntry], key: i64, version: u64) -> Option<PageId> {
    route_index(entries, key, version).map(|i| entries[i].child)
}

fn collect_live_leaf(node: &Node, v: u64) -> Vec<LeafEntry> {
    match &node.body {
        NodeBody::Leaf(entries) => entries.iter().filter(|e| e.alive_at(v)).copied().collect(),
        NodeBody::Internal(_) => panic!("expected leaf"),
    }
}

fn collect_live_internal(node: &Node, v: u64) -> Vec<InternalEntry> {
    match &node.body {
        NodeBody::Internal(entries) => entries.iter().filter(|e| e.alive_at(v)).copied().collect(),
        NodeBody::Leaf(_) => panic!("expected internal node"),
    }
}

/// Splits `items` into one chunk if it fits under `high`, else two balanced
/// halves (a key split).
fn chunk_into<T>(items: Vec<T>, high: usize) -> Vec<Vec<T>> {
    if items.len() <= high {
        vec![items]
    } else {
        let mid = items.len() / 2;
        let mut items = items;
        let tail = items.split_off(mid);
        vec![items, tail]
    }
}

/// The router key for a fresh node: its minimum key / router.
fn min_router(node: &Node) -> i64 {
    match &node.body {
        NodeBody::Leaf(entries) => entries.iter().map(|e| e.key).min().expect("non-empty"),
        NodeBody::Internal(entries) => {
            entries.iter().map(|e| e.router).min().expect("non-empty")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagestore::{AccessStats, Disk};

    fn tree(page_size: usize, slots: usize) -> Mvbt {
        let stats = AccessStats::new();
        let disk = Arc::new(Disk::new(page_size, stats));
        Mvbt::new(Arc::new(BufferPool::new(disk, slots)))
    }

    #[test]
    fn params_match_paper_arithmetic() {
        let p = MvbtParams::for_page_size(1024);
        assert_eq!(p.leaf_capacity, 25);
        assert_eq!(p.internal_capacity, 31);
        assert!(p.leaf_min_live < p.leaf_strong_low);
        assert!(2 * p.leaf_strong_low <= p.leaf_strong_high);
        assert!(p.leaf_strong_high <= p.leaf_capacity);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_page_rejected() {
        let _ = MvbtParams::for_page_size(64);
    }

    #[test]
    fn insert_get_single_version() {
        let mut t = tree(1024, 8);
        for k in 0..100 {
            t.insert(k, (k * 10) as u128, 1);
        }
        for k in 0..100 {
            assert_eq!(t.get(k, 1), Some((k * 10) as u128));
        }
        assert_eq!(t.get(100, 1), None);
        assert_eq!(t.get(0, 0), None, "nothing visible before version 1");
    }

    #[test]
    fn versions_are_persistent() {
        let mut t = tree(1024, 8);
        t.insert(1, 11, 1);
        t.insert(2, 22, 2);
        t.delete(1, 3);
        t.insert(1, 99, 5);
        assert_eq!(t.get(1, 1), Some(11));
        assert_eq!(t.get(2, 1), None);
        assert_eq!(t.get(1, 2), Some(11));
        assert_eq!(t.get(2, 2), Some(22));
        assert_eq!(t.get(1, 3), None);
        assert_eq!(t.get(1, 4), None);
        assert_eq!(t.get(1, 5), Some(99));
        assert_eq!(t.get(2, 5), Some(22));
    }

    #[test]
    fn upsert_replaces_live_value() {
        let mut t = tree(1024, 8);
        t.insert(7, 1, 1);
        t.insert(7, 2, 2);
        t.insert(7, 3, 2); // same-version upsert
        assert_eq!(t.get(7, 1), Some(1));
        assert_eq!(t.get(7, 2), Some(3));
        assert_eq!(t.live_len(2), 1);
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut t = tree(1024, 8);
        t.insert(1, 1, 1);
        assert!(!t.delete(2, 2));
        assert!(t.delete(1, 2));
        assert!(!t.delete(1, 3));
    }

    #[test]
    fn range_query_filters_by_key_and_version() {
        let mut t = tree(1024, 8);
        for k in 0..50 {
            t.insert(k, k as u128, 1);
        }
        for k in 0..50 {
            if k % 2 == 0 {
                t.delete(k, 2);
            }
        }
        let all_v1 = t.range(0, 49, 1);
        assert_eq!(all_v1.len(), 50);
        let odd_v2 = t.range(0, 49, 2);
        assert_eq!(odd_v2.len(), 25);
        assert!(odd_v2.iter().all(|&(k, _)| k % 2 == 1));
        let window = t.range(10, 20, 2);
        assert_eq!(
            window.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![11, 13, 15, 17, 19]
        );
        assert!(t.range(20, 10, 2).is_empty());
    }

    #[test]
    fn grows_past_many_splits() {
        let mut t = tree(256, 16); // tiny pages force deep trees
        let n = 2000i64;
        for k in 0..n {
            // shuffle the keys deterministically
            let key = (k * 7919) % n;
            t.insert(key, key as u128, (k + 1) as u64);
        }
        assert_eq!(t.live_len(n as u64), n as usize);
        for k in (0..n).step_by(97) {
            assert_eq!(t.get(k, n as u64), Some(k as u128));
        }
        assert!(t.root_count() >= 1);
    }

    #[test]
    fn interleaved_inserts_and_deletes_stay_consistent() {
        let mut t = tree(256, 16);
        let mut live = std::collections::BTreeMap::new();
        let mut v = 0u64;
        for round in 0..40i64 {
            for k in 0..50 {
                v += 1;
                let key = round * 50 + k;
                t.insert(key, key as u128, v);
                live.insert(key, key as u128);
            }
            // delete every third key inserted so far
            let doomed: Vec<i64> = live.keys().copied().filter(|k| k % 3 == 0).collect();
            for key in doomed {
                v += 1;
                assert!(t.delete(key, v), "key {key} should be live");
                live.remove(&key);
            }
        }
        let got = t.range(i64::MIN, i64::MAX, v);
        let want: Vec<(i64, u128)> = live.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn historical_snapshots_survive_restructuring() {
        let mut t = tree(256, 16);
        // Insert in waves, remembering the live set at checkpoints.
        let mut v = 0u64;
        let mut checkpoints: Vec<(u64, Vec<i64>)> = Vec::new();
        let mut live: Vec<i64> = Vec::new();
        for wave in 0..10i64 {
            for k in 0..60 {
                v += 1;
                let key = wave * 60 + k;
                t.insert(key, 0, v);
                live.push(key);
            }
            if wave % 2 == 1 {
                // delete the first half of the previous wave
                for k in 0..30 {
                    v += 1;
                    let key = (wave - 1) * 60 + k;
                    t.delete(key, v);
                    live.retain(|&x| x != key);
                }
            }
            checkpoints.push((v, live.clone()));
        }
        for (cv, keys) in checkpoints {
            let got: Vec<i64> = t.range(i64::MIN, i64::MAX, cv).iter().map(|&(k, _)| k).collect();
            assert_eq!(got, keys, "snapshot at version {cv}");
        }
    }

    #[test]
    fn total_deletion_leaves_empty_tree() {
        let mut t = tree(256, 8);
        let mut v = 0;
        for k in 0..300 {
            v += 1;
            t.insert(k, 1, v);
        }
        for k in 0..300 {
            v += 1;
            assert!(t.delete(k, v));
        }
        assert_eq!(t.live_len(v), 0);
        // And the tree accepts fresh inserts afterwards.
        v += 1;
        t.insert(42, 7, v);
        assert_eq!(t.get(42, v), Some(7));
        assert_eq!(t.live_len(v), 1);
    }

    #[test]
    #[should_panic(expected = "precedes current version")]
    fn rejects_time_travel_updates() {
        let mut t = tree(1024, 8);
        t.insert(1, 1, 5);
        t.insert(2, 2, 3);
    }

    #[test]
    fn negative_keys_work() {
        let mut t = tree(1024, 8);
        for k in -50..50 {
            t.insert(k, (k + 100) as u128, 1);
        }
        assert_eq!(t.get(-50, 1), Some(50));
        let r = t.range(-10, -5, 1);
        assert_eq!(r.len(), 6);
        assert_eq!(r[0].0, -10);
    }

    #[test]
    fn io_goes_through_buffer_pool() {
        let stats = AccessStats::new();
        let disk = Arc::new(Disk::new(1024, stats.clone()));
        let pool = Arc::new(BufferPool::new(disk, 10));
        let mut t = Mvbt::new(pool);
        for k in 0..500 {
            t.insert(k, 0, 1);
        }
        stats.reset();
        let _ = t.range(0, 499, 1);
        let snap = stats.snapshot();
        assert!(snap.buffer_hits + snap.buffer_misses > 0, "reads are buffered");
    }
}
