//! MVBT node layout and page codec.

use knnta_util::codec::{Bytes, BytesMut};
use pagestore::PageId;

/// Sentinel for "still alive" (`end == ∞`).
pub const VERSION_INF: u64 = u64::MAX;

/// Serialized size of a leaf entry: key (8) + start (8) + end (8) + value (16).
pub(crate) const LEAF_ENTRY_BYTES: usize = 40;
/// Serialized size of an internal entry: router (8) + start (8) + end (8) + child (8).
pub(crate) const INTERNAL_ENTRY_BYTES: usize = 32;
/// Node header: tag (1) + entry count (2) + padding (5) + start version (8).
pub(crate) const HEADER_BYTES: usize = 16;

/// A leaf record: `key` holds `value` during versions `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry {
    /// Search key.
    pub key: i64,
    /// First version at which the record is visible.
    pub start: u64,
    /// First version at which the record is no longer visible
    /// ([`VERSION_INF`] while alive).
    pub end: u64,
    /// 16-byte payload (the TIA packs `⟨te, agg⟩` here).
    pub value: u128,
}

impl LeafEntry {
    /// Whether the record is visible at `version`.
    #[inline]
    pub fn alive_at(&self, version: u64) -> bool {
        self.start <= version && version < self.end
    }

    /// Whether the record is still current (`end == ∞`).
    #[inline]
    pub fn is_live(&self) -> bool {
        self.end == VERSION_INF
    }
}

/// An internal router entry: during `[start, end)`, keys `≥ router` (down to
/// the previous live router) are found under `child`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternalEntry {
    /// Separator key (lower bound of the child's responsibility).
    pub router: i64,
    /// First version at which the child is current.
    pub start: u64,
    /// First version at which the child is dead ([`VERSION_INF`] while live).
    pub end: u64,
    /// The child node's page.
    pub child: PageId,
}

impl InternalEntry {
    /// Whether the child is current at `version`.
    #[inline]
    pub fn alive_at(&self, version: u64) -> bool {
        self.start <= version && version < self.end
    }

    /// Whether the child is still current.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.end == VERSION_INF
    }
}

/// The entries of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeBody {
    /// Leaf level: data records.
    Leaf(Vec<LeafEntry>),
    /// Internal level: routers to children.
    Internal(Vec<InternalEntry>),
}

/// One MVBT node as stored in a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The version at which this node was created (version splits create
    /// nodes; in-place reorganisation is only legal while the current
    /// version equals this).
    pub start_version: u64,
    /// The node's entries.
    pub body: NodeBody,
}

impl Node {
    /// A fresh empty leaf created at `version`.
    pub fn new_leaf(version: u64) -> Self {
        Node {
            start_version: version,
            body: NodeBody::Leaf(Vec::new()),
        }
    }

    /// A fresh internal node created at `version`.
    pub fn new_internal(version: u64) -> Self {
        Node {
            start_version: version,
            body: NodeBody::Internal(Vec::new()),
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.body, NodeBody::Leaf(_))
    }

    /// Total number of entries (alive and dead).
    pub fn len(&self) -> usize {
        match &self.body {
            NodeBody::Leaf(v) => v.len(),
            NodeBody::Internal(v) => v.len(),
        }
    }

    /// Whether the node stores no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries alive at `version`.
    pub fn live_count(&self, version: u64) -> usize {
        match &self.body {
            NodeBody::Leaf(v) => v.iter().filter(|e| e.alive_at(version)).count(),
            NodeBody::Internal(v) => v.iter().filter(|e| e.alive_at(version)).count(),
        }
    }

    /// Serializes the node into a page payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_BYTES + self.len() * LEAF_ENTRY_BYTES);
        buf.put_u8(if self.is_leaf() { 1 } else { 0 });
        buf.put_u16(self.len() as u16);
        buf.put_bytes(0, 5);
        buf.put_u64(self.start_version);
        match &self.body {
            NodeBody::Leaf(entries) => {
                for e in entries {
                    buf.put_i64(e.key);
                    buf.put_u64(e.start);
                    buf.put_u64(e.end);
                    buf.put_u128(e.value);
                }
            }
            NodeBody::Internal(entries) => {
                for e in entries {
                    buf.put_i64(e.router);
                    buf.put_u64(e.start);
                    buf.put_u64(e.end);
                    buf.put_u64(e.child.0);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a node from a page payload.
    ///
    /// # Panics
    ///
    /// Panics on a malformed payload (truncated header or entries) — pages
    /// are written by this crate only, so corruption is a logic error.
    pub fn decode(mut data: Bytes) -> Self {
        assert!(data.len() >= HEADER_BYTES, "truncated node header");
        let tag = data.get_u8();
        let count = data.get_u16() as usize;
        data.advance(5);
        let start_version = data.get_u64();
        let body = if tag == 1 {
            assert!(data.len() >= count * LEAF_ENTRY_BYTES, "truncated leaf");
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(LeafEntry {
                    key: data.get_i64(),
                    start: data.get_u64(),
                    end: data.get_u64(),
                    value: data.get_u128(),
                });
            }
            NodeBody::Leaf(entries)
        } else {
            assert!(
                data.len() >= count * INTERNAL_ENTRY_BYTES,
                "truncated internal node"
            );
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(InternalEntry {
                    router: data.get_i64(),
                    start: data.get_u64(),
                    end: data.get_u64(),
                    child: PageId(data.get_u64()),
                });
            }
            NodeBody::Internal(entries)
        };
        Node {
            start_version,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let node = Node {
            start_version: 7,
            body: NodeBody::Leaf(vec![
                LeafEntry {
                    key: -5,
                    start: 1,
                    end: VERSION_INF,
                    value: 0xDEAD_BEEF,
                },
                LeafEntry {
                    key: 42,
                    start: 2,
                    end: 9,
                    value: u128::MAX,
                },
            ]),
        };
        let decoded = Node::decode(node.encode());
        assert_eq!(decoded, node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node {
            start_version: 0,
            body: NodeBody::Internal(vec![InternalEntry {
                router: i64::MIN,
                start: 0,
                end: VERSION_INF,
                child: PageId(99),
            }]),
        };
        assert_eq!(Node::decode(node.encode()), node);
    }

    #[test]
    fn empty_node_roundtrip() {
        let node = Node::new_leaf(3);
        assert_eq!(Node::decode(node.encode()), node);
        let node = Node::new_internal(4);
        assert_eq!(Node::decode(node.encode()), node);
    }

    #[test]
    fn alive_at_boundaries() {
        let e = LeafEntry {
            key: 0,
            start: 3,
            end: 7,
            value: 0,
        };
        assert!(!e.alive_at(2));
        assert!(e.alive_at(3));
        assert!(e.alive_at(6));
        assert!(!e.alive_at(7));
        assert!(!e.is_live());
        let live = LeafEntry {
            end: VERSION_INF,
            ..e
        };
        assert!(live.is_live());
        assert!(live.alive_at(u64::MAX - 1));
    }

    #[test]
    fn live_count_counts_by_version() {
        let node = Node {
            start_version: 0,
            body: NodeBody::Leaf(vec![
                LeafEntry {
                    key: 1,
                    start: 0,
                    end: 5,
                    value: 0,
                },
                LeafEntry {
                    key: 2,
                    start: 3,
                    end: VERSION_INF,
                    value: 0,
                },
            ]),
        };
        assert_eq!(node.live_count(0), 1);
        assert_eq!(node.live_count(3), 2);
        assert_eq!(node.live_count(5), 1);
    }

    #[test]
    fn encoded_size_matches_constants() {
        let leaf = Node {
            start_version: 0,
            body: NodeBody::Leaf(vec![
                LeafEntry {
                    key: 0,
                    start: 0,
                    end: 0,
                    value: 0
                };
                3
            ]),
        };
        assert_eq!(leaf.encode().len(), HEADER_BYTES + 3 * LEAF_ENTRY_BYTES);
        let internal = Node {
            start_version: 0,
            body: NodeBody::Internal(vec![
                InternalEntry {
                    router: 0,
                    start: 0,
                    end: 0,
                    child: PageId(0)
                };
                2
            ]),
        };
        assert_eq!(
            internal.encode().len(),
            HEADER_BYTES + 2 * INTERNAL_ENTRY_BYTES
        );
    }
}
