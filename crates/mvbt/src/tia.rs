//! The TIA (temporal index on the aggregate) backed by the MVBT.

use crate::tree::Mvbt;
use pagestore::{BufferPool, BufferPoolConfig, Disk};
use std::sync::Arc;
use tempora::{AggregateSeries, EpochGrid, EpochRecord, TimeInterval};

/// A disk-based temporal index on the aggregate, as attached to every
/// TAR-tree entry (Section 4.1 of the paper).
///
/// Records are the paper's `⟨ts, te, agg⟩` triples, keyed by the epoch start
/// `ts`, stored in an [`Mvbt`] whose pages live on a shared [`Disk`] behind a
/// per-TIA [`BufferPool`] (the paper assigns each TIA "a maximum of 10
/// buffer slots").
///
/// Supported operations:
///
/// * [`MvbtTia::insert_epoch`] — append the non-zero aggregate of a finished
///   epoch (batch check-in digestion).
/// * [`MvbtTia::raise_to`] — raise an epoch's stored value to at least `agg`
///   (per-epoch max maintenance of internal TAR-tree entries; implemented as
///   a versioned logical update, which is what exercises the multi-version
///   machinery).
/// * [`MvbtTia::aggregate_over`] — the Section 4.3 query: sum the records
///   whose epoch `[ts, te] ⊆ Iq`.
#[derive(Debug)]
pub struct MvbtTia {
    tree: Mvbt,
    pool: Arc<BufferPool>,
    /// Monotonic operation clock: every mutation advances the MVBT version.
    clock: u64,
    /// Aggregate probes served ([`MvbtTia::aggregate_over`] calls), for the
    /// observability layer's `knnta.mvbt.tia.probes` counter.
    probes: std::sync::atomic::AtomicU64,
}

impl MvbtTia {
    /// Creates an empty TIA over `disk` with `buffer_slots` LRU slots
    /// (the paper's setting is 10).
    pub fn new(disk: Arc<Disk>, buffer_slots: usize) -> Self {
        MvbtTia::with_config(disk, BufferPoolConfig::lru(buffer_slots))
    }

    /// Creates an empty TIA over `disk` with an explicit buffer
    /// capacity + replacement-policy configuration.
    pub fn with_config(disk: Arc<Disk>, config: BufferPoolConfig) -> Self {
        let pool = Arc::new(BufferPool::with_config(disk, config));
        MvbtTia {
            tree: Mvbt::new(Arc::clone(&pool)),
            pool,
            clock: 0,
            probes: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of [`MvbtTia::aggregate_over`] probes served so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The TIA buffer pool's configuration.
    pub fn buffer_config(&self) -> BufferPoolConfig {
        self.pool.config()
    }

    /// Flushes and empties the TIA's buffer pool (for cold-cache
    /// measurements).
    pub fn clear_buffer(&self) {
        self.pool.clear();
    }

    fn pack(te: tempora::Timestamp, agg: u64) -> u128 {
        ((te.seconds() as u64 as u128) << 64) | agg as u128
    }

    fn unpack(value: u128) -> (tempora::Timestamp, u64) {
        let te = tempora::Timestamp((value >> 64) as u64 as i64);
        let agg = value as u64;
        (te, agg)
    }

    /// Stores the non-zero aggregate of `epoch` (indexed in `grid`).
    ///
    /// Zero aggregates are skipped — the TIA only keeps non-zero records.
    pub fn insert_epoch(&mut self, grid: &EpochGrid, epoch_index: usize, agg: u64) {
        if agg == 0 {
            return;
        }
        let epoch = grid.epoch(epoch_index);
        self.clock += 1;
        self.tree
            .insert(epoch.start.seconds(), Self::pack(epoch.end, agg), self.clock);
    }

    /// Raises the stored value of `epoch` to at least `agg` (inserting the
    /// record if absent). Returns whether the stored value changed.
    pub fn raise_to(&mut self, grid: &EpochGrid, epoch_index: usize, agg: u64) -> bool {
        if agg == 0 {
            return false;
        }
        let epoch = grid.epoch(epoch_index);
        let key = epoch.start.seconds();
        let current = self
            .tree
            .get(key, self.clock)
            .map(|v| Self::unpack(v).1)
            .unwrap_or(0);
        if agg <= current {
            return false;
        }
        self.clock += 1;
        self.tree
            .insert(key, Self::pack(epoch.end, agg), self.clock);
        true
    }

    /// The stored aggregate of `epoch`, 0 when absent.
    pub fn epoch_value(&self, grid: &EpochGrid, epoch_index: usize) -> u64 {
        let key = grid.epoch(epoch_index).start.seconds();
        self.tree
            .get(key, self.clock)
            .map(|v| Self::unpack(v).1)
            .unwrap_or(0)
    }

    /// The temporal aggregate over `iq`: the sum of records whose epoch
    /// `[ts, te] ⊆ iq` (Section 4.3).
    pub fn aggregate_over(&self, iq: TimeInterval) -> u64 {
        self.probes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Record keys are epoch starts; a record qualifies iff
        // ts >= iq.start and te <= iq.end. Scan the key range and filter on
        // the stored te — grid-independent, so varied-length epochs work.
        self.tree
            .range(iq.start().seconds(), iq.end().seconds(), self.clock)
            .into_iter()
            .filter_map(|(_, v)| {
                let (te, agg) = Self::unpack(v);
                (te <= iq.end()).then_some(agg)
            })
            .sum()
    }

    /// All current records as `⟨ts, te, agg⟩` triples in epoch order.
    pub fn records(&self) -> Vec<EpochRecord> {
        self.tree
            .range(i64::MIN, i64::MAX, self.clock)
            .into_iter()
            .map(|(ts, v)| {
                let (te, agg) = Self::unpack(v);
                EpochRecord {
                    ts: tempora::Timestamp(ts),
                    te,
                    agg,
                }
            })
            .collect()
    }

    /// The current content as a sparse [`AggregateSeries`] under `grid`.
    pub fn to_series(&self, grid: &EpochGrid) -> AggregateSeries {
        AggregateSeries::from_pairs(self.records().into_iter().map(|r| {
            let epoch = grid
                .epoch_of(r.ts)
                .expect("TIA record lies on the grid");
            (epoch.index as u32, r.agg)
        }))
    }

    /// Materialises the TIA's current records as cumulative per-epoch
    /// partial sums under `grid`, in a **single** range scan of the MVBT.
    ///
    /// A batch of queries with overlapping intervals can then answer every
    /// `aggregate_over` from the returned [`tempora::PrefixSums`] in `O(log s)`
    /// without touching the tree again — the disk-side half of the
    /// collective scheme's shared TIA aggregate memoisation.
    pub fn partial_sums(&self, grid: &EpochGrid) -> tempora::PrefixSums {
        self.to_series(grid).prefix_sums()
    }

    /// Loads a whole [`AggregateSeries`] into an empty TIA.
    pub fn load_series(&mut self, grid: &EpochGrid, series: &AggregateSeries) {
        for (epoch, value) in series.iter() {
            self.insert_epoch(grid, epoch as usize, value);
        }
    }

    /// The TIA's current version — the operation-clock value every mutation
    /// advances. Capture it before applying delta-overlay epochs, and the
    /// versioned reads below reproduce the pre-delta state exactly: the
    /// disk-side analogue of `knnta-core`'s live epoch snapshots, carried by
    /// the MVBT's version chain instead of a frozen overlay.
    pub fn version(&self) -> u64 {
        self.clock
    }

    /// [`MvbtTia::epoch_value`] as of `version` (a value previously returned
    /// by [`MvbtTia::version`]). Mutations after that version are invisible.
    pub fn epoch_value_at(&self, grid: &EpochGrid, epoch_index: usize, version: u64) -> u64 {
        let key = grid.epoch(epoch_index).start.seconds();
        self.tree
            .get(key, version)
            .map(|v| Self::unpack(v).1)
            .unwrap_or(0)
    }

    /// [`MvbtTia::aggregate_over`] as of `version`: the Section 4.3 query
    /// against the version chain's historical state.
    pub fn aggregate_over_at(&self, iq: TimeInterval, version: u64) -> u64 {
        self.probes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.tree
            .range(iq.start().seconds(), iq.end().seconds(), version)
            .into_iter()
            .filter_map(|(_, v)| {
                let (te, agg) = Self::unpack(v);
                (te <= iq.end()).then_some(agg)
            })
            .sum()
    }

    /// [`MvbtTia::to_series`] as of `version`.
    pub fn to_series_at(&self, grid: &EpochGrid, version: u64) -> AggregateSeries {
        AggregateSeries::from_pairs(
            self.tree
                .range(i64::MIN, i64::MAX, version)
                .into_iter()
                .map(|(ts, v)| {
                    let epoch = grid
                        .epoch_of(tempora::Timestamp(ts))
                        .expect("TIA record lies on the grid");
                    (epoch.index as u32, Self::unpack(v).1)
                }),
        )
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.tree.live_len(self.clock)
    }

    /// Whether the TIA holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagestore::AccessStats;
    use tempora::Timestamp;

    fn tia() -> (MvbtTia, Arc<Disk>) {
        let disk = Arc::new(Disk::new(1024, AccessStats::new()));
        (MvbtTia::new(Arc::clone(&disk), 10), disk)
    }

    #[test]
    fn paper_example_tia() {
        // POI f from Table 1: 3, 5, 4 over three epochs.
        let grid = EpochGrid::fixed_days(1, 3);
        let (mut tia, _) = tia();
        tia.insert_epoch(&grid, 0, 3);
        tia.insert_epoch(&grid, 1, 5);
        tia.insert_epoch(&grid, 2, 4);
        assert_eq!(tia.aggregate_over(TimeInterval::days(0, 3)), 12);
        assert_eq!(tia.aggregate_over(TimeInterval::days(1, 3)), 9);
        assert_eq!(tia.aggregate_over(TimeInterval::days(0, 1)), 3);
        // Sub-epoch interval contains no full epoch.
        assert_eq!(
            tia.aggregate_over(TimeInterval::new(Timestamp(10), Timestamp(20))),
            0
        );
    }

    #[test]
    fn probe_counter_tracks_aggregate_queries() {
        let grid = EpochGrid::fixed_days(1, 3);
        let (mut tia, _) = tia();
        tia.insert_epoch(&grid, 0, 3);
        assert_eq!(tia.probes(), 0);
        let _ = tia.aggregate_over(TimeInterval::days(0, 3));
        let _ = tia.aggregate_over(TimeInterval::days(1, 3));
        assert_eq!(tia.probes(), 2);
        // Point lookups and mutations are not aggregate probes.
        let _ = tia.epoch_value(&grid, 0);
        tia.insert_epoch(&grid, 1, 5);
        assert_eq!(tia.probes(), 2);
    }

    #[test]
    fn zero_aggregates_are_skipped() {
        let grid = EpochGrid::fixed_days(1, 3);
        let (mut tia, _) = tia();
        tia.insert_epoch(&grid, 0, 0);
        tia.insert_epoch(&grid, 1, 2);
        assert_eq!(tia.len(), 1);
        assert_eq!(tia.epoch_value(&grid, 0), 0);
        assert_eq!(tia.epoch_value(&grid, 1), 2);
    }

    #[test]
    fn raise_to_acts_as_max() {
        let grid = EpochGrid::fixed_days(1, 2);
        let (mut tia, _) = tia();
        assert!(tia.raise_to(&grid, 0, 5));
        assert!(!tia.raise_to(&grid, 0, 3));
        assert!(tia.raise_to(&grid, 0, 9));
        assert!(!tia.raise_to(&grid, 1, 0));
        assert_eq!(tia.epoch_value(&grid, 0), 9);
        assert_eq!(tia.aggregate_over(TimeInterval::days(0, 2)), 9);
    }

    #[test]
    fn series_roundtrip() {
        let grid = EpochGrid::fixed_days(7, 50);
        let series = AggregateSeries::from_pairs((0..50).filter(|e| e % 3 == 0).map(|e| (e, e as u64 + 1)));
        let (mut tia, _) = tia();
        tia.load_series(&grid, &series);
        assert_eq!(tia.to_series(&grid), series);
        assert_eq!(tia.len(), series.len());
        // Aggregate matches the in-memory series on several intervals.
        for (a, b) in [(0, 70), (7, 140), (100, 350), (0, 1)] {
            let iq = TimeInterval::days(a, b);
            assert_eq!(
                tia.aggregate_over(iq),
                series.aggregate_over(&grid, iq),
                "interval {iq}"
            );
        }
    }

    #[test]
    fn records_report_epoch_bounds() {
        let grid = EpochGrid::fixed_days(7, 4);
        let (mut tia, _) = tia();
        tia.insert_epoch(&grid, 2, 11);
        let recs = tia.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts, Timestamp::from_days(14));
        assert_eq!(recs[0].te, Timestamp::from_days(21));
        assert_eq!(recs[0].agg, 11);
    }

    #[test]
    fn varied_length_epochs_work() {
        // Exponential epochs: 1h, 2h, 4h, 8h.
        let grid = EpochGrid::exponential(Timestamp::HOUR, 4);
        let (mut tia, _) = tia();
        for i in 0..4 {
            tia.insert_epoch(&grid, i, (i + 1) as u64);
        }
        // [0, 3h] fully contains epochs 0 ([0,1h]) and 1 ([1h,3h]).
        let iq = TimeInterval::new(Timestamp(0), Timestamp::from_hours(3));
        assert_eq!(tia.aggregate_over(iq), 3);
        // [1h, 15h] contains epochs 1, 2, 3.
        let iq = TimeInterval::new(Timestamp::from_hours(1), Timestamp::from_hours(15));
        assert_eq!(tia.aggregate_over(iq), 9);
    }

    #[test]
    fn partial_sums_match_aggregate_over() {
        let grid = EpochGrid::fixed_days(7, 40);
        let (mut tia, _) = tia();
        for e in (0..40usize).step_by(3) {
            tia.insert_epoch(&grid, e, (e % 11 + 1) as u64);
        }
        let sums = tia.partial_sums(&grid);
        assert_eq!(sums.total(), tia.aggregate_over(TimeInterval::days(0, 280)));
        for (a, b) in [(0, 280), (7, 140), (8, 141), (100, 101), (35, 210)] {
            let iq = TimeInterval::days(a, b);
            assert_eq!(
                sums.aggregate_over(&grid, iq),
                tia.aggregate_over(iq),
                "interval {iq}"
            );
        }
    }

    #[test]
    fn io_respects_buffer_slots() {
        let stats = AccessStats::new();
        let disk = Arc::new(Disk::new(1024, stats.clone()));
        let mut tia = MvbtTia::new(Arc::clone(&disk), 10);
        let grid = EpochGrid::fixed_days(1, 500);
        for e in 0..500 {
            tia.insert_epoch(&grid, e, (e % 7 + 1) as u64);
        }
        stats.reset();
        let _ = tia.aggregate_over(TimeInterval::days(0, 500));
        let snap = stats.snapshot();
        assert!(snap.buffer_misses > 0, "a large scan must miss the 10-slot buffer");
    }

    #[test]
    fn versioned_reads_freeze_the_pre_delta_state() {
        // The snapshot protocol of the live ingestion tier, on disk: capture
        // the version, apply delta epochs, and the old version still answers
        // exactly as before — for every interleaving of inserts and raises.
        let grid = EpochGrid::fixed_days(1, 6);
        let (mut tia, _) = tia();
        tia.insert_epoch(&grid, 0, 3);
        tia.insert_epoch(&grid, 2, 5);
        let v0 = tia.version();
        let frozen = tia.to_series_at(&grid, v0);

        // Delta overlay: new epochs, raises of existing ones.
        tia.insert_epoch(&grid, 1, 7);
        tia.raise_to(&grid, 2, 9);
        tia.insert_epoch(&grid, 4, 2);

        // Reads at v0 are bit-identical to the frozen copy.
        assert_eq!(tia.to_series_at(&grid, v0), frozen);
        for e in 0..6 {
            assert_eq!(
                tia.epoch_value_at(&grid, e, v0),
                frozen.get(e as u32),
                "epoch {e} at v0"
            );
        }
        for (a, b) in [(0, 6), (0, 1), (1, 3), (2, 5)] {
            let iq = TimeInterval::days(a, b);
            assert_eq!(
                tia.aggregate_over_at(iq, v0),
                frozen.aggregate_over(&grid, iq),
                "interval {iq} at v0"
            );
        }
        // The head sees the deltas.
        assert_eq!(tia.epoch_value(&grid, 1), 7);
        assert_eq!(tia.epoch_value(&grid, 2), 9);
        assert_eq!(tia.aggregate_over(TimeInterval::days(0, 6)), 21);
        assert_eq!(tia.version(), v0 + 3);
    }

    #[test]
    fn many_epochs_aggregate_correctly() {
        let grid = EpochGrid::fixed_days(1, 2000);
        let (mut tia, _) = tia();
        let mut oracle = AggregateSeries::new();
        for e in (0..2000u32).step_by(2) {
            let v = (e % 13 + 1) as u64;
            tia.insert_epoch(&grid, e as usize, v);
            oracle.set(e, v);
        }
        for (a, b) in [(0, 2000), (100, 1900), (500, 501), (1234, 1300)] {
            let iq = TimeInterval::days(a, b);
            assert_eq!(tia.aggregate_over(iq), oracle.aggregate_over(&grid, iq));
        }
    }
}
