//! Synthetic LBSN datasets calibrated to the paper's four real datasets.
//!
//! The paper evaluates on NYC and LA (Foursquare tips), GW (Gowalla) and GS
//! (Foursquare check-ins posted on Twitter) — see Table 4 for sizes and
//! Table 2 for the fitted power-law parameters. Those datasets are not
//! redistributable, so this module *generates* datasets with the same
//! statistical shape:
//!
//! * POI count, check-in count and time span scaled from Table 4;
//! * per-POI total check-ins drawn from a body + power-law-tail mixture
//!   whose tail uses **the paper's own fitted `β̂` and `x̂min`** (Table 2);
//! * clustered spatial positions (Gaussian-mixture cities);
//! * check-ins spread over epochs with mild growth over time (LBSNs grow,
//!   which the growth experiment of Figure 8 relies on).
//!
//! The `scale` knob shrinks everything proportionally so the full
//! experiment suite runs on a laptop; `scale = 1.0` reproduces the paper's
//! sizes.

use crate::powerlaw::PowerLaw;
use crate::spatial::ClusterModel;
use knnta_util::rng::{Rng, StdRng};
use tempora::{AggregateSeries, EpochGrid, PoiId};

/// Calibration of one of the paper's datasets (Tables 2 and 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Number of locations (Table 4).
    pub locations: usize,
    /// Total number of check-ins (Table 4).
    pub checkins: u64,
    /// Time span in days (Table 4's date ranges).
    pub days: i64,
    /// Fitted power-law exponent `β̂` (Table 2).
    pub beta: f64,
    /// Fitted lower bound `x̂min` (Table 2).
    pub xmin: u64,
    /// Check-ins required for a location to be an *effective public POI*
    /// (Section 8: 15 / 10 / 100 / 50 for the four datasets).
    pub min_checkins: u64,
    /// Number of spatial clusters in the synthetic city model.
    pub clusters: usize,
}

/// NYC: Foursquare tips in New York City, 05/2008 – 06/2011.
pub fn nyc() -> DatasetSpec {
    DatasetSpec {
        name: "NYC",
        locations: 72_626,
        checkins: 237_784,
        days: 1_127,
        beta: 3.20,
        xmin: 31,
        min_checkins: 15,
        clusters: 8,
    }
}

/// LA: Foursquare tips in Los Angeles, 02/2009 – 07/2011.
pub fn la() -> DatasetSpec {
    DatasetSpec {
        name: "LA",
        locations: 45_591,
        checkins: 127_924,
        days: 880,
        beta: 3.07,
        xmin: 16,
        min_checkins: 10,
        clusters: 10,
    }
}

/// GW: Gowalla, 02/2009 – 10/2010.
pub fn gw() -> DatasetSpec {
    DatasetSpec {
        name: "GW",
        locations: 1_280_969,
        checkins: 6_442_803,
        days: 637,
        beta: 2.82,
        xmin: 85,
        min_checkins: 100,
        clusters: 40,
    }
}

/// GS: Foursquare check-ins posted on Twitter, 01/2011 – 07/2011.
pub fn gs() -> DatasetSpec {
    DatasetSpec {
        name: "GS",
        locations: 182_968,
        checkins: 1_385_223,
        days: 180,
        beta: 2.19,
        xmin: 59,
        min_checkins: 50,
        clusters: 25,
    }
}

/// All four presets in paper order.
pub fn all_specs() -> [DatasetSpec; 4] {
    [nyc(), la(), gw(), gs()]
}

/// Looks a preset up by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    all_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// A generated LBSN dataset.
#[derive(Debug, Clone)]
pub struct LbsnDataset {
    /// Which spec generated it.
    pub spec: DatasetSpec,
    /// The epoch grid covering the dataset's time span.
    pub grid: EpochGrid,
    /// Data-space bounding box.
    pub bounds: ([f64; 2], [f64; 2]),
    /// Position of every location (index = POI id).
    pub positions: Vec<[f64; 2]>,
    /// Per-epoch aggregate series of every location (index = POI id).
    pub series: Vec<AggregateSeries>,
}

impl LbsnDataset {
    /// Number of locations (effective or not).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the dataset has no locations.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Total check-ins across all locations.
    pub fn total_checkins(&self) -> u64 {
        self.series.iter().map(|s| s.total()).sum()
    }

    /// Per-POI total check-in counts (the sample Table 2's fit runs on).
    pub fn totals(&self) -> Vec<u64> {
        self.series.iter().map(|s| s.total()).collect()
    }

    /// The POIs known at a time snapshot: locations with at least one
    /// check-in within epochs `0..epoch_count`, with their series truncated
    /// to those epochs.
    ///
    /// (The paper's "effective public POI" thresholds of Section 8 are a
    /// data-cleaning step on venue metadata that Table 4's location counts
    /// already reflect — Table 2 fits the power law on essentially *all*
    /// listed locations — so the generator's location count is the indexed
    /// POI count.)
    ///
    /// `snapshot(self.grid.len())` is the full dataset as indexed in most
    /// experiments; smaller prefixes drive the Figure 8 growth experiment.
    pub fn snapshot(&self, epoch_count: usize) -> Vec<(PoiId, [f64; 2], AggregateSeries)> {
        let epoch_count = epoch_count.min(self.grid.len());
        let mut out = Vec::new();
        for (i, series) in self.series.iter().enumerate() {
            let truncated =
                AggregateSeries::from_pairs(series.iter().filter(|&(e, _)| (e as usize) < epoch_count));
            if !truncated.is_empty() {
                out.push((PoiId(i as u32), self.positions[i], truncated));
            }
        }
        out
    }

    /// A snapshot at a fraction of the time span (Figure 8 uses 20%…100%).
    pub fn snapshot_at(&self, fraction: f64) -> Vec<(PoiId, [f64; 2], AggregateSeries)> {
        let epochs = ((self.grid.len() as f64) * fraction).round() as usize;
        self.snapshot(epochs.max(1))
    }
}

impl DatasetSpec {
    /// Generates a dataset at `scale` (1.0 = the paper's size) with
    /// `epoch_days`-day epochs (the paper's default is 7).
    pub fn generate(&self, scale: f64, epoch_days: i64, seed: u64) -> LbsnDataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale in (0, 1]");
        assert!(epoch_days >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0000);
        let n = ((self.locations as f64 * scale).round() as usize).max(10);
        let m = ((self.days + epoch_days - 1) / epoch_days).max(1) as usize;
        let grid = EpochGrid::fixed_days(epoch_days, m);

        // Spatial positions from the cluster model; the box is arbitrary
        // "city coordinates" (kilometres). The cluster count scales with
        // the dataset so the POIs-per-city density stays at its full-scale
        // value — the within-city density is what makes aggregate pruning
        // matter (thousands of near-equidistant POIs per city), and keeping
        // it fixed preserves the paper's regime at laptop scale.
        let bounds = ([0.0, 0.0], [100.0, 100.0]);
        let clusters = ((self.clusters as f64 * scale).round() as usize).clamp(2, self.clusters);
        let city = ClusterModel::generate(bounds, clusters, 0.03, &mut rng);
        let positions: Vec<[f64; 2]> = (0..n).map(|_| city.sample(&mut rng)).collect();

        // Per-POI totals: a body/tail mixture whose tail is the paper's
        // fitted power law and whose overall mean matches Table 4's
        // check-ins-per-location.
        let tail = PowerLaw::new(self.beta, self.xmin);
        let target_mean = self.checkins as f64 / self.locations as f64;
        let tail_mean = if tail.mean().is_finite() {
            tail.mean()
        } else {
            // β ≤ 2: heavy tail with unbounded mean; use an empirical mean
            // from a large sample (the clamp in sampling keeps it finite).
            let probe: f64 = (0..10_000).map(|_| tail.sample(&mut rng) as f64).sum();
            probe / 10_000.0
        };
        let body_mean = 2.0f64.min(target_mean * 0.9);
        let tau0 = ((target_mean - body_mean) / (tail_mean - body_mean)).clamp(0.002, 1.0);

        // Natural tail cutoff: real venues have finite capacity, so the top
        // of the distribution is a *pack* of comparably-popular venues
        // (airports, stations) rather than one extreme outlier. Without the
        // cutoff a single heavy-tail draw dwarfs everything, the normalised
        // aggregates of all other POIs collapse towards zero, and aggregate
        // pruning degenerates — unlike the paper's measured f(pk).
        // Truncate the tail at the value exceeded by ~5 venues in
        // expectation (rejection-resampling below the cut keeps the shape a
        // clean truncated power law, which the CSN goodness-of-fit cannot
        // distinguish from a pure one at these sample sizes).
        let n_tail = (tau0 * n as f64).max(1.0);
        let cap_ratio = (n_tail / 5.0)
            .max(1.0)
            .powf(1.0 / (self.beta - 1.0))
            .max(8.0); // keep at least a decade of tail at small scales
        let xcap = ((self.xmin as f64) * cap_ratio).max(self.xmin as f64 * 2.0) as u64;
        let draw_tail = |rng: &mut StdRng| loop {
            let d = tail.sample(rng);
            if d <= xcap {
                return d;
            }
        };
        // Recalibrate the tail fraction against the *truncated* tail mean
        // so the total check-in count still tracks Table 4.
        let capped_tail_mean = {
            let probe: u64 = (0..4096).map(|_| draw_tail(&mut rng)).sum();
            probe as f64 / 4096.0
        };
        let tau = ((target_mean - body_mean) / (capped_tail_mean - body_mean)).clamp(0.002, 1.0);
        let mut series = Vec::with_capacity(n);
        for _ in 0..n {
            let total = if rng.gen_range(0.0..1.0) < tau {
                draw_tail(&mut rng)
            } else {
                // Geometric-ish body: mostly 1–4 check-ins.
                1 + rng.gen_range(0u64..4).min(rng.gen_range(0u64..4))
            };
            series.push(spread_over_epochs(total, m, &mut rng));
        }
        LbsnDataset {
            spec: *self,
            grid,
            bounds,
            positions,
            series,
        }
    }
}

/// Spreads `total` check-ins over `m` epochs with linearly growing epoch
/// weights (the LBSN gains users over time) and Poisson-like noise.
fn spread_over_epochs<R: Rng + ?Sized>(total: u64, m: usize, rng: &mut R) -> AggregateSeries {
    if total == 0 || m == 0 {
        return AggregateSeries::new();
    }
    if m == 1 {
        return AggregateSeries::from_pairs([(0u32, total)]);
    }
    // Epoch weights w_e ∝ 1 + e (growth), normalised.
    let weight_sum = (m * (m + 1)) as f64 / 2.0;
    if total < 4 * m as u64 {
        // Few check-ins: place each one in a weighted random epoch.
        let mut s = AggregateSeries::new();
        for _ in 0..total {
            let u: f64 = rng.gen_range(0.0..weight_sum);
            // Inverse CDF of the triangular weights: e(e+1)/2 >= u.
            let e = ((((8.0 * u + 1.0).sqrt() - 1.0) / 2.0).floor() as usize).min(m - 1);
            s.add(e as u32, 1);
        }
        s
    } else {
        // Many check-ins: expected share with multiplicative noise.
        let mut s = AggregateSeries::new();
        let mut assigned = 0u64;
        for e in 0..m {
            let w = (e + 1) as f64 / weight_sum;
            let noise: f64 = rng.gen_range(0.5..1.5);
            let c = ((total as f64) * w * noise).round() as u64;
            let c = c.min(total - assigned);
            if c > 0 {
                s.add(e as u32, c);
                assigned += c;
            }
        }
        if assigned < total {
            s.add((m - 1) as u32, total - assigned);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_tables() {
        let specs = all_specs();
        assert_eq!(specs[0].name, "NYC");
        assert_eq!(specs[2].locations, 1_280_969);
        assert_eq!(specs[2].checkins, 6_442_803);
        assert!((specs[3].beta - 2.19).abs() < 1e-9);
        assert_eq!(specs[1].xmin, 16);
        assert_eq!(spec_by_name("gw").unwrap().name, "GW");
        assert!(spec_by_name("nope").is_none());
    }

    #[test]
    fn generate_scales_counts() {
        let ds = gs().generate(0.01, 7, 1);
        let expected = (182_968f64 * 0.01) as usize;
        assert!((ds.len() as i64 - expected as i64).abs() <= 1);
        assert_eq!(ds.grid.len(), 180usize.div_ceil(7));
        // Total check-ins roughly track the scaled target (±50% — the
        // mixture is calibrated in expectation only).
        let target = (1_385_223f64 * 0.01) as u64;
        let total = ds.total_checkins();
        assert!(
            total > target / 2 && total < target * 2,
            "total {total}, target {target}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = nyc().generate(0.005, 7, 42);
        let b = nyc().generate(0.005, 7, 42);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.series, b.series);
        let c = nyc().generate(0.005, 7, 43);
        assert_ne!(a.series, c.series);
    }

    #[test]
    fn totals_have_power_law_tail() {
        let ds = gw().generate(0.02, 7, 7);
        let totals = ds.totals();
        let fit = crate::powerlaw::fit_power_law(&totals, 50).expect("fit");
        // β̂ within a reasonable band of the target 2.82 (the body mixture
        // and epoch spreading blur it a little).
        assert!(
            (fit.beta - 2.82).abs() < 0.5,
            "β̂ = {} (target 2.82)",
            fit.beta
        );
    }

    #[test]
    fn snapshots_grow_monotonically() {
        let ds = la().generate(0.02, 7, 3);
        let s20 = ds.snapshot_at(0.2).len();
        let s60 = ds.snapshot_at(0.6).len();
        let s100 = ds.snapshot_at(1.0).len();
        assert!(s20 <= s60 && s60 <= s100, "{s20} <= {s60} <= {s100}");
        // By the full snapshot, nearly every location has appeared.
        assert!(s100 * 10 >= ds.len() * 9, "{s100} of {}", ds.len());
        for (_, _, series) in ds.snapshot_at(1.0) {
            assert!(series.total() >= 1);
        }
    }

    #[test]
    fn snapshot_truncates_series() {
        let ds = gs().generate(0.01, 7, 5);
        let half_epochs = ds.grid.len() / 2;
        for (id, _, series) in ds.snapshot(half_epochs) {
            for (e, _) in series.iter() {
                assert!((e as usize) < half_epochs, "poi {id} epoch {e}");
            }
        }
    }

    #[test]
    fn spread_conserves_total_for_large_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = spread_over_epochs(100_000, 26, &mut rng);
        assert_eq!(s.total(), 100_000);
        // Later epochs get more (growth).
        let early: u64 = (0..13).map(|e| s.get(e)).sum();
        let late: u64 = (13..26).map(|e| s.get(e)).sum();
        assert!(late > early);
    }

    #[test]
    fn spread_conserves_total_for_small_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        for total in [0u64, 1, 5, 30] {
            let s = spread_over_epochs(total, 10, &mut rng);
            assert_eq!(s.total(), total);
        }
    }
}
