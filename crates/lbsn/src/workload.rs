//! Query workload generation (Section 8's setup).

use crate::datasets::LbsnDataset;
use knnta_util::rng::{Rng, StdRng};
use tempora::{TimeInterval, Timestamp};

/// How query time intervals are anchored on the time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalAnchor {
    /// Intervals end at the current time `tc` ("the last week", "the last
    /// year" — the motivating queries of the introduction).
    Recent,
    /// Intervals start uniformly at random within the time span.
    Random,
}

/// A reproducible kNNTA query workload: "1,000 queries with the query point
/// uniformly sampled from the data set and the query time interval uniformly
/// sampled from 2^0, 2^1, …, 2^9 days" (Section 8).
#[derive(Debug, Clone)]
pub struct Workload {
    /// `(query point, query interval)` pairs; `k` and `α0` are chosen by
    /// each experiment.
    pub queries: Vec<([f64; 2], TimeInterval)>,
}

impl Workload {
    /// Generates `count` queries over `dataset`.
    pub fn generate(dataset: &LbsnDataset, count: usize, anchor: IntervalAnchor, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0051_0AD5);
        let tc = dataset.grid.tc();
        let queries = (0..count)
            .map(|_| {
                let point = dataset.positions[rng.gen_range(0..dataset.positions.len())];
                let exp = rng.gen_range(0..=9u32);
                let len_days = 1i64 << exp;
                let len = len_days.min(tc.days().max(1)) * Timestamp::DAY;
                let (start, end) = match anchor {
                    IntervalAnchor::Recent => (tc - len, tc),
                    IntervalAnchor::Random => {
                        let s = rng.gen_range(0..=(tc.seconds() - len).max(0));
                        (Timestamp(s), Timestamp(s) + len)
                    }
                };
                (point, TimeInterval::new(start, end))
            })
            .collect();
        Workload { queries }
    }

    /// Restricts the workload to `n` distinct interval *types* (reusing the
    /// first `n` intervals round-robin) — the Figure 16 experiment varies
    /// the number of query types from 1 to 100.
    pub fn with_interval_types(&self, n: usize) -> Workload {
        assert!(n >= 1);
        let types: Vec<TimeInterval> = {
            let mut seen = Vec::new();
            for &(_, iv) in &self.queries {
                if !seen.contains(&iv) {
                    seen.push(iv);
                }
                if seen.len() == n {
                    break;
                }
            }
            seen
        };
        let queries = self
            .queries
            .iter()
            .enumerate()
            .map(|(i, &(p, _))| (p, types[i % types.len()]))
            .collect();
        Workload { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of distinct interval types.
    pub fn interval_types(&self) -> usize {
        let mut seen: Vec<TimeInterval> = Vec::new();
        for &(_, iv) in &self.queries {
            if !seen.contains(&iv) {
                seen.push(iv);
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::gs;

    fn dataset() -> LbsnDataset {
        gs().generate(0.005, 7, 9)
    }

    #[test]
    fn generates_requested_count() {
        let ds = dataset();
        let w = Workload::generate(&ds, 200, IntervalAnchor::Random, 1);
        assert_eq!(w.len(), 200);
        assert!(!w.is_empty());
    }

    #[test]
    fn intervals_are_powers_of_two_days() {
        let ds = dataset();
        let w = Workload::generate(&ds, 300, IntervalAnchor::Random, 2);
        for &(_, iv) in &w.queries {
            let days = iv.duration() / Timestamp::DAY;
            assert!(
                (days as u64).is_power_of_two() && (1..=512).contains(&days)
                    || days == ds.grid.tc().days(),
                "interval length {days} days"
            );
            assert!(iv.start().seconds() >= 0);
            assert!(iv.end() <= ds.grid.tc());
        }
    }

    #[test]
    fn recent_anchor_ends_at_tc() {
        let ds = dataset();
        let w = Workload::generate(&ds, 50, IntervalAnchor::Recent, 3);
        for &(_, iv) in &w.queries {
            assert_eq!(iv.end(), ds.grid.tc());
        }
    }

    #[test]
    fn query_points_come_from_dataset() {
        let ds = dataset();
        let w = Workload::generate(&ds, 100, IntervalAnchor::Random, 4);
        for &(p, _) in &w.queries {
            assert!(ds.positions.contains(&p));
        }
    }

    #[test]
    fn interval_type_restriction() {
        let ds = dataset();
        let w = Workload::generate(&ds, 500, IntervalAnchor::Random, 5);
        assert!(w.interval_types() > 10);
        for n in [1, 5, 10] {
            let restricted = w.with_interval_types(n);
            assert_eq!(restricted.len(), w.len());
            assert!(restricted.interval_types() <= n);
        }
        assert_eq!(w.with_interval_types(1).interval_types(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = dataset();
        let a = Workload::generate(&ds, 50, IntervalAnchor::Random, 7);
        let b = Workload::generate(&ds, 50, IntervalAnchor::Random, 7);
        assert_eq!(a.queries, b.queries);
    }
}
