//! Discrete power-law distributions: Hurwitz zeta, sampling, and the
//! Clauset–Shalizi–Newman (CSN) fitting procedure.
//!
//! Section 6.1 of the paper observes that per-POI aggregate values follow a
//! discrete power law `p(x) = x^{-β} / ζ(β, xmin)` and validates the
//! hypothesis with the method of Clauset, Shalizi & Newman (SIAM Review
//! 2009): maximum-likelihood `β̂`, KS-minimising `x̂min`, and a
//! goodness-of-fit p-value from semi-parametric bootstrap. This module
//! implements all of it (it also powers the cost model of Section 6 and the
//! synthetic dataset generators).

use knnta_util::rng::Rng;

/// Hurwitz zeta `ζ(s, a) = Σ_{k≥0} (k + a)^{-s}` for `s > 1`, `a > 0`,
/// via direct summation plus an Euler–Maclaurin tail.
///
/// Accurate to ~1e-10 for the parameter ranges used here (`1 < s < 10`,
/// `a ≥ 1`).
pub fn hurwitz_zeta(s: f64, a: f64) -> f64 {
    assert!(s > 1.0, "hurwitz_zeta requires s > 1, got {s}");
    assert!(a > 0.0, "hurwitz_zeta requires a > 0, got {a}");
    const N: usize = 32;
    let mut sum = 0.0;
    for k in 0..N {
        sum += (k as f64 + a).powf(-s);
    }
    let m = N as f64 + a;
    // Euler–Maclaurin: ∫ + boundary + first correction terms.
    sum += m.powf(1.0 - s) / (s - 1.0);
    sum += 0.5 * m.powf(-s);
    sum += s * m.powf(-s - 1.0) / 12.0;
    sum -= s * (s + 1.0) * (s + 2.0) * m.powf(-s - 3.0) / 720.0;
    sum
}

/// The discrete power law `Pr[X = x] = x^{-β} / ζ(β, xmin)` on
/// `x ∈ {xmin, xmin+1, …}`.
///
/// ```
/// use lbsn::{fit_power_law, PowerLaw};
/// use knnta_util::rng::StdRng;
///
/// let law = PowerLaw::new(2.5, 10);
/// let mut rng = StdRng::seed_from_u64(1);
/// let sample: Vec<u64> = (0..5000).map(|_| law.sample(&mut rng)).collect();
/// let fit = fit_power_law(&sample, 50).unwrap();
/// assert!((fit.beta - 2.5).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Scaling exponent `β > 1`.
    pub beta: f64,
    /// Lower bound of power-law behaviour.
    pub xmin: u64,
}

impl PowerLaw {
    /// A new distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `β > 1` and `xmin ≥ 1`.
    pub fn new(beta: f64, xmin: u64) -> Self {
        assert!(beta > 1.0, "power law needs beta > 1, got {beta}");
        assert!(xmin >= 1, "power law needs xmin >= 1");
        PowerLaw { beta, xmin }
    }

    /// `Pr[X = x]` (0 below `xmin`).
    pub fn pmf(&self, x: u64) -> f64 {
        if x < self.xmin {
            return 0.0;
        }
        (x as f64).powf(-self.beta) / hurwitz_zeta(self.beta, self.xmin as f64)
    }

    /// `Pr[X ≥ x]` (the complementary CDF; 1 below `xmin`).
    pub fn ccdf(&self, x: u64) -> f64 {
        if x <= self.xmin {
            return 1.0;
        }
        hurwitz_zeta(self.beta, x as f64) / hurwitz_zeta(self.beta, self.xmin as f64)
    }

    /// The mean `E[X] = ζ(β−1, xmin) / ζ(β, xmin)` (infinite for `β ≤ 2`).
    pub fn mean(&self) -> f64 {
        if self.beta <= 2.0 {
            f64::INFINITY
        } else {
            hurwitz_zeta(self.beta - 1.0, self.xmin as f64)
                / hurwitz_zeta(self.beta, self.xmin as f64)
        }
    }

    /// Draws one sample with the CSN inverse-transform approximation
    /// `x = ⌊(xmin − ½)(1 − u)^{-1/(β−1)} + ½⌋` (CSN eq. D.6; excellent for
    /// `xmin ≳ 5`, adequate above `xmin = 1`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let x = (self.xmin as f64 - 0.5) * (1.0 - u).powf(-1.0 / (self.beta - 1.0)) + 0.5;
        // Clamp to avoid absurd overflow draws from the heavy tail.
        x.min(1e15) as u64
    }
}

/// The result of fitting a power law with the CSN method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent `β̂`.
    pub beta: f64,
    /// Estimated lower bound `x̂min`.
    pub xmin: u64,
    /// Number of tail observations (`x ≥ x̂min`).
    pub n_tail: usize,
    /// KS distance between the data and the fitted model.
    pub ks: f64,
}

/// Discrete MLE of `β` for the tail `x ≥ xmin`: maximises
/// `L(β) = −n·ln ζ(β, xmin) − β·Σ ln x`, by golden-section search.
pub fn fit_beta(tail: &[u64], xmin: u64) -> f64 {
    assert!(!tail.is_empty(), "fit_beta needs data");
    let n = tail.len() as f64;
    let sum_ln: f64 = tail.iter().map(|&x| (x as f64).ln()).sum();
    let nll = |beta: f64| n * hurwitz_zeta(beta, xmin as f64).ln() + beta * sum_ln;
    // Golden-section minimisation on (1.01, 8).
    let (mut lo, mut hi) = (1.0001f64, 8.0f64);
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (hi - phi * (hi - lo), lo + phi * (hi - lo));
    let (mut fa, mut fb) = (nll(a), nll(b));
    for _ in 0..80 {
        if fa < fb {
            hi = b;
            b = a;
            fb = fa;
            a = hi - phi * (hi - lo);
            fa = nll(a);
        } else {
            lo = a;
            a = b;
            fa = fb;
            b = lo + phi * (hi - lo);
            fb = nll(b);
        }
    }
    0.5 * (lo + hi)
}

/// KS distance between the empirical tail CDF and the fitted model.
pub fn ks_distance(tail_sorted: &[u64], law: &PowerLaw) -> f64 {
    let n = tail_sorted.len() as f64;
    let mut d: f64 = 0.0;
    let mut i = 0;
    while i < tail_sorted.len() {
        let x = tail_sorted[i];
        // Count of observations <= x.
        let j = tail_sorted.partition_point(|&v| v <= x);
        let emp_cdf = j as f64 / n;
        let emp_cdf_below = i as f64 / n;
        // Discrete KS: compare the step functions consistently on both
        // sides of the jump at x.
        d = d.max((emp_cdf - (1.0 - law.ccdf(x + 1))).abs());
        d = d.max((emp_cdf_below - (1.0 - law.ccdf(x))).abs());
        i = j;
    }
    d
}

/// Fits `(β̂, x̂min)` by scanning candidate `xmin` values and keeping the one
/// whose MLE fit minimises the KS distance (CSN Section 3.3).
///
/// `data` is the full sample (body and tail); values below a candidate
/// `xmin` are ignored for that candidate. Candidates with fewer than
/// `min_tail` observations are skipped (the fit would be meaningless).
pub fn fit_power_law(data: &[u64], min_tail: usize) -> Option<PowerLawFit> {
    let mut sorted: Vec<u64> = data.iter().copied().filter(|&x| x >= 1).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_unstable();
    let mut candidates: Vec<u64> = sorted.clone();
    candidates.dedup();
    // Cap the scan at 100 log-spaced candidates to bound the cost on large
    // datasets (the KS curve is smooth).
    if candidates.len() > 100 {
        let step = candidates.len() as f64 / 100.0;
        candidates = (0..100)
            .map(|i| candidates[(i as f64 * step) as usize])
            .collect();
    }
    let mut best: Option<PowerLawFit> = None;
    for &xmin in &candidates {
        let start = sorted.partition_point(|&v| v < xmin);
        let tail = &sorted[start..];
        if tail.len() < min_tail {
            break; // later candidates have even smaller tails
        }
        let beta = fit_beta(tail, xmin);
        let law = PowerLaw::new(beta, xmin);
        let ks = ks_distance(tail, &law);
        if best.is_none_or(|b| ks < b.ks) {
            best = Some(PowerLawFit {
                beta,
                xmin,
                n_tail: tail.len(),
                ks,
            });
        }
    }
    best
}

/// CSN goodness-of-fit: semi-parametric bootstrap p-value.
///
/// Each replicate keeps the body (`x < x̂min`) by resampling the observed
/// body and draws the tail from the fitted law, then refits (including the
/// `x̂min` scan). The p-value is the fraction of replicates whose KS
/// distance exceeds the observed one — "the power-law hypothesis is ruled
/// out if p ≤ 0.1" (Section 6.1).
pub fn goodness_of_fit<R: Rng + ?Sized>(
    data: &[u64],
    fit: &PowerLawFit,
    replicates: usize,
    rng: &mut R,
) -> f64 {
    let law = PowerLaw::new(fit.beta, fit.xmin);
    let body: Vec<u64> = data
        .iter()
        .copied()
        .filter(|&x| x >= 1 && x < fit.xmin)
        .collect();
    let n_total = body.len() + fit.n_tail;
    let p_tail = fit.n_tail as f64 / n_total as f64;
    let mut exceed = 0usize;
    for _ in 0..replicates {
        let synth: Vec<u64> = (0..n_total)
            .map(|_| {
                if body.is_empty() || rng.gen_range(0.0..1.0) < p_tail {
                    law.sample(rng)
                } else {
                    body[rng.gen_range(0..body.len())]
                }
            })
            .collect();
        if let Some(refit) = fit_power_law(&synth, 10) {
            if refit.ks > fit.ks {
                exceed += 1;
            }
        }
    }
    exceed as f64 / replicates as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnta_util::rng::StdRng;

    #[test]
    fn hurwitz_zeta_matches_riemann() {
        // ζ(2, 1) = π²/6.
        let z = hurwitz_zeta(2.0, 1.0);
        assert!((z - std::f64::consts::PI * std::f64::consts::PI / 6.0).abs() < 1e-9);
        // ζ(4, 1) = π⁴/90.
        let z = hurwitz_zeta(4.0, 1.0);
        assert!((z - std::f64::consts::PI.powi(4) / 90.0).abs() < 1e-9);
        // Recurrence: ζ(s, a) = ζ(s, a+1) + a^{-s}.
        for (s, a) in [(1.5, 3.0), (2.82, 85.0), (3.2, 31.0)] {
            let lhs = hurwitz_zeta(s, a);
            let rhs = hurwitz_zeta(s, a + 1.0) + a.powf(-s);
            assert!((lhs - rhs).abs() < 1e-10, "s={s} a={a}");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let law = PowerLaw::new(2.5, 3);
        let sum: f64 = (3..30_000).map(|x| law.pmf(x)).sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum = {sum}");
        assert_eq!(law.pmf(2), 0.0);
    }

    #[test]
    fn ccdf_properties() {
        let law = PowerLaw::new(2.2, 5);
        assert_eq!(law.ccdf(5), 1.0);
        assert_eq!(law.ccdf(1), 1.0);
        let mut prev = 1.0;
        for x in 6..100 {
            let c = law.ccdf(x);
            assert!(c < prev, "ccdf decreasing at {x}");
            prev = c;
        }
        // ccdf(x) − ccdf(x+1) = pmf(x).
        for x in [5u64, 10, 50] {
            let diff = law.ccdf(x) - law.ccdf(x + 1);
            assert!((diff - law.pmf(x)).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn mean_is_finite_above_two() {
        let law = PowerLaw::new(3.0, 1);
        // E[X] = ζ(2)/ζ(3) ≈ 1.644934/1.202057 ≈ 1.3684.
        assert!((law.mean() - 1.3684).abs() < 1e-3);
        assert!(PowerLaw::new(1.9, 1).mean().is_infinite());
    }

    #[test]
    fn sample_mean_close_to_theory() {
        let law = PowerLaw::new(3.5, 10);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| law.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let theory = law.mean();
        assert!(
            (mean - theory).abs() / theory < 0.05,
            "sampled {mean}, theory {theory}"
        );
    }

    #[test]
    fn samples_respect_xmin() {
        let law = PowerLaw::new(2.0, 7);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(law.sample(&mut rng) >= 7);
        }
    }

    #[test]
    fn mle_recovers_beta() {
        let mut rng = StdRng::seed_from_u64(7);
        for (beta, xmin) in [(2.2, 10u64), (3.2, 31), (2.82, 85)] {
            let law = PowerLaw::new(beta, xmin);
            let tail: Vec<u64> = (0..20_000).map(|_| law.sample(&mut rng)).collect();
            let est = fit_beta(&tail, xmin);
            assert!(
                (est - beta).abs() < 0.1,
                "beta={beta} xmin={xmin} est={est}"
            );
        }
    }

    #[test]
    fn full_fit_recovers_parameters_with_body_noise() {
        let mut rng = StdRng::seed_from_u64(11);
        let law = PowerLaw::new(2.5, 20);
        let mut data: Vec<u64> = (0..8000).map(|_| law.sample(&mut rng)).collect();
        // Add a non-power-law body below xmin.
        for _ in 0..12_000 {
            data.push(rng.gen_range(1..20));
        }
        let fit = fit_power_law(&data, 50).expect("fit exists");
        assert!((fit.beta - 2.5).abs() < 0.2, "β̂ = {}", fit.beta);
        assert!(
            (10..=40).contains(&fit.xmin),
            "x̂min = {} should be near 20",
            fit.xmin
        );
        assert!(fit.ks < 0.05, "good fit: KS = {}", fit.ks);
    }

    #[test]
    fn goodness_of_fit_accepts_true_power_law() {
        let mut rng = StdRng::seed_from_u64(3);
        let law = PowerLaw::new(2.8, 15);
        let data: Vec<u64> = (0..3000).map(|_| law.sample(&mut rng)).collect();
        let fit = fit_power_law(&data, 50).unwrap();
        let p = goodness_of_fit(&data, &fit, 30, &mut rng);
        assert!(p > 0.1, "true power law should not be rejected: p = {p}");
    }

    #[test]
    fn goodness_of_fit_rejects_uniform_data() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u64> = (0..3000).map(|_| rng.gen_range(1..1000)).collect();
        let fit = fit_power_law(&data, 50).unwrap();
        let p = goodness_of_fit(&data, &fit, 30, &mut rng);
        assert!(p <= 0.2, "uniform data should look bad: p = {p}");
    }

    #[test]
    fn ks_distance_small_for_true_sample() {
        // Data drawn from the model has small KS. (xmin = 10: the CSN
        // inverse-transform approximation is only accurate for xmin ≳ 5.)
        let law = PowerLaw::new(2.0, 10);
        let mut rng = StdRng::seed_from_u64(9);
        let mut tail: Vec<u64> = (0..30_000).map(|_| law.sample(&mut rng)).collect();
        tail.sort_unstable();
        let d = ks_distance(&tail, &law);
        assert!(d < 0.02, "KS = {d}");
    }

    #[test]
    fn fit_handles_degenerate_input() {
        assert!(fit_power_law(&[], 10).is_none());
        assert!(fit_power_law(&[0, 0, 0], 1).is_none());
        // All-equal data still returns something sane.
        let fit = fit_power_law(&[5; 100], 10).unwrap();
        assert_eq!(fit.xmin, 5);
    }
}
