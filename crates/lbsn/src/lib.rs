//! Synthetic LBSN data and power-law statistics for the kNNTA experiments.
//!
//! The paper's evaluation (Section 8) runs on four location-based social
//! network datasets — NYC, LA (Foursquare tips), GW (Gowalla) and GS
//! (Foursquare-via-Twitter) — which are proprietary / no longer
//! distributable. This crate substitutes statistically faithful synthetic
//! datasets, calibrated with the paper's own published numbers:
//!
//! * [`datasets`] — generators matching Table 4 (sizes, time spans) and
//!   Table 2 (power-law tails), with clustered spatial positions, growth
//!   over time, the effective-POI thresholds, and time-prefix snapshots for
//!   the Figure 8 growth experiment.
//! * [`powerlaw`] — the discrete power law: Hurwitz zeta, sampling, and the
//!   full Clauset–Shalizi–Newman fitting procedure (MLE `β̂`, KS-minimising
//!   `x̂min`, bootstrap p-value) that Section 6.1 uses to validate the
//!   power-law hypothesis — so Table 2 itself is reproducible on the
//!   synthetic data.
//! * [`spatial`] — the Gaussian-mixture city model.
//! * [`workload`] — the query workload of Section 8 (uniform query points,
//!   interval lengths `2^0 … 2^9` days).

#![warn(missing_docs)]

pub mod datasets;
pub mod powerlaw;
pub mod spatial;
pub mod workload;

pub use datasets::{all_specs, gs, gw, la, nyc, spec_by_name, DatasetSpec, LbsnDataset};
pub use powerlaw::{fit_power_law, goodness_of_fit, hurwitz_zeta, PowerLaw, PowerLawFit};
pub use spatial::ClusterModel;
pub use workload::{IntervalAnchor, Workload};
