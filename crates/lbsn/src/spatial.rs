//! Spatial model: clustered POI positions (Gaussian-mixture "cities").

use knnta_util::rng::Rng;
use rand_distr_lite::Normal;

/// A Gaussian mixture over a bounding box, modelling the clustered spatial
/// distribution of LBSN locations (city centres, suburbs, highways…).
#[derive(Debug, Clone)]
pub struct ClusterModel {
    /// Data-space bounding box: `[min_x, min_y]` and `[max_x, max_y]`.
    pub bounds: ([f64; 2], [f64; 2]),
    clusters: Vec<Cluster>,
    /// Cumulative weights for O(log K) sampling.
    cum_weights: Vec<f64>,
}

#[derive(Debug, Clone)]
struct Cluster {
    center: [f64; 2],
    sigma: f64,
    weight: f64,
}

impl ClusterModel {
    /// A model with `k` clusters placed uniformly in `bounds`, Zipf-weighted
    /// (the first cluster is the "downtown" with the most POIs), with
    /// standard deviation `sigma_frac` of the box extent.
    pub fn generate<R: Rng + ?Sized>(
        bounds: ([f64; 2], [f64; 2]),
        k: usize,
        sigma_frac: f64,
        rng: &mut R,
    ) -> Self {
        assert!(k >= 1, "at least one cluster");
        let extent = ((bounds.1[0] - bounds.0[0]).abs()).max((bounds.1[1] - bounds.0[1]).abs());
        let clusters: Vec<Cluster> = (0..k)
            .map(|i| Cluster {
                center: [
                    rng.gen_range(bounds.0[0]..=bounds.1[0]),
                    rng.gen_range(bounds.0[1]..=bounds.1[1]),
                ],
                sigma: extent * sigma_frac * rng.gen_range(0.5..1.5),
                weight: 1.0 / (i + 1) as f64, // Zipf weights
            })
            .collect();
        let total: f64 = clusters.iter().map(|c| c.weight).sum();
        let mut cum = 0.0;
        let cum_weights = clusters
            .iter()
            .map(|c| {
                cum += c.weight / total;
                cum
            })
            .collect();
        ClusterModel {
            bounds,
            clusters,
            cum_weights,
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Samples one position (rejection-clamped into the bounds).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> [f64; 2] {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cum_weights.partition_point(|&c| c < u);
        let c = &self.clusters[idx.min(self.clusters.len() - 1)];
        let normal = Normal::new(0.0, c.sigma);
        let x = (c.center[0] + normal.sample(rng)).clamp(self.bounds.0[0], self.bounds.1[0]);
        let y = (c.center[1] + normal.sample(rng)).clamp(self.bounds.0[1], self.bounds.1[1]);
        [x, y]
    }
}

/// A tiny Box–Muller normal sampler on top of the in-repo [`Rng`] trait,
/// so no distribution crate is needed.
mod rand_distr_lite {
    use knnta_util::rng::Rng;

    pub struct Normal {
        mean: f64,
        sd: f64,
    }

    impl Normal {
        pub fn new(mean: f64, sd: f64) -> Self {
            Normal { mean, sd }
        }

        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller transform.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            self.mean + self.sd * z
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knnta_util::rng::StdRng;

    #[test]
    fn samples_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let bounds = ([0.0, -10.0], [100.0, 10.0]);
        let model = ClusterModel::generate(bounds, 5, 0.02, &mut rng);
        assert_eq!(model.cluster_count(), 5);
        for _ in 0..5000 {
            let [x, y] = model.sample(&mut rng);
            assert!((0.0..=100.0).contains(&x));
            assert!((-10.0..=10.0).contains(&y));
        }
    }

    #[test]
    fn positions_are_clustered() {
        // With tight clusters, the average nearest-sample distance is far
        // below the uniform expectation.
        let mut rng = StdRng::seed_from_u64(2);
        let bounds = ([0.0, 0.0], [1000.0, 1000.0]);
        let model = ClusterModel::generate(bounds, 4, 0.01, &mut rng);
        let pts: Vec<[f64; 2]> = (0..400).map(|_| model.sample(&mut rng)).collect();
        // Mean distance to the overall centroid should be much smaller than
        // for a uniform sample (≈ 382 for a unit square scaled by 1000).
        let spread = {
            let cx = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
            let cy = pts.iter().map(|p| p[1]).sum::<f64>() / pts.len() as f64;
            pts.iter()
                .map(|p| ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt())
                .sum::<f64>()
                / pts.len() as f64
        };
        assert!(spread < 450.0, "clustered spread {spread}");
    }

    #[test]
    fn deterministic_under_seed() {
        let bounds = ([0.0, 0.0], [1.0, 1.0]);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let m1 = ClusterModel::generate(bounds, 3, 0.05, &mut r1);
        let m2 = ClusterModel::generate(bounds, 3, 0.05, &mut r2);
        for _ in 0..10 {
            assert_eq!(m1.sample(&mut r1), m2.sample(&mut r2));
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = super::rand_distr_lite::Normal::new(5.0, 2.0);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }
}
