//! An R\*-tree with pluggable entry grouping strategies and per-node
//! augmentation — the spatial substrate of the TAR-tree.
//!
//! The paper builds the TAR-tree as "a variant of the R-tree" whose
//! "algorithms for indexing the spatial extents of the POIs remain the same"
//! (Section 4.1), implemented with the R\*-tree of Beckmann et al. (Section
//! 8). What varies between the compared indexes is the **entry grouping
//! strategy** (Section 5): how an insertion chooses its subtree, how
//! overflowing nodes split, and which entries a forced reinsert evicts.
//!
//! This crate provides, from scratch:
//!
//! * [`Rect`] — `D`-dimensional boxes with the R\* geometric primitives
//!   (area, margin, overlap, enlargement, MINDIST).
//! * [`RStarTree`] — an arena-backed R\*-tree over boxes, generic over the
//!   data item, a per-node [`Augmentation`] (the TAR-tree stores its TIA
//!   summaries there) and a [`GroupingStrategy`].
//! * [`RStarGrouping`] — the classic R\* heuristics, usable in any dimension
//!   (2-D ⇒ the paper's IND-spa baseline, 3-D ⇒ the integral grouping of the
//!   TAR-tree).
//! * [`RTreeParams`] — fanout derived from the node size in bytes exactly as
//!   in the paper's setup (1024-byte nodes ⇒ 50 two-dimensional or 36
//!   three-dimensional entries).
//! * [`PackedTree`] — a packed immutable single-buffer static tree (the
//!   read-optimised serving layout; byte format specified in
//!   `docs/FORMAT.md`), bulk-loaded bottom-up from a caller-sorted item
//!   sequence with inline temporal-aggregate prefix blocks.
//!
//! Logical node accesses — the paper's primary cost metric — are counted
//! through [`pagestore::AccessStats`]; query entry points count accesses,
//! maintenance does not.

#![warn(missing_docs)]

mod bulk;
mod geom;
mod node;
mod packed;
mod paged;
mod params;
mod strategy;
mod tree;

pub use geom::{dist, Rect};
pub use node::{Entry, EntryPayload, Node, NodeId};
pub use packed::{
    PackItem, PackedNode, PackedTree, TiaBlock, PACKED_HEADER_WORDS, PACKED_MAGIC, PACKED_VERSION,
};
pub use paged::{NodeCodec, PagedNodeStore};
pub use params::{RTreeParams, NODE_HEADER_BYTES};
pub use strategy::{EntryView, GroupingStrategy, RStarGrouping};
pub use tree::{Augmentation, NoAug, RStarTree};
