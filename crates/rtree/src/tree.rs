//! The R*-tree with pluggable grouping and node augmentation.

use crate::geom::Rect;
use crate::node::{Arena, Entry, EntryPayload, Node, NodeId};
use crate::params::RTreeParams;
use crate::strategy::{EntryView, GroupingStrategy};
use pagestore::AccessStats;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Per-node augmented values maintained by the tree.
///
/// The TAR-tree's TIAs are an augmentation: every leaf entry carries its
/// POI's aggregate series and every internal entry the per-epoch **max** of
/// its child node's series (Section 4.1). The tree keeps these values
/// consistent through inserts, splits, reinserts and deletes.
pub trait Augmentation<T> {
    /// The augmented value type.
    type Value: Clone;

    /// The value of a leaf (data) entry.
    fn leaf_value(&self, item: &T) -> Self::Value;

    /// The identity for [`Augmentation::merge`].
    fn empty(&self) -> Self::Value;

    /// Folds a child value into an accumulator (per-epoch max for TIAs).
    fn merge(&self, acc: &mut Self::Value, child: &Self::Value);
}

/// The trivial augmentation: no per-node value.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAug;

impl<T> Augmentation<T> for NoAug {
    type Value = ();

    fn leaf_value(&self, _item: &T) {}

    fn empty(&self) {}

    fn merge(&self, _acc: &mut (), _child: &()) {}
}

/// An R\*-tree over `D`-dimensional boxes with data items `T`, per-node
/// augmentation `A` and entry grouping strategy `S`.
///
/// * `D = 2`, [`crate::RStarGrouping`] → the paper's IND-spa baseline;
/// * `D = 3`, [`crate::RStarGrouping`] → the TAR-tree's integral grouping;
/// * `D = 2`, an aggregate-distance strategy → the IND-agg baseline.
///
/// The arena-backed nodes are "in memory" exactly as in the paper's setup,
/// while logical node accesses during queries are counted in the shared
/// [`AccessStats`].
///
/// ```
/// use rtree::{NoAug, RStarGrouping, RStarTree, RTreeParams, Rect};
/// use pagestore::AccessStats;
///
/// let mut tree: RStarTree<2, &str, NoAug, RStarGrouping> = RStarTree::new(
///     RTreeParams::with_max_entries(8),
///     NoAug,
///     RStarGrouping,
///     AccessStats::new(),
/// );
/// tree.insert(Rect::point([1.0, 1.0]), "home");
/// tree.insert(Rect::point([5.0, 5.0]), "office");
/// tree.insert(Rect::point([9.0, 9.0]), "gym");
/// let nearest = tree.nearest(&[4.0, 4.0], 1);
/// assert_eq!(*nearest[0].1, "office");
/// ```
#[derive(Debug)]
pub struct RStarTree<const D: usize, T, A, S>
where
    A: Augmentation<T>,
    S: GroupingStrategy<D, A::Value>,
{
    arena: Arena<D, T, A::Value>,
    root: NodeId,
    params: RTreeParams,
    stats: AccessStats,
    aug: A,
    strategy: S,
    len: usize,
}

impl<const D: usize, T, A, S> RStarTree<D, T, A, S>
where
    A: Augmentation<T>,
    S: GroupingStrategy<D, A::Value>,
{
    /// An empty tree.
    pub fn new(params: RTreeParams, aug: A, strategy: S, stats: AccessStats) -> Self {
        let mut arena = Arena::new();
        let root = arena.alloc(Node::new(0));
        RStarTree {
            arena,
            root,
            params,
            stats,
            aug,
            strategy,
            len: 0,
        }
    }

    /// Number of data items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (root level; 0 for a leaf root).
    pub fn height(&self) -> u32 {
        self.arena.get(self.root).level
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// The structural parameters.
    pub fn params(&self) -> &RTreeParams {
        &self.params
    }

    /// The shared access statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// The root node id.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// Reads a node *without* counting a node access (maintenance paths).
    pub fn node(&self, id: NodeId) -> &Node<D, T, A::Value> {
        self.arena.get(id)
    }

    /// Reads a node and counts one logical node access (query paths); leaf
    /// accesses are additionally counted separately (the Section 6.3 cost
    /// analysis estimates leaf accesses only).
    pub fn access_node(&self, id: NodeId) -> &Node<D, T, A::Value> {
        self.stats.record_node_access();
        let node = self.arena.get(id);
        if node.is_leaf() {
            self.stats.record_leaf_access();
        }
        node
    }

    /// Inserts `item` with bounding box `rect`.
    pub fn insert(&mut self, rect: Rect<D>, item: T) {
        let aug = self.aug.leaf_value(&item);
        self.insert_with_aug(rect, item, aug);
    }

    /// Inserts `item` with an explicit leaf augmentation value (for
    /// augmentations whose leaf values are external state, like the
    /// TAR-tree's per-POI aggregate series).
    pub fn insert_with_aug(&mut self, rect: Rect<D>, item: T, aug: A::Value) {
        self.len += 1;
        let entry = Entry {
            rect,
            aug,
            payload: EntryPayload::Data(item),
        };
        let mut reinserted = HashSet::new();
        self.insert_entry(entry, 0, &mut reinserted);
    }

    /// Removes one item matching `pred` whose box intersects `search`.
    /// Returns the removed item.
    pub fn remove<F>(&mut self, search: &Rect<D>, pred: F) -> Option<T>
    where
        F: Fn(&T) -> bool,
    {
        let path = self.find_leaf(self.root, search, &pred, &mut Vec::new())?;
        let (leaf_id, entry_idx) = *path.last().expect("non-empty path");
        let entry = self.arena.get_mut(leaf_id).entries.remove(entry_idx);
        let EntryPayload::Data(item) = entry.payload else {
            unreachable!("find_leaf returns data entries")
        };
        self.len -= 1;
        self.condense(&path[..path.len() - 1], leaf_id);
        Some(item)
    }

    /// All items whose boxes intersect `query` (counts node accesses).
    pub fn range_query(&self, query: &Rect<D>) -> Vec<&T> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.access_node(id);
            for e in &node.entries {
                if e.rect.intersects(query) {
                    match &e.payload {
                        EntryPayload::Data(t) => out.push(t),
                        EntryPayload::Child(c) => stack.push(*c),
                    }
                }
            }
        }
        out
    }

    /// The `k` items nearest to `point` by Euclidean distance, closest
    /// first (best-first search; counts node accesses).
    pub fn nearest(&self, point: &[f64; D], k: usize) -> Vec<(f64, &T)> {
        enum Cand<'a, T> {
            Node(NodeId),
            Item(&'a T),
        }
        struct Pq<'a, T> {
            dist2: f64,
            cand: Cand<'a, T>,
        }
        impl<T> PartialEq for Pq<'_, T> {
            fn eq(&self, o: &Self) -> bool {
                self.dist2 == o.dist2
            }
        }
        impl<T> Eq for Pq<'_, T> {}
        impl<T> PartialOrd for Pq<'_, T> {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }
        impl<T> Ord for Pq<'_, T> {
            fn cmp(&self, o: &Self) -> Ordering {
                // Reverse for a min-heap.
                o.dist2.partial_cmp(&self.dist2).unwrap_or(Ordering::Equal)
            }
        }
        let mut out = Vec::with_capacity(k);
        if k == 0 {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(Pq {
            dist2: 0.0,
            cand: Cand::Node(self.root),
        });
        while let Some(Pq { dist2, cand }) = heap.pop() {
            match cand {
                Cand::Item(t) => {
                    out.push((dist2.sqrt(), t));
                    if out.len() == k {
                        break;
                    }
                }
                Cand::Node(id) => {
                    let node = self.access_node(id);
                    for e in &node.entries {
                        let d2 = e.rect.min_dist2(point);
                        let cand = match &e.payload {
                            EntryPayload::Data(t) => Cand::Item(t),
                            EntryPayload::Child(c) => Cand::Node(*c),
                        };
                        heap.push(Pq { dist2: d2, cand });
                    }
                }
            }
        }
        out
    }

    /// All live node ids, root first (maintenance order, no access
    /// counting).
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.node_count());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for e in &self.arena.get(id).entries {
                if let EntryPayload::Child(c) = e.payload {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Iterates over all `(rect, item)` pairs (maintenance order, no access
    /// counting).
    pub fn items(&self) -> Vec<(&Rect<D>, &T)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            for e in &self.arena.get(id).entries {
                match &e.payload {
                    EntryPayload::Data(t) => out.push((&e.rect, t)),
                    EntryPayload::Child(c) => stack.push(*c),
                }
            }
        }
        out
    }

    /// Applies `f` to every data entry whose subtree box passes `filter`;
    /// `f` returns `Some(new_aug)` to replace an entry's augmented value.
    /// Augmentations along changed paths are recomputed bottom-up. Returns
    /// the number of changed leaf entries.
    ///
    /// This is the paper's check-in digestion (Section 4.2): descend only
    /// into entries that contain an updated POI, store the new aggregate at
    /// the leaf, and refresh the per-epoch max on the way back up.
    pub fn update_leaf_augs<Filter, F>(&mut self, filter: &Filter, f: &mut F) -> usize
    where
        Filter: Fn(&Rect<D>) -> bool,
        F: FnMut(&T, &A::Value) -> Option<A::Value>,
    {
        self.update_augs_rec(self.root, filter, f)
    }

    fn update_augs_rec<Filter, F>(&mut self, id: NodeId, filter: &Filter, f: &mut F) -> usize
    where
        Filter: Fn(&Rect<D>) -> bool,
        F: FnMut(&T, &A::Value) -> Option<A::Value>,
    {
        let node = self.arena.get(id);
        let mut changed = 0;
        if node.is_leaf() {
            let node = self.arena.get_mut(id);
            for e in &mut node.entries {
                if !filter(&e.rect) {
                    continue;
                }
                if let EntryPayload::Data(t) = &e.payload {
                    if let Some(new) = f(t, &e.aug) {
                        e.aug = new;
                        changed += 1;
                    }
                }
            }
        } else {
            let children: Vec<(usize, NodeId)> = node
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| filter(&e.rect))
                .filter_map(|(i, e)| e.child_id().map(|c| (i, c)))
                .collect();
            for (i, child) in children {
                let child_changed = self.update_augs_rec(child, filter, f);
                if child_changed > 0 {
                    let new_aug = self.summarize_aug(child);
                    self.arena.get_mut(id).entries[i].aug = new_aug;
                    changed += child_changed;
                }
            }
        }
        changed
    }

    /// Checks every structural invariant; panics with a description on the
    /// first violation. Intended for tests.
    pub fn validate(&self)
    where
        A::Value: PartialEq + std::fmt::Debug,
    {
        let mut item_count = 0;
        self.validate_rec(self.root, true, &mut item_count);
        assert_eq!(item_count, self.len, "len() matches stored items");
    }

    fn validate_rec(&self, id: NodeId, is_root: bool, item_count: &mut usize) {
        let node = self.arena.get(id);
        assert!(
            node.len() <= self.params.max_entries,
            "{id} exceeds max entries"
        );
        if !is_root {
            assert!(
                node.len() >= self.params.min_entries,
                "{id} under min entries: {} < {}",
                node.len(),
                self.params.min_entries
            );
        }
        for e in &node.entries {
            match &e.payload {
                EntryPayload::Data(_) => {
                    assert!(node.is_leaf(), "data entry in internal {id}");
                    *item_count += 1;
                }
                EntryPayload::Child(c) => {
                    assert!(!node.is_leaf(), "child entry in leaf {id}");
                    let child = self.arena.get(*c);
                    assert_eq!(child.level + 1, node.level, "level gap at {id}");
                    let rect = child.bounding_rect();
                    assert_eq!(e.rect, rect, "stale rect for child {c} of {id}");
                    self.validate_rec(*c, false, item_count);
                }
            }
        }
    }

    /// Recomputed augmentation summary of a node (merge over its entries).
    fn summarize_aug(&self, id: NodeId) -> A::Value {
        let node = self.arena.get(id);
        let mut acc = self.aug.empty();
        for e in &node.entries {
            self.aug.merge(&mut acc, &e.aug);
        }
        acc
    }

    /// Checks augmentation consistency everywhere (test helper).
    pub fn validate_augs(&self)
    where
        A::Value: PartialEq + std::fmt::Debug,
    {
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            for e in &self.arena.get(id).entries {
                if let EntryPayload::Child(c) = e.payload {
                    let expect = self.summarize_aug(c);
                    assert!(e.aug == expect, "stale aug for child {c} of {id}");
                    stack.push(c);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Bulk-load support (see bulk.rs)
    // ------------------------------------------------------------------

    pub(crate) fn alloc_node(&mut self, node: Node<D, T, A::Value>) -> NodeId {
        self.arena.alloc(node)
    }

    pub(crate) fn child_entry_public(&self, id: NodeId) -> Entry<D, T, A::Value> {
        self.child_entry(id)
    }

    pub(crate) fn replace_root_for_bulk(&mut self, root: NodeId, len: usize) {
        debug_assert!(self.arena.get(self.root).is_empty());
        self.arena.free(self.root);
        self.root = root;
        self.len = len;
    }

    /// Validates structure like [`RStarTree::validate`] but without the
    /// minimum-fill condition: STR packing legitimately leaves the last node
    /// of each level underfull.
    pub fn validate_bulk(&self)
    where
        A::Value: PartialEq + std::fmt::Debug,
    {
        let mut item_count = 0;
        self.validate_bulk_rec(self.root, &mut item_count);
        assert_eq!(item_count, self.len, "len() matches stored items");
        self.validate_augs();
    }

    fn validate_bulk_rec(&self, id: NodeId, item_count: &mut usize) {
        let node = self.arena.get(id);
        assert!(
            node.len() <= self.params.max_entries,
            "{id} exceeds max entries"
        );
        for e in &node.entries {
            match &e.payload {
                EntryPayload::Data(_) => {
                    assert!(node.is_leaf(), "data entry in internal {id}");
                    *item_count += 1;
                }
                EntryPayload::Child(c) => {
                    assert!(!node.is_leaf(), "child entry in leaf {id}");
                    let child = self.arena.get(*c);
                    assert_eq!(child.level + 1, node.level, "level gap at {id}");
                    assert_eq!(e.rect, child.bounding_rect(), "stale rect at {id}");
                    self.validate_bulk_rec(*c, item_count);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Insertion machinery
    // ------------------------------------------------------------------

    fn insert_entry(
        &mut self,
        entry: Entry<D, T, A::Value>,
        target_level: u32,
        reinserted: &mut HashSet<u32>,
    ) {
        // Descend to a node at target_level, recording the path.
        let mut path: Vec<(NodeId, usize)> = Vec::new();
        let mut cur = self.root;
        while self.arena.get(cur).level > target_level {
            let node = self.arena.get(cur);
            let views: Vec<EntryView<'_, D, A::Value>> = node
                .entries
                .iter()
                .map(|e| EntryView {
                    rect: &e.rect,
                    aug: &e.aug,
                })
                .collect();
            let new_view = EntryView {
                rect: &entry.rect,
                aug: &entry.aug,
            };
            let idx = self
                .strategy
                .choose_subtree(&views, &new_view, node.level == 1);
            let child = node.entries[idx]
                .child_id()
                .expect("internal nodes hold child entries");
            path.push((cur, idx));
            cur = child;
        }
        self.arena.get_mut(cur).entries.push(entry);
        self.fixup(path, cur, reinserted);
    }

    /// Resolves overflow from `cur` upward and refreshes summaries along the
    /// remaining path.
    fn fixup(
        &mut self,
        mut path: Vec<(NodeId, usize)>,
        mut cur: NodeId,
        reinserted: &mut HashSet<u32>,
    ) {
        loop {
            if self.arena.get(cur).len() <= self.params.max_entries {
                self.refresh_path(&path);
                return;
            }
            let level = self.arena.get(cur).level;
            let can_reinsert = self.params.forced_reinsert
                && cur != self.root
                && !reinserted.contains(&level);
            if can_reinsert {
                reinserted.insert(level);
                let removed = self.extract_reinsert_candidates(cur);
                // Bring every summary up to date before reinserting: the
                // reinsertion descends from the root.
                self.refresh_path(&path);
                if removed.is_empty() {
                    // Strategy declined; fall through to a split next round.
                    reinserted.insert(level);
                    continue;
                }
                for e in removed {
                    self.insert_entry(e, level, reinserted);
                }
                return;
            }
            // Split `cur`.
            let new_id = self.split_node(cur);
            if cur == self.root {
                let mut root = Node::new(level + 1);
                root.entries.push(self.child_entry(cur));
                root.entries.push(self.child_entry(new_id));
                self.root = self.arena.alloc(root);
                return;
            }
            let (parent, idx) = path.pop().expect("non-root node has a parent");
            let refreshed = self.child_entry(cur);
            self.arena.get_mut(parent).entries[idx] = refreshed;
            let sibling = self.child_entry(new_id);
            self.arena.get_mut(parent).entries.push(sibling);
            cur = parent;
        }
    }

    /// A parent entry summarising node `id`.
    fn child_entry(&self, id: NodeId) -> Entry<D, T, A::Value> {
        let node = self.arena.get(id);
        Entry {
            rect: node.bounding_rect(),
            aug: self.summarize_aug(id),
            payload: EntryPayload::Child(id),
        }
    }

    /// Recomputes rect/aug summaries along a root-to-node path, deepest
    /// first.
    fn refresh_path(&mut self, path: &[(NodeId, usize)]) {
        for &(node_id, idx) in path.iter().rev() {
            let child = self.arena.get(node_id).entries[idx]
                .child_id()
                .expect("path entries are child entries");
            let refreshed = self.child_entry(child);
            self.arena.get_mut(node_id).entries[idx] = refreshed;
        }
    }

    /// Removes the strategy's reinsert candidates from `id` and returns them
    /// in reinsertion order.
    fn extract_reinsert_candidates(&mut self, id: NodeId) -> Vec<Entry<D, T, A::Value>> {
        let node = self.arena.get(id);
        let views: Vec<EntryView<'_, D, A::Value>> = node
            .entries
            .iter()
            .map(|e| EntryView {
                rect: &e.rect,
                aug: &e.aug,
            })
            .collect();
        let order = self
            .strategy
            .reinsert_candidates(&views, self.params.reinsert_count.min(node.len() - 1));
        debug_assert!(order.iter().collect::<HashSet<_>>().len() == order.len());
        // Extract preserving the strategy's reinsertion order.
        let node = self.arena.get_mut(id);
        let mut marked: Vec<Option<Entry<D, T, A::Value>>> =
            node.entries.iter().map(|_| None).collect();
        let keep_mask: HashSet<usize> = order.iter().copied().collect();
        let mut kept = Vec::with_capacity(node.entries.len());
        for (i, e) in node.entries.drain(..).enumerate() {
            if keep_mask.contains(&i) {
                marked[i] = Some(e);
            } else {
                kept.push(e);
            }
        }
        node.entries = kept;
        order
            .into_iter()
            .map(|i| marked[i].take().expect("candidate extracted once"))
            .collect()
    }

    /// Splits node `id` in place; returns the new sibling's id.
    fn split_node(&mut self, id: NodeId) -> NodeId {
        let node = self.arena.get(id);
        let level = node.level;
        let views: Vec<EntryView<'_, D, A::Value>> = node
            .entries
            .iter()
            .map(|e| EntryView {
                rect: &e.rect,
                aug: &e.aug,
            })
            .collect();
        let mask = self.strategy.split(&views, self.params.min_entries);
        debug_assert_eq!(mask.len(), views.len());
        let node = self.arena.get_mut(id);
        let mut group_a = Vec::new();
        let mut group_b = Vec::new();
        for (e, to_b) in node.entries.drain(..).zip(mask) {
            if to_b {
                group_b.push(e);
            } else {
                group_a.push(e);
            }
        }
        debug_assert!(!group_a.is_empty() && !group_b.is_empty());
        node.entries = group_a;
        let mut sibling = Node::new(level);
        sibling.entries = group_b;
        self.arena.alloc(sibling)
    }

    // ------------------------------------------------------------------
    // Deletion machinery
    // ------------------------------------------------------------------

    /// Finds a leaf data entry matching `pred` within `search`; returns the
    /// path of `(node, entry index)` ending at the leaf.
    fn find_leaf<F>(
        &self,
        id: NodeId,
        search: &Rect<D>,
        pred: &F,
        path: &mut Vec<(NodeId, usize)>,
    ) -> Option<Vec<(NodeId, usize)>>
    where
        F: Fn(&T) -> bool,
    {
        let node = self.arena.get(id);
        for (i, e) in node.entries.iter().enumerate() {
            if !e.rect.intersects(search) {
                continue;
            }
            match &e.payload {
                EntryPayload::Data(t) => {
                    if pred(t) {
                        let mut full = path.clone();
                        full.push((id, i));
                        return Some(full);
                    }
                }
                EntryPayload::Child(c) => {
                    path.push((id, i));
                    if let Some(found) = self.find_leaf(*c, search, pred, path) {
                        return Some(found);
                    }
                    path.pop();
                }
            }
        }
        None
    }

    /// R-tree CondenseTree: dissolve underfull nodes along the path and
    /// reinsert their entries; shrink the root if needed.
    fn condense(&mut self, path: &[(NodeId, usize)], leaf: NodeId) {
        let mut orphans: Vec<(u32, Entry<D, T, A::Value>)> = Vec::new();
        let mut cur = leaf;
        for &(parent, idx) in path.iter().rev() {
            let underfull = self.arena.get(cur).len() < self.params.min_entries;
            if underfull {
                let level = self.arena.get(cur).level;
                let entries = std::mem::take(&mut self.arena.get_mut(cur).entries);
                orphans.extend(entries.into_iter().map(|e| (level, e)));
                self.arena.get_mut(parent).entries.remove(idx);
                self.arena.free(cur);
                // Removing by index shifts later siblings, but `idx` values
                // on the path refer to ancestors, which are untouched.
            } else {
                let refreshed = self.child_entry(cur);
                self.arena.get_mut(parent).entries[idx] = refreshed;
            }
            cur = parent;
        }
        // Shrink the root while it is an internal node with a single child.
        while !self.arena.get(self.root).is_leaf() && self.arena.get(self.root).len() == 1 {
            let child = self.arena.get(self.root).entries[0]
                .child_id()
                .expect("internal entry");
            self.arena.free(self.root);
            self.root = child;
        }
        // An empty internal root can appear when everything was orphaned.
        if !self.arena.get(self.root).is_leaf() && self.arena.get(self.root).is_empty() {
            self.arena.free(self.root);
            let mut arena_root = Node::new(0);
            arena_root.entries = Vec::new();
            self.root = self.arena.alloc(arena_root);
        }
        // Reinsert orphaned entries at their original levels, deepest first.
        orphans.sort_by_key(|&(level, _)| level);
        let mut reinserted = HashSet::new();
        for (level, entry) in orphans {
            // If the tree shrank below the entry's level, demote to re-adding
            // the subtree's items one by one.
            if level > self.arena.get(self.root).level {
                self.readd_subtree(entry, &mut reinserted);
            } else {
                self.insert_entry(entry, level, &mut reinserted);
            }
        }
    }

    /// Fallback for orphans above the current root level: re-add every data
    /// item contained in the orphaned subtree.
    fn readd_subtree(&mut self, entry: Entry<D, T, A::Value>, reinserted: &mut HashSet<u32>) {
        match entry.payload {
            EntryPayload::Data(_) => self.insert_entry(entry, 0, reinserted),
            EntryPayload::Child(c) => {
                let entries = std::mem::take(&mut self.arena.get_mut(c).entries);
                self.arena.free(c);
                for e in entries {
                    self.readd_subtree(e, reinserted);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::RStarGrouping;

    type Tree = RStarTree<2, u32, NoAug, RStarGrouping>;

    fn small_tree(max_entries: usize) -> Tree {
        RStarTree::new(
            RTreeParams::with_max_entries(max_entries),
            NoAug,
            RStarGrouping,
            AccessStats::new(),
        )
    }

    fn grid_points(n: usize) -> Vec<([f64; 2], u32)> {
        // Deterministic scattered points via a simple LCG.
        let mut x = 12345u64;
        (0..n)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((x >> 16) % 10_000) as f64 / 10.0;
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((x >> 16) % 10_000) as f64 / 10.0;
                ([a, b], i as u32)
            })
            .collect()
    }

    #[test]
    fn insert_and_validate_structure() {
        let mut t = small_tree(8);
        for (p, id) in grid_points(500) {
            t.insert(Rect::point(p), id);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 2);
        t.validate();
        t.validate_augs();
    }

    #[test]
    fn range_query_matches_scan() {
        let mut t = small_tree(10);
        let pts = grid_points(800);
        for (p, id) in &pts {
            t.insert(Rect::point(*p), *id);
        }
        let q = Rect::new([100.0, 100.0], [400.0, 350.0]);
        let mut got: Vec<u32> = t.range_query(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .filter(|(p, _)| q.contains_point(p))
            .map(|&(_, id)| id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty(), "query window should not be empty");
    }

    #[test]
    fn nearest_matches_scan() {
        let mut t = small_tree(10);
        let pts = grid_points(600);
        for (p, id) in &pts {
            t.insert(Rect::point(*p), *id);
        }
        for q in [[0.0, 0.0], [500.0, 500.0], [999.0, 1.0]] {
            let got: Vec<u32> = t.nearest(&q, 10).into_iter().map(|(_, &id)| id).collect();
            let mut by_dist: Vec<(f64, u32)> = pts
                .iter()
                .map(|&(p, id)| (crate::geom::dist(&p, &q), id))
                .collect();
            by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let want: Vec<u32> = by_dist.iter().take(10).map(|&(_, id)| id).collect();
            assert_eq!(got, want, "query at {q:?}");
        }
    }

    #[test]
    fn nearest_distances_are_sorted() {
        let mut t = small_tree(6);
        for (p, id) in grid_points(300) {
            t.insert(Rect::point(p), id);
        }
        let res = t.nearest(&[250.0, 250.0], 25);
        assert_eq!(res.len(), 25);
        assert!(res.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn queries_count_node_accesses() {
        let mut t = small_tree(8);
        for (p, id) in grid_points(400) {
            t.insert(Rect::point(p), id);
        }
        t.stats().reset();
        let _ = t.nearest(&[10.0, 10.0], 5);
        let bfs_accesses = t.stats().node_accesses();
        assert!(bfs_accesses > 0);
        t.stats().reset();
        let _ = t.range_query(&Rect::new([0.0, 0.0], [1000.0, 1000.0]));
        assert!(t.stats().node_accesses() as usize >= t.node_count());
    }

    #[test]
    fn bfs_beats_full_scan_on_node_accesses() {
        let mut t = small_tree(16);
        for (p, id) in grid_points(3000) {
            t.insert(Rect::point(p), id);
        }
        t.stats().reset();
        let _ = t.nearest(&[500.0, 500.0], 3);
        let accesses = t.stats().node_accesses() as usize;
        assert!(
            accesses * 4 < t.node_count(),
            "best-first search should touch a small fraction of {} nodes, touched {}",
            t.node_count(),
            accesses
        );
    }

    #[test]
    fn remove_items() {
        let mut t = small_tree(8);
        let pts = grid_points(400);
        for (p, id) in &pts {
            t.insert(Rect::point(*p), *id);
        }
        // Remove every item with odd id.
        for (p, id) in &pts {
            if id % 2 == 1 {
                let got = t.remove(&Rect::point(*p), |&x| x == *id);
                assert_eq!(got, Some(*id));
            }
        }
        assert_eq!(t.len(), 200);
        t.validate();
        // Removed items are gone; kept items remain findable.
        for (p, id) in &pts {
            let found = t
                .range_query(&Rect::point(*p))
                .into_iter()
                .any(|&x| x == *id);
            assert_eq!(found, id % 2 == 0, "item {id}");
        }
    }

    #[test]
    fn remove_everything_then_reuse() {
        let mut t = small_tree(6);
        let pts = grid_points(150);
        for (p, id) in &pts {
            t.insert(Rect::point(*p), *id);
        }
        for (p, id) in &pts {
            assert_eq!(t.remove(&Rect::point(*p), |&x| x == *id), Some(*id));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0);
        for (p, id) in pts.iter().take(50) {
            t.insert(Rect::point(*p), *id);
        }
        assert_eq!(t.len(), 50);
        t.validate();
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = small_tree(8);
        t.insert(Rect::point([1.0, 1.0]), 1);
        assert_eq!(t.remove(&Rect::point([9.0, 9.0]), |_| true), None);
        assert_eq!(t.remove(&Rect::point([1.0, 1.0]), |&x| x == 2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn no_reinsert_mode_still_correct() {
        let mut t: Tree = RStarTree::new(
            RTreeParams::with_max_entries(8).without_reinsert(),
            NoAug,
            RStarGrouping,
            AccessStats::new(),
        );
        let pts = grid_points(500);
        for (p, id) in &pts {
            t.insert(Rect::point(*p), *id);
        }
        t.validate();
        let got: Vec<u32> = t
            .nearest(&[111.0, 222.0], 5)
            .into_iter()
            .map(|(_, &id)| id)
            .collect();
        let mut by_dist: Vec<(f64, u32)> = pts
            .iter()
            .map(|&(p, id)| (crate::geom::dist(&p, &[111.0, 222.0]), id))
            .collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(got, by_dist[..5].iter().map(|&(_, id)| id).collect::<Vec<_>>());
    }

    #[test]
    fn rect_items_supported() {
        let mut t = small_tree(8);
        for i in 0..100u32 {
            let x = (i % 10) as f64 * 10.0;
            let y = (i / 10) as f64 * 10.0;
            t.insert(Rect::new([x, y], [x + 5.0, y + 5.0]), i);
        }
        t.validate();
        let hits = t.range_query(&Rect::new([12.0, 12.0], [13.0, 13.0])); // inside item 11's box
        assert!(hits.contains(&&11));
    }

    #[test]
    fn items_returns_everything() {
        let mut t = small_tree(8);
        let pts = grid_points(250);
        for (p, id) in &pts {
            t.insert(Rect::point(*p), *id);
        }
        let mut ids: Vec<u32> = t.items().into_iter().map(|(_, &id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..250).collect::<Vec<u32>>());
    }

    #[test]
    fn three_dimensional_tree_works() {
        let mut t: RStarTree<3, u32, NoAug, RStarGrouping> = RStarTree::new(
            RTreeParams::with_max_entries(8),
            NoAug,
            RStarGrouping,
            AccessStats::new(),
        );
        let mut x = 99u64;
        let mut pts = Vec::new();
        for i in 0..400u32 {
            let mut c = [0.0; 3];
            for v in c.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                *v = ((x >> 16) % 1000) as f64 / 1000.0;
            }
            pts.push((c, i));
            t.insert(Rect::point(c), i);
        }
        t.validate();
        let q = [0.5, 0.5, 0.5];
        let got: Vec<u32> = t.nearest(&q, 7).into_iter().map(|(_, &id)| id).collect();
        let mut by_dist: Vec<(f64, u32)> = pts
            .iter()
            .map(|&(p, id)| (crate::geom::dist(&p, &q), id))
            .collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(got, by_dist[..7].iter().map(|&(_, id)| id).collect::<Vec<_>>());
    }

    #[test]
    fn update_leaf_augs_with_sum_augmentation() {
        /// Sums item weights per subtree.
        struct SumAug;
        impl Augmentation<(u32, u64)> for SumAug {
            type Value = u64;
            fn leaf_value(&self, item: &(u32, u64)) -> u64 {
                item.1
            }
            fn empty(&self) -> u64 {
                0
            }
            fn merge(&self, acc: &mut u64, child: &u64) {
                *acc += child;
            }
        }
        let mut t: RStarTree<2, (u32, u64), SumAug, RStarGrouping> = RStarTree::new(
            RTreeParams::with_max_entries(6),
            SumAug,
            RStarGrouping,
            AccessStats::new(),
        );
        for (p, id) in grid_points(200) {
            t.insert(Rect::point(p), (id, 1));
        }
        t.validate_augs();
        // Root total equals item count.
        let root_total: u64 = t
            .node(t.root_id())
            .entries
            .iter()
            .map(|e| e.aug)
            .sum();
        assert_eq!(root_total, 200);
        // Bump the weight of items with id < 50 by 9.
        let changed = t.update_leaf_augs(&|_| true, &mut |item: &(u32, u64), aug: &u64| {
            (item.0 < 50).then_some(aug + 9)
        });
        assert_eq!(changed, 50);
        t.validate_augs();
        let root_total: u64 = t.node(t.root_id()).entries.iter().map(|e| e.aug).sum();
        assert_eq!(root_total, 200 + 50 * 9);
    }
}
