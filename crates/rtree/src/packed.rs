//! A packed, immutable, single-buffer static R-tree — the read-optimised
//! serving layout (flatbush-style bulk load, level-contiguous sections).
//!
//! Unlike [`crate::RStarTree`], which chases `NodeId` pointers through an
//! arena of heap-allocated nodes, a [`PackedTree`] is one contiguous
//! `Box<[u64]>` word buffer: a fixed header, a level directory, a node
//! directory, and per-entry column sections (boxes, targets, inline
//! temporal-aggregate prefix sums). Queries read straight out of the buffer
//! — no per-node allocation, no codec round-trip — and the buffer itself is
//! the serialisation format (`docs/FORMAT.md` is the normative byte-layout
//! spec, pinned by `tests/fixtures/packed_v1.golden`).
//!
//! The tree is bulk-packed bottom-up from a caller-sorted item sequence
//! (callers sort by Hilbert key — see `knnta_util::hilbert`): items are cut
//! into full leaves of `leaf_cap` entries, then each level's nodes are
//! grouped `internal_cap` at a time into parents, in sequence, until a
//! single root remains. Node `node_count() - 1` is always the root; nodes
//! `0..leaf_count()` are always the leaves.
//!
//! This module is format-generic: it stores opaque `u64` targets and opaque
//! `(epoch, cumulative)` prefix records, and delegates the semantic merge of
//! child aggregate blocks to a caller closure. The TAR-tree semantics
//! (per-epoch MAX summaries, `tempora` prefix encoding) live in
//! `knnta-core`'s packed backend.

use std::ops::Range;

/// The 8-byte magic at word 0: `KNTAPAK1` in ASCII, read as little-endian.
pub const PACKED_MAGIC: u64 = u64::from_le_bytes(*b"KNTAPAK1");

/// The format version this module reads and writes (header word 1).
pub const PACKED_VERSION: u64 = 1;

/// Number of `u64` words in the fixed header.
pub const PACKED_HEADER_WORDS: usize = 16;

// Header word indices (see docs/FORMAT.md §2).
const H_MAGIC: usize = 0;
const H_VERSION: usize = 1;
const H_NODE_COUNT: usize = 2;
const H_ENTRY_COUNT: usize = 3;
const H_ITEM_COUNT: usize = 4;
const H_LEVEL_COUNT: usize = 5;
const H_TOTAL_WORDS: usize = 6;
const H_TIA_RECORDS: usize = 7;
const H_OFF_LEVEL_DIR: usize = 8;
const H_OFF_NODE_DIR: usize = 9;
const H_OFF_BOXES: usize = 10;
const H_OFF_TARGETS: usize = 11;
const H_OFF_TIA_DIR: usize = 12;
const H_OFF_TIA: usize = 13;
const H_META0: usize = 14;
const H_META1: usize = 15;

/// One input item for [`PackedTree::pack`]: a sort key, a 2-D box, an opaque
/// target word, and the item's temporal-aggregate prefix records.
#[derive(Debug, Clone)]
pub struct PackItem {
    /// Bulk-load sort key (callers use a Hilbert rank); items are packed in
    /// ascending `(key, target)` order.
    pub key: u64,
    /// Entry box as `[min_x, min_y, max_x, max_y]` (a point item repeats its
    /// coordinates).
    pub rect: [f64; 4],
    /// Opaque target word (leaf item identifier).
    pub target: u64,
    /// Inclusive prefix records `(epoch, cumulative)` in strictly ascending
    /// epoch order — the inline TIA block of this entry.
    pub tia: Vec<(u64, u64)>,
}

/// A borrowed inline TIA block: interleaved `(epoch, cumulative)` prefix
/// records, `2·r` words for `r` records.
#[derive(Debug, Clone, Copy)]
pub struct TiaBlock<'a>(pub &'a [u64]);

impl<'a> TiaBlock<'a> {
    /// Number of `(epoch, cumulative)` records in the block.
    pub fn records(&self) -> usize {
        self.0.len() / 2
    }

    /// The record pairs, decoded.
    pub fn pairs(&self) -> impl Iterator<Item = (u64, u64)> + 'a {
        self.0.chunks_exact(2).map(|c| (c[0], c[1]))
    }

    /// Cumulative total of every epoch strictly before `epoch` — the packed
    /// twin of `tempora::PrefixSums::cum_before` (binary search over the
    /// record epochs, then the previous record's cumulative, or 0).
    pub fn cum_before(&self, epoch: usize) -> u64 {
        let n = self.records();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if (self.0[2 * mid] as usize) < epoch {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            0
        } else {
            self.0[2 * lo - 1]
        }
    }

    /// Exact aggregate over the half-open epoch range — two prefix lookups,
    /// matching `tempora::PrefixSums::sum_range` result-for-result.
    pub fn sum_range(&self, range: Range<usize>) -> u64 {
        if range.start >= range.end {
            return 0;
        }
        self.cum_before(range.end) - self.cum_before(range.start)
    }
}

/// A view of one packed node: its level class (leaf / internal) and the
/// absolute indices of its entries in the column sections.
#[derive(Debug, Clone)]
pub struct PackedNode {
    leaf: bool,
    entries: Range<usize>,
}

impl PackedNode {
    /// Whether this node is on the leaf level (its targets are items, not
    /// child nodes).
    pub fn is_leaf(&self) -> bool {
        self.leaf
    }

    /// Absolute entry indices of this node, for the per-entry accessors on
    /// [`PackedTree`].
    pub fn entries(&self) -> Range<usize> {
        self.entries.clone()
    }

    /// Number of entries in this node.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the node has no entries (only the root of an empty tree).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A packed immutable R-tree over one contiguous `u64` word buffer.
///
/// Build with [`PackedTree::pack`], serialise with [`PackedTree::to_bytes`]
/// / [`PackedTree::from_bytes`] (the byte image **is** the format — see
/// `docs/FORMAT.md`), and traverse with [`PackedTree::node`] plus the
/// per-entry accessors.
///
/// ```
/// use rtree::{PackItem, PackedTree};
///
/// // Three point items with one-record prefix blocks, already in key order.
/// let items = (0..3u64)
///     .map(|i| PackItem {
///         key: i,
///         rect: [i as f64, 0.0, i as f64, 0.0],
///         target: 100 + i,
///         tia: vec![(0, i + 1)],
///     })
///     .collect();
/// // cap = 2 ⇒ two leaves under one root; parent blocks via a max-merge.
/// let tree = PackedTree::pack(2, 2, items, [7, 0], |blocks| {
///     let cum = blocks.iter().map(|b| b.last().unwrap().1).max().unwrap();
///     vec![(0, cum)]
/// });
/// assert_eq!((tree.node_count(), tree.leaf_count()), (3, 2));
/// let root = tree.node(tree.root());
/// assert!(!root.is_leaf());
/// // The buffer round-trips byte-for-byte.
/// let copy = PackedTree::from_bytes(&tree.to_bytes()).unwrap();
/// assert_eq!(copy.to_bytes(), tree.to_bytes());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTree {
    words: Box<[u64]>,
    // Cached copies of header offsets and counts, derived from `words` at
    // construction and never serialised: the per-entry accessors sit on the
    // query hot path, and re-loading the header words on every call costs
    // measurably more than these plain fields.
    off_node_dir: usize,
    off_boxes: usize,
    off_targets: usize,
    off_tia_dir: usize,
    off_tia: usize,
    node_count: usize,
    leaf_count: usize,
}

/// Intermediate node under construction: per-entry boxes, targets, blocks.
struct BuildNode {
    rects: Vec<[f64; 4]>,
    targets: Vec<u64>,
    tias: Vec<Vec<(u64, u64)>>,
}

impl BuildNode {
    fn bounding_rect(&self) -> [f64; 4] {
        let mut r = [f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY];
        for e in &self.rects {
            r[0] = r[0].min(e[0]);
            r[1] = r[1].min(e[1]);
            r[2] = r[2].max(e[2]);
            r[3] = r[3].max(e[3]);
        }
        r
    }
}

impl PackedTree {
    /// Bulk-packs `items` into a static tree with `leaf_cap` entries per
    /// leaf and `internal_cap` entries per internal node.
    ///
    /// Items are sorted by `(key, target)` (ascending) and cut into full
    /// leaves of `leaf_cap` entries; parents are then formed over
    /// consecutive runs of `internal_cap` child nodes per level until a
    /// single root remains — the classic flatbush packing, which preserves
    /// the caller's (Hilbert) locality order at every level. The two caps
    /// may differ (the node directory records each node's extent
    /// explicitly): serving trees want small leaves, whose entries a query
    /// must score one by one, under a wide shallow directory, whose nodes
    /// it mostly skips. `meta` is stored verbatim in the two caller-owned
    /// header words.
    ///
    /// `merge` combines the inline TIA blocks of one child node's entries
    /// into the block of the parent entry that points at it (the TAR-tree
    /// passes a per-epoch MAX merge). Blocks handed to `merge` are decoded
    /// `(epoch, cumulative)` pairs; the returned block must again be in
    /// strictly ascending epoch order.
    ///
    /// An empty `items` packs as a single zero-entry leaf root, so queries
    /// need no special case.
    ///
    /// # Panics
    ///
    /// Panics if either cap is `< 2` or a TIA block's epochs are not
    /// strictly ascending.
    pub fn pack(
        leaf_cap: usize,
        internal_cap: usize,
        mut items: Vec<PackItem>,
        meta: [u64; 2],
        merge: impl Fn(&[Vec<(u64, u64)>]) -> Vec<(u64, u64)>,
    ) -> PackedTree {
        assert!(
            leaf_cap >= 2 && internal_cap >= 2,
            "packed fanout must be at least 2, got leaf {leaf_cap} / internal {internal_cap}"
        );
        items.sort_by_key(|it| (it.key, it.target));
        let item_count = items.len();

        // Leaves: consecutive runs of `leaf_cap` items.
        let mut level: Vec<BuildNode> = items
            .chunks(leaf_cap)
            .map(|run| BuildNode {
                rects: run.iter().map(|it| it.rect).collect(),
                targets: run.iter().map(|it| it.target).collect(),
                tias: run.iter().map(|it| it.tia.clone()).collect(),
            })
            .collect();
        if level.is_empty() {
            level.push(BuildNode { rects: vec![], targets: vec![], tias: vec![] });
        }
        for node in &level {
            for tia in &node.tias {
                assert!(
                    tia.windows(2).all(|w| w[0].0 < w[1].0),
                    "TIA block epochs must be strictly ascending"
                );
            }
        }

        // Upper levels: group `internal_cap` consecutive child nodes per
        // parent. The first node of each level is recorded so the level
        // directory can be emitted leaves-first.
        let mut levels: Vec<Vec<BuildNode>> = vec![level];
        while levels.last().expect("at least the leaf level").len() > 1 {
            let children = levels.last().expect("non-empty");
            let mut base = 0u64;
            for l in &levels[..levels.len() - 1] {
                base += l.len() as u64;
            }
            let parents: Vec<BuildNode> = children
                .chunks(internal_cap)
                .enumerate()
                .map(|(chunk, run)| BuildNode {
                    rects: run.iter().map(|c| c.bounding_rect()).collect(),
                    targets: (0..run.len())
                        .map(|i| base + (chunk * internal_cap + i) as u64)
                        .collect(),
                    tias: run.iter().map(|c| merge(&c.tias)).collect(),
                })
                .collect();
            levels.push(parents);
        }

        // Emit: header, level_dir, node_dir, boxes, targets, tia_dir, tia.
        let node_count: usize = levels.iter().map(|l| l.len()).sum();
        let entry_count: usize = levels
            .iter()
            .map(|l| l.iter().map(|n| n.targets.len()).sum::<usize>())
            .sum();
        let tia_records: usize = levels
            .iter()
            .map(|l| l.iter().map(|n| n.tias.iter().map(Vec::len).sum::<usize>()).sum::<usize>())
            .sum();
        let level_count = levels.len();

        let off_level_dir = PACKED_HEADER_WORDS;
        let off_node_dir = off_level_dir + level_count + 1;
        let off_boxes = off_node_dir + node_count + 1;
        let off_targets = off_boxes + 4 * entry_count;
        let off_tia_dir = off_targets + entry_count;
        let off_tia = off_tia_dir + entry_count + 1;
        let total_words = off_tia + 2 * tia_records;

        let mut w = vec![0u64; total_words];
        w[H_MAGIC] = PACKED_MAGIC;
        w[H_VERSION] = PACKED_VERSION;
        w[H_NODE_COUNT] = node_count as u64;
        w[H_ENTRY_COUNT] = entry_count as u64;
        w[H_ITEM_COUNT] = item_count as u64;
        w[H_LEVEL_COUNT] = level_count as u64;
        w[H_TOTAL_WORDS] = total_words as u64;
        w[H_TIA_RECORDS] = tia_records as u64;
        w[H_OFF_LEVEL_DIR] = off_level_dir as u64;
        w[H_OFF_NODE_DIR] = off_node_dir as u64;
        w[H_OFF_BOXES] = off_boxes as u64;
        w[H_OFF_TARGETS] = off_targets as u64;
        w[H_OFF_TIA_DIR] = off_tia_dir as u64;
        w[H_OFF_TIA] = off_tia as u64;
        w[H_META0] = meta[0];
        w[H_META1] = meta[1];

        let mut node_idx = 0usize;
        let mut entry_idx = 0usize;
        let mut record_idx = 0usize;
        for (l, nodes) in levels.iter().enumerate() {
            w[off_level_dir + l] = node_idx as u64;
            for node in nodes {
                w[off_node_dir + node_idx] = entry_idx as u64;
                node_idx += 1;
                for ((rect, target), tia) in
                    node.rects.iter().zip(&node.targets).zip(&node.tias)
                {
                    for (d, &c) in rect.iter().enumerate() {
                        w[off_boxes + 4 * entry_idx + d] = c.to_bits();
                    }
                    w[off_targets + entry_idx] = *target;
                    w[off_tia_dir + entry_idx] = record_idx as u64;
                    for &(epoch, cum) in tia {
                        w[off_tia + 2 * record_idx] = epoch;
                        w[off_tia + 2 * record_idx + 1] = cum;
                        record_idx += 1;
                    }
                    entry_idx += 1;
                }
            }
        }
        w[off_level_dir + level_count] = node_idx as u64;
        w[off_node_dir + node_count] = entry_idx as u64;
        w[off_tia_dir + entry_count] = record_idx as u64;
        debug_assert_eq!(
            (node_idx, entry_idx, record_idx),
            (node_count, entry_count, tia_records)
        );

        PackedTree::from_words(w.into_boxed_slice())
    }

    /// Wraps a (validated) word buffer, caching the hot-path header fields.
    fn from_words(words: Box<[u64]>) -> PackedTree {
        let node_count = words[H_NODE_COUNT] as usize;
        let leaf_count = words[words[H_OFF_LEVEL_DIR] as usize + 1] as usize;
        PackedTree {
            off_node_dir: words[H_OFF_NODE_DIR] as usize,
            off_boxes: words[H_OFF_BOXES] as usize,
            off_targets: words[H_OFF_TARGETS] as usize,
            off_tia_dir: words[H_OFF_TIA_DIR] as usize,
            off_tia: words[H_OFF_TIA] as usize,
            node_count,
            leaf_count,
            words,
        }
    }

    // --- header accessors ---------------------------------------------------

    /// Total nodes across all levels; the root is `node_count() - 1`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total entries across all nodes.
    pub fn entry_count(&self) -> usize {
        self.words[H_ENTRY_COUNT] as usize
    }

    /// Number of leaf items packed into the tree.
    pub fn item_count(&self) -> usize {
        self.words[H_ITEM_COUNT] as usize
    }

    /// Whether the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.item_count() == 0
    }

    /// Number of levels (1 for a tree that is a single leaf).
    pub fn level_count(&self) -> usize {
        self.words[H_LEVEL_COUNT] as usize
    }

    /// Number of leaf nodes — nodes `0..leaf_count()` are the leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Total `(epoch, cumulative)` records in the TIA section.
    pub fn tia_records(&self) -> usize {
        self.words[H_TIA_RECORDS] as usize
    }

    /// The two caller-owned metadata header words, verbatim.
    pub fn meta(&self) -> [u64; 2] {
        [self.words[H_META0], self.words[H_META1]]
    }

    /// Index of the root node (always the last node).
    pub fn root(&self) -> usize {
        self.node_count() - 1
    }

    /// The raw word buffer (the serialised form, pre byte-flattening).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    // --- node / entry accessors ---------------------------------------------

    /// The node at `index` (`0 <= index < node_count()`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize) -> PackedNode {
        assert!(index < self.node_count, "node {index} out of range");
        let dir = self.off_node_dir;
        PackedNode {
            leaf: index < self.leaf_count,
            entries: self.words[dir + index] as usize..self.words[dir + index + 1] as usize,
        }
    }

    /// Entry box (absolute entry index) as `[min_x, min_y, max_x, max_y]`.
    pub fn entry_rect(&self, entry: usize) -> [f64; 4] {
        let off = self.off_boxes + 4 * entry;
        let b: [u64; 4] = self.words[off..off + 4].try_into().expect("4 box words");
        b.map(f64::from_bits)
    }

    /// Entry target word (child node index for internal nodes, item
    /// identifier for leaves).
    pub fn entry_target(&self, entry: usize) -> u64 {
        self.words[self.off_targets + entry]
    }

    /// The entry's inline TIA prefix block.
    pub fn entry_tia(&self, entry: usize) -> TiaBlock<'_> {
        let dir = self.off_tia_dir;
        let start = self.words[dir + entry] as usize;
        let end = self.words[dir + entry + 1] as usize;
        TiaBlock(&self.words[self.off_tia + 2 * start..self.off_tia + 2 * end])
    }

    // --- serialisation ------------------------------------------------------

    /// Serialises the buffer to little-endian bytes — the normative v1
    /// on-disk image (`docs/FORMAT.md`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in self.words.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialises and validates a v1 byte image produced by
    /// [`PackedTree::to_bytes`].
    ///
    /// Validation is structural: magic, version, word-aligned length, every
    /// section offset in bounds and in order, and monotone directories that
    /// close at the header counts. A buffer that passes cannot make the
    /// accessors read out of bounds.
    pub fn from_bytes(bytes: &[u8]) -> Result<PackedTree, String> {
        if bytes.len() % 8 != 0 {
            return Err(format!("packed buffer length {} is not word-aligned", bytes.len()));
        }
        let words: Box<[u64]> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        if words.len() < PACKED_HEADER_WORDS {
            return Err("packed buffer shorter than the header".into());
        }
        if words[H_MAGIC] != PACKED_MAGIC {
            return Err(format!("bad magic {:#018x} (want KNTAPAK1)", words[H_MAGIC]));
        }
        if words[H_VERSION] != PACKED_VERSION {
            return Err(format!(
                "unsupported packed format version {} (this build reads v{PACKED_VERSION})",
                words[H_VERSION]
            ));
        }
        if words[H_TOTAL_WORDS] as usize != words.len() {
            return Err(format!(
                "header says {} words, buffer has {}",
                words[H_TOTAL_WORDS],
                words.len()
            ));
        }
        let n = words[H_NODE_COUNT] as usize;
        let e = words[H_ENTRY_COUNT] as usize;
        let l = words[H_LEVEL_COUNT] as usize;
        let r = words[H_TIA_RECORDS] as usize;
        if n == 0 || l == 0 {
            return Err("packed tree must have at least one node and level".into());
        }
        let sections: [(usize, usize, &str); 6] = [
            (words[H_OFF_LEVEL_DIR] as usize, l + 1, "level_dir"),
            (words[H_OFF_NODE_DIR] as usize, n + 1, "node_dir"),
            (words[H_OFF_BOXES] as usize, 4 * e, "boxes"),
            (words[H_OFF_TARGETS] as usize, e, "targets"),
            (words[H_OFF_TIA_DIR] as usize, e + 1, "tia_dir"),
            (words[H_OFF_TIA] as usize, 2 * r, "tia"),
        ];
        let mut expect = PACKED_HEADER_WORDS;
        for (off, len, name) in sections {
            if off != expect {
                return Err(format!("section {name} at word {off}, expected {expect}"));
            }
            expect = off + len;
        }
        if expect != words.len() {
            return Err(format!("sections end at word {expect}, buffer has {}", words.len()));
        }
        let dir_closed = |off: usize, len: usize, total: usize, name: &str| {
            let d = &words[off..off + len];
            if d[0] != 0 || d[len - 1] as usize != total || d.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{name} directory is not monotone 0..={total}"));
            }
            Ok(())
        };
        dir_closed(words[H_OFF_LEVEL_DIR] as usize, l + 1, n, "level")?;
        dir_closed(words[H_OFF_NODE_DIR] as usize, n + 1, e, "node")?;
        dir_closed(words[H_OFF_TIA_DIR] as usize, e + 1, r, "tia")?;
        let targets = &words[words[H_OFF_TARGETS] as usize..][..e];
        let node_dir = &words[words[H_OFF_NODE_DIR] as usize..][..n + 1];
        let leaf_count = words[words[H_OFF_LEVEL_DIR] as usize + 1] as usize;
        for node in leaf_count..n {
            for ei in node_dir[node] as usize..node_dir[node + 1] as usize {
                let child = targets[ei] as usize;
                if child >= node {
                    return Err(format!(
                        "internal node {node} entry {ei} targets non-earlier node {child}"
                    ));
                }
            }
        }
        Ok(PackedTree::from_words(words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u64) -> Vec<PackItem> {
        (0..n)
            .map(|i| PackItem {
                key: i ^ (i >> 1), // scrambled so pack() has to sort
                rect: [i as f64, 2.0 * i as f64, i as f64 + 1.0, 2.0 * i as f64 + 1.0],
                target: 1000 + i,
                tia: vec![(0, i + 1), (2, 2 * i + 3)],
            })
            .collect()
    }

    /// A union-of-last-cums merge, good enough for structural tests.
    fn sum_merge(blocks: &[Vec<(u64, u64)>]) -> Vec<(u64, u64)> {
        let cum: u64 = blocks.iter().filter_map(|b| b.last().map(|p| p.1)).sum();
        vec![(0, cum)]
    }

    #[test]
    fn packs_expected_shape() {
        let t = PackedTree::pack(4, 4, items(21), [9, 10], sum_merge);
        // 21 items / cap 4 ⇒ 6 leaves ⇒ 2 internal ⇒ 1 root.
        assert_eq!(t.leaf_count(), 6);
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.level_count(), 3);
        assert_eq!(t.item_count(), 21);
        assert_eq!(t.root(), 8);
        assert_eq!(t.meta(), [9, 10]);
        assert!(!t.node(t.root()).is_leaf());
        assert!(t.node(0).is_leaf());
        // Every leaf target is an item id; every internal target is a child.
        let mut seen_items = Vec::new();
        for ni in 0..t.node_count() {
            let node = t.node(ni);
            for ei in node.entries() {
                if node.is_leaf() {
                    seen_items.push(t.entry_target(ei));
                } else {
                    assert!((t.entry_target(ei) as usize) < ni);
                }
            }
        }
        seen_items.sort_unstable();
        assert_eq!(seen_items, (1000..1021).collect::<Vec<_>>());
    }

    #[test]
    fn parent_boxes_contain_children() {
        let t = PackedTree::pack(4, 4, items(33), [0, 0], sum_merge);
        for ni in t.leaf_count()..t.node_count() {
            let node = t.node(ni);
            for ei in node.entries() {
                let parent = t.entry_rect(ei);
                let child = t.node(t.entry_target(ei) as usize);
                for ci in child.entries() {
                    let c = t.entry_rect(ci);
                    assert!(parent[0] <= c[0] && parent[1] <= c[1]);
                    assert!(parent[2] >= c[2] && parent[3] >= c[3]);
                }
            }
        }
    }

    #[test]
    fn tia_prefix_lookups() {
        let t = PackedTree::pack(4, 4, items(8), [0, 0], sum_merge);
        // Find the leaf entry for item 1003: tia = [(0,4),(2,9)].
        let entry = (0..t.entry_count())
            .find(|&e| t.entry_target(e) == 1003)
            .expect("item present");
        let tia = t.entry_tia(entry);
        assert_eq!(tia.records(), 2);
        assert_eq!(tia.cum_before(0), 0);
        assert_eq!(tia.cum_before(1), 4);
        assert_eq!(tia.cum_before(2), 4);
        assert_eq!(tia.cum_before(3), 9);
        assert_eq!(tia.cum_before(99), 9);
        assert_eq!(tia.sum_range(0..3), 9);
        assert_eq!(tia.sum_range(1..3), 5);
        assert_eq!(tia.sum_range(2..2), 0);
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = tia.sum_range(3..1);
        assert_eq!(reversed, 0);
    }

    #[test]
    fn empty_tree_is_a_single_empty_leaf() {
        let t = PackedTree::pack(4, 4, Vec::new(), [0, 0], sum_merge);
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.level_count(), 1);
        assert_eq!(t.root(), 0);
        let root = t.node(0);
        assert!(root.is_leaf() && root.is_empty());
        let rt = PackedTree::from_bytes(&t.to_bytes()).expect("round-trip");
        assert_eq!(rt, t);
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let t = PackedTree::pack(5, 5, items(40), [3, 77], sum_merge);
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.words().len() * 8);
        let rt = PackedTree::from_bytes(&bytes).expect("round-trip");
        assert_eq!(rt, t);
        assert_eq!(rt.to_bytes(), bytes);
    }

    #[test]
    fn rejects_corrupted_buffers() {
        let t = PackedTree::pack(4, 4, items(10), [0, 0], sum_merge);
        let good = t.to_bytes();
        assert!(PackedTree::from_bytes(&good[..good.len() - 3]).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(PackedTree::from_bytes(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[8] = 99;
        assert!(PackedTree::from_bytes(&bad_version).is_err());
        let mut truncated = good.clone();
        truncated.truncate(good.len() - 8);
        assert!(PackedTree::from_bytes(&truncated).is_err());
        // Point an internal entry at a later node: cycle detection trips.
        let n = t.node_count();
        let root_first_entry = {
            let dir = t.words()[H_OFF_NODE_DIR] as usize;
            t.words()[dir + t.root()] as usize
        };
        let mut cyclic = good.clone();
        let off = (t.words()[H_OFF_TARGETS] as usize + root_first_entry) * 8;
        cyclic[off..off + 8].copy_from_slice(&(n as u64 - 1).to_le_bytes());
        assert!(PackedTree::from_bytes(&cyclic).is_err());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_fanout() {
        let _ = PackedTree::pack(1, 4, items(4), [0, 0], sum_merge);
    }

    /// The worked example of `docs/FORMAT.md` §10, word for word — if this
    /// test and the doc ever disagree, one of them drifted.
    #[test]
    fn format_md_worked_example() {
        let items = (0..3u64)
            .map(|i| PackItem {
                key: i,
                rect: [i as f64, 0.0, i as f64, 0.0],
                target: 100 + i,
                tia: vec![(0, i + 1)],
            })
            .collect();
        let tree = PackedTree::pack(2, 2, items, [7, 0], |blocks| {
            let cum = blocks.iter().map(|b| b.last().unwrap().1).max().unwrap();
            vec![(0, cum)]
        });
        let f = f64::to_bits;
        #[rustfmt::skip]
        let want: Vec<u64> = vec![
            // header (words 0–15)
            PACKED_MAGIC, 1, 3, 5, 3, 2, 64, 5, 16, 19, 23, 43, 48, 54, 7, 0,
            // level_dir (16–18), node_dir (19–22)
            0, 2, 3,
            0, 2, 3, 5,
            // boxes (23–42): e0..e4 as [min_x, min_y, max_x, max_y]
            f(0.0), f(0.0), f(0.0), f(0.0),
            f(1.0), f(0.0), f(1.0), f(0.0),
            f(2.0), f(0.0), f(2.0), f(0.0),
            f(0.0), f(0.0), f(1.0), f(0.0),
            f(2.0), f(0.0), f(2.0), f(0.0),
            // targets (43–47), tia_dir (48–53)
            100, 101, 102, 0, 1,
            0, 1, 2, 3, 4, 5,
            // tia (54–63): (epoch, cumulative) pairs
            0, 1, 0, 2, 0, 3, 0, 2, 0, 3,
        ];
        assert_eq!(tree.words(), &want[..]);
        assert_eq!(tree.to_bytes().len(), 512);
    }
}
