//! A paged node store: tree nodes serialised onto [`pagestore::Disk`] pages
//! and read back through a [`BufferPool`] during search.
//!
//! The paper measures its R-tree in *logical node accesses* while keeping the
//! nodes memory resident; this module closes the gap to a genuinely
//! disk-resident tree. A [`PagedNodeStore`] snapshots every node of an
//! [`RStarTree`] into fixed-size pages (a node's byte image is chained across
//! as many pages as it needs — a 1024-byte node with large TIA summaries does
//! not fit one 1024-byte page), and serves [`PagedNodeStore::read_node`] by
//! pulling the chain through a replacement-policy-driven buffer pool, so every
//! node access becomes measurable page I/O with hit/miss statistics.
//!
//! Serialisation is delegated to a [`NodeCodec`] implemented by the index
//! layer, which knows the concrete item and augmentation types; the codec
//! contract is byte-exact round-tripping (`f64`s travel as raw bits), which is
//! what lets the query layer promise bit-identical results between the
//! in-memory and paged backends.

use crate::node::{Node, NodeId};
use crate::tree::{Augmentation, RStarTree};
use crate::strategy::GroupingStrategy;
use pagestore::{BufferPool, BufferPoolConfig, Bytes, BytesMut, Disk, PageId};
use std::marker::PhantomData;
use std::sync::Arc;

/// Encodes and decodes one node's byte image.
///
/// Implementations must round-trip exactly: `decode(encode(node))` yields a
/// node equal to the input field for field, with floats preserved bit for
/// bit.
pub trait NodeCodec<const D: usize, T, V> {
    /// Appends `node`'s byte image to `buf`.
    fn encode(&self, node: &Node<D, T, V>, buf: &mut BytesMut);
    /// Reconstructs a node from the front of `buf`.
    fn decode(&self, buf: &mut Bytes) -> Node<D, T, V>;
}

/// A read-only snapshot of a tree's nodes on paged storage.
///
/// Shared-reference reads are thread-safe (the buffer pool locks internally),
/// so the parallel best-first search can run against a `&PagedNodeStore`
/// exactly as it runs against a `&RStarTree`.
pub struct PagedNodeStore<const D: usize, T, V, C> {
    pool: BufferPool,
    /// `NodeId`-indexed page chains (the arena's ids are dense u32s).
    chains: Vec<Option<Vec<PageId>>>,
    root: NodeId,
    node_count: usize,
    empty: bool,
    codec: C,
    _marker: PhantomData<fn() -> (Node<D, T, V>,)>,
}

impl<const D: usize, T, V, C> PagedNodeStore<D, T, V, C>
where
    C: NodeCodec<D, T, V>,
{
    /// Serialises every node of `tree` onto a fresh disk with
    /// `page_size`-byte pages, read back through a buffer pool configured by
    /// `config`.
    ///
    /// Build-time writes go straight to the disk (they are part of
    /// materialisation, not of any measured query), so the pool starts cold
    /// and its hit/miss counters start at zero.
    pub fn build<A, S>(
        tree: &RStarTree<D, T, A, S>,
        codec: C,
        page_size: usize,
        config: BufferPoolConfig,
    ) -> Self
    where
        A: Augmentation<T, Value = V>,
        S: GroupingStrategy<D, V>,
    {
        let disk = Arc::new(Disk::new(page_size, pagestore::AccessStats::new()));
        let mut chains = Vec::new();
        let mut node_count = 0usize;
        for id in tree.node_ids() {
            let mut buf = BytesMut::new();
            codec.encode(tree.node(id), &mut buf);
            let image = buf.freeze();
            let mut chain = Vec::with_capacity(image.len() / page_size + 1);
            for chunk in image.as_slice().chunks(page_size.max(1)) {
                let page = disk.allocate();
                disk.write(page, Bytes::copy_from_slice(chunk));
                chain.push(page);
            }
            // Empty nodes (an empty root) still need a presence marker.
            if chain.is_empty() {
                let page = disk.allocate();
                disk.write(page, Bytes::new());
                chain.push(page);
            }
            let idx = id.0 as usize;
            if chains.len() <= idx {
                chains.resize(idx + 1, None);
            }
            chains[idx] = Some(chain);
            node_count += 1;
        }
        // The build wrote every page once; those physical writes are part of
        // materialisation, not of the measured query workload.
        disk.stats().reset();
        PagedNodeStore {
            pool: BufferPool::with_config(disk, config),
            chains,
            root: tree.root_id(),
            node_count,
            empty: tree.is_empty(),
            codec,
            _marker: PhantomData,
        }
    }

    /// Reads and decodes node `id` through the buffer pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not part of the snapshotted tree.
    pub fn read_node(&self, id: NodeId) -> Node<D, T, V> {
        let chain = self
            .chains
            .get(id.0 as usize)
            .and_then(|c| c.as_ref())
            .unwrap_or_else(|| panic!("{id} is not in the paged snapshot"));
        let mut image = BytesMut::new();
        for &page in chain {
            image.put_slice(self.pool.read(page).as_slice());
        }
        let mut buf = image.freeze();
        self.codec.decode(&mut buf)
    }

    /// [`PagedNodeStore::read_node`] accumulating the wall-clock nanoseconds
    /// the buffered read + decode took into `io_ns` (the observability
    /// layer's page-I/O phase accounting).
    pub fn read_node_timed(&self, id: NodeId, io_ns: &mut u64) -> Node<D, T, V> {
        let t0 = std::time::Instant::now();
        let node = self.read_node(id);
        *io_ns += t0.elapsed().as_nanos() as u64;
        node
    }

    /// The snapshotted tree's root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Whether the snapshotted tree held no data items.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Number of snapshotted nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total pages allocated for the snapshot.
    pub fn page_count(&self) -> usize {
        self.pool.disk().len()
    }

    /// The buffer pool serving the reads (I/O statistics live in
    /// `pool().disk().stats()`).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Empties the buffer pool so the next reads measure cold-cache I/O.
    pub fn cool_down(&self) {
        self.pool.clear();
        self.pool.disk().stats().reset();
    }
}

impl<const D: usize, T, V, C> std::fmt::Debug for PagedNodeStore<D, T, V, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedNodeStore")
            .field("nodes", &self.node_count)
            .field("pages", &self.pool.disk().len())
            .field("root", &self.root)
            .field("config", &self.pool.config())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Entry, EntryPayload};
    use crate::tree::NoAug;
    use crate::{RStarGrouping, RTreeParams, Rect};
    use pagestore::AccessStats;

    /// Test codec for `Node<2, u32, ()>`.
    struct U32Codec;

    impl NodeCodec<2, u32, ()> for U32Codec {
        fn encode(&self, node: &Node<2, u32, ()>, buf: &mut BytesMut) {
            buf.put_u32(node.level);
            buf.put_u32(node.entries.len() as u32);
            for e in &node.entries {
                for d in 0..2 {
                    buf.put_f64(e.rect.min[d]);
                }
                for d in 0..2 {
                    buf.put_f64(e.rect.max[d]);
                }
                match &e.payload {
                    EntryPayload::Child(id) => {
                        buf.put_u8(0);
                        buf.put_u32(id.0);
                    }
                    EntryPayload::Data(v) => {
                        buf.put_u8(1);
                        buf.put_u32(*v);
                    }
                }
            }
        }

        fn decode(&self, buf: &mut Bytes) -> Node<2, u32, ()> {
            let level = buf.get_u32();
            let n = buf.get_u32() as usize;
            let mut node = Node {
                level,
                entries: Vec::with_capacity(n),
            };
            for _ in 0..n {
                let min = [buf.get_f64(), buf.get_f64()];
                let max = [buf.get_f64(), buf.get_f64()];
                let payload = match buf.get_u8() {
                    0 => EntryPayload::Child(NodeId(buf.get_u32())),
                    _ => EntryPayload::Data(buf.get_u32()),
                };
                node.entries.push(Entry {
                    rect: Rect::new(min, max),
                    aug: (),
                    payload,
                });
            }
            node
        }
    }

    fn sample_tree(n: u32) -> RStarTree<2, u32, NoAug, RStarGrouping> {
        let mut tree = RStarTree::new(
            RTreeParams::with_max_entries(4),
            NoAug,
            RStarGrouping,
            AccessStats::new(),
        );
        for i in 0..n {
            let x = (i % 17) as f64;
            let y = (i / 17) as f64;
            tree.insert(Rect::point([x, y]), i);
        }
        tree
    }

    fn assert_node_eq(a: &Node<2, u32, ()>, b: &Node<2, u32, ()>) {
        assert_eq!(a.level, b.level);
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.rect.min.map(f64::to_bits), y.rect.min.map(f64::to_bits));
            assert_eq!(x.rect.max.map(f64::to_bits), y.rect.max.map(f64::to_bits));
            match (&x.payload, &y.payload) {
                (EntryPayload::Child(i), EntryPayload::Child(j)) => assert_eq!(i, j),
                (EntryPayload::Data(i), EntryPayload::Data(j)) => assert_eq!(i, j),
                _ => panic!("payload kind mismatch"),
            }
        }
    }

    #[test]
    fn round_trips_every_node_bit_exactly() {
        let tree = sample_tree(60);
        // 64-byte pages force multi-page chains (an entry alone is 37 bytes).
        let store =
            PagedNodeStore::build(&tree, U32Codec, 64, BufferPoolConfig::lru(4));
        assert_eq!(store.node_count(), tree.node_ids().len());
        assert!(store.page_count() > store.node_count(), "chains must span pages");
        for id in tree.node_ids() {
            assert_node_eq(&store.read_node(id), tree.node(id));
        }
    }

    #[test]
    fn reads_go_through_the_buffer_pool() {
        let tree = sample_tree(40);
        let store =
            PagedNodeStore::build(&tree, U32Codec, 256, BufferPoolConfig::lru(2));
        let stats = store.pool().disk().stats();
        assert_eq!(stats.snapshot().page_reads, 0, "build must not count reads");
        let root = store.root();
        let _ = store.read_node(root);
        let cold = stats.snapshot();
        assert!(cold.buffer_misses > 0);
        let _ = store.read_node(root);
        let warm = stats.snapshot().since(cold);
        assert_eq!(warm.buffer_misses, 0, "second read must hit");
        assert!(warm.buffer_hits > 0);
        store.cool_down();
        let _ = store.read_node(root);
        assert!(stats.snapshot().buffer_misses > 0, "cool_down must empty the pool");
    }

    #[test]
    fn empty_tree_round_trips() {
        let tree = sample_tree(0);
        let store =
            PagedNodeStore::build(&tree, U32Codec, 128, BufferPoolConfig::lru(2));
        assert!(store.is_empty());
        let node = store.read_node(store.root());
        assert_eq!(node.entries.len(), 0);
    }

    #[test]
    #[should_panic(expected = "not in the paged snapshot")]
    fn unknown_node_rejected() {
        let tree = sample_tree(3);
        let store =
            PagedNodeStore::build(&tree, U32Codec, 128, BufferPoolConfig::lru(2));
        let _ = store.read_node(NodeId(9999));
    }
}
