//! Axis-aligned boxes in `D` dimensions and the geometric primitives the
//! R*-tree heuristics are built from.

/// An axis-aligned bounding box in `D` dimensions.
///
/// `D = 2` is the spatial MBR of the classic R-tree; `D = 3` adds the
/// normalised aggregate dimension of the TAR-tree's integral grouping
/// strategy (Section 5.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    /// Lower corner.
    pub min: [f64; D],
    /// Upper corner.
    pub max: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// A degenerate box at a single point.
    pub fn point(p: [f64; D]) -> Self {
        Rect { min: p, max: p }
    }

    /// A box from two corners.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any `min[d] > max[d]`.
    pub fn new(min: [f64; D], max: [f64; D]) -> Self {
        debug_assert!(
            (0..D).all(|d| min[d] <= max[d]),
            "rect min must not exceed max"
        );
        Rect { min, max }
    }

    /// The "empty" box (identity for [`Rect::union`]).
    pub fn empty() -> Self {
        Rect {
            min: [f64::INFINITY; D],
            max: [f64::NEG_INFINITY; D],
        }
    }

    /// Whether this is the empty box.
    pub fn is_empty(&self) -> bool {
        (0..D).any(|d| self.min[d] > self.max[d])
    }

    /// The smallest box covering both inputs.
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        let mut r = *self;
        for d in 0..D {
            r.min[d] = r.min[d].min(other.min[d]);
            r.max[d] = r.max[d].max(other.max[d]);
        }
        r
    }

    /// D-dimensional volume (area for `D = 2`).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|d| self.max[d] - self.min[d]).product()
    }

    /// Sum of edge lengths (the R*-tree margin heuristic).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|d| self.max[d] - self.min[d]).sum()
    }

    /// Volume of the intersection of the two boxes.
    pub fn overlap(&self, other: &Rect<D>) -> f64 {
        let mut v = 1.0;
        for d in 0..D {
            let lo = self.min[d].max(other.min[d]);
            let hi = self.max[d].min(other.max[d]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// How much the volume grows when extended to cover `other`.
    pub fn enlargement(&self, other: &Rect<D>) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Whether the boxes share any point (closed boxes).
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        (0..D).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// Whether `other` lies fully inside `self`.
    pub fn contains(&self, other: &Rect<D>) -> bool {
        (0..D).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// Whether the point lies inside the box.
    pub fn contains_point(&self, p: &[f64; D]) -> bool {
        (0..D).all(|d| self.min[d] <= p[d] && p[d] <= self.max[d])
    }

    /// The centre point.
    pub fn center(&self) -> [f64; D] {
        std::array::from_fn(|d| 0.5 * (self.min[d] + self.max[d]))
    }

    /// Squared Euclidean distance between the centres of two boxes.
    pub fn center_dist2(&self, other: &Rect<D>) -> f64 {
        let (a, b) = (self.center(), other.center());
        (0..D).map(|d| (a[d] - b[d]) * (a[d] - b[d])).sum()
    }

    /// Squared minimum Euclidean distance from `p` to the box (0 inside) —
    /// the classic MINDIST of best-first nearest-neighbour search.
    pub fn min_dist2(&self, p: &[f64; D]) -> f64 {
        (0..D)
            .map(|d| {
                let gap = if p[d] < self.min[d] {
                    self.min[d] - p[d]
                } else if p[d] > self.max[d] {
                    p[d] - self.max[d]
                } else {
                    0.0
                };
                gap * gap
            })
            .sum()
    }

    /// The first two dimensions as a 2-D rectangle (the spatial projection
    /// of a 3-D TAR grouping box).
    pub fn project2(&self) -> Rect<2> {
        Rect {
            min: [self.min[0], self.min[1]],
            max: [self.max[0], self.max[1]],
        }
    }
}

/// Euclidean distance between two points.
pub fn dist<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    (0..D)
        .map(|d| (a[d] - b[d]) * (a[d] - b[d]))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect<2> {
        Rect::new([x0, y0], [x1, y1])
    }

    #[test]
    fn union_and_area() {
        let a = r2(0.0, 0.0, 2.0, 1.0);
        let b = r2(1.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, r2(0.0, -1.0, 3.0, 1.0));
        assert!((a.area() - 2.0).abs() < 1e-12);
        assert!((u.area() - 6.0).abs() < 1e-12);
        assert!((a.margin() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_box_is_union_identity() {
        let e = Rect::<2>::empty();
        let a = r2(1.0, 1.0, 2.0, 2.0);
        assert!(e.is_empty());
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
    }

    #[test]
    fn overlap_cases() {
        let a = r2(0.0, 0.0, 2.0, 2.0);
        assert!((a.overlap(&r2(1.0, 1.0, 3.0, 3.0)) - 1.0).abs() < 1e-12);
        assert_eq!(a.overlap(&r2(3.0, 3.0, 4.0, 4.0)), 0.0);
        // Touching edges have zero overlap volume but do intersect.
        let touch = r2(2.0, 0.0, 3.0, 2.0);
        assert_eq!(a.overlap(&touch), 0.0);
        assert!(a.intersects(&touch));
    }

    #[test]
    fn enlargement() {
        let a = r2(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.enlargement(&r2(0.2, 0.2, 0.8, 0.8)), 0.0);
        assert!((a.enlargement(&r2(0.0, 0.0, 2.0, 1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let a = r2(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains(&r2(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains(&r2(3.0, 3.0, 5.0, 5.0)));
        assert!(a.contains(&a));
        assert!(a.contains_point(&[0.0, 4.0]));
        assert!(!a.contains_point(&[4.1, 0.0]));
    }

    #[test]
    fn min_dist2_quadrants() {
        let a = r2(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.min_dist2(&[2.0, 2.0]), 0.0); // inside
        assert!((a.min_dist2(&[0.0, 2.0]) - 1.0).abs() < 1e-12); // left
        assert!((a.min_dist2(&[0.0, 0.0]) - 2.0).abs() < 1e-12); // corner
        assert!((a.min_dist2(&[5.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn center_and_distance() {
        let a = r2(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.center(), [1.0, 1.0]);
        let b = r2(4.0, 1.0, 4.0, 1.0);
        assert!((a.center_dist2(&b) - 9.0).abs() < 1e-12);
        assert!((dist(&a.center(), &b.center()) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn three_d_volume_and_projection() {
        let a = Rect::new([0.0, 0.0, 0.0], [2.0, 3.0, 0.5]);
        assert!((a.area() - 3.0).abs() < 1e-12);
        assert!((a.margin() - 5.5).abs() < 1e-12);
        assert_eq!(a.project2(), r2(0.0, 0.0, 2.0, 3.0));
    }

    #[test]
    fn point_rect() {
        let p = Rect::point([1.0, 2.0]);
        assert_eq!(p.area(), 0.0);
        assert!(p.contains_point(&[1.0, 2.0]));
        assert!(!p.is_empty());
    }
}
