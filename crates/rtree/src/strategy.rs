//! Pluggable entry grouping strategies.
//!
//! Section 5 of the paper shows that the TAR-tree's performance hinges on
//! *how entries are grouped into nodes*, and compares three strategies:
//! spatial-extent grouping (plain R*), aggregate-distribution grouping, and
//! the proposed integral 3-D grouping. This module defines the strategy
//! interface; the classic R* heuristics ([`RStarGrouping`]) implement it for
//! any dimension (2-D ⇒ IND-spa, 3-D ⇒ the TAR-tree). The
//! aggregate-distribution strategy lives in the `knnta-core` crate because it
//! groups on the entries' aggregate series rather than their boxes.

use crate::geom::Rect;

/// A read-only view of one entry as seen by a grouping strategy: its
/// bounding box in grouping space and its augmented value.
#[derive(Debug)]
pub struct EntryView<'a, const D: usize, V> {
    /// The entry's box.
    pub rect: &'a Rect<D>,
    /// The entry's augmented value (aggregate series for the TAR layers).
    pub aug: &'a V,
}

/// How entries are grouped into nodes: subtree choice on insertion, node
/// splitting, and forced-reinsert candidate selection.
pub trait GroupingStrategy<const D: usize, V> {
    /// The child entry of `children` into which `new` should descend.
    /// `child_is_leaf` is true when the children are leaf nodes (R* then
    /// minimises overlap enlargement instead of area enlargement).
    fn choose_subtree(
        &self,
        children: &[EntryView<'_, D, V>],
        new: &EntryView<'_, D, V>,
        child_is_leaf: bool,
    ) -> usize;

    /// Partitions an overflowing entry set into two groups, each of at least
    /// `min_fill` entries. Returns the group assignment (`false` = first
    /// group).
    fn split(&self, entries: &[EntryView<'_, D, V>], min_fill: usize) -> Vec<bool>;

    /// The `count` entries to remove and reinsert on overflow, in the order
    /// they should be reinserted. Return an empty vector to disable forced
    /// reinsertion for this strategy.
    fn reinsert_candidates(&self, entries: &[EntryView<'_, D, V>], count: usize) -> Vec<usize>;
}

/// The classic R\*-tree heuristics (Beckmann et al., SIGMOD 1990), operating
/// purely on the entries' boxes — in 2-D this is the paper's IND-spa
/// baseline, in 3-D (with the normalised aggregate as the third coordinate)
/// it is the TAR-tree's integral grouping strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RStarGrouping;

impl RStarGrouping {
    /// R* split: choose the axis minimising total margin over all valid
    /// distributions, then the distribution minimising overlap (ties:
    /// area).
    fn rstar_split<const D: usize, V>(
        entries: &[EntryView<'_, D, V>],
        min_fill: usize,
    ) -> Vec<bool> {
        let n = entries.len();
        debug_assert!(n >= 2 * min_fill, "cannot split {n} entries at {min_fill}");

        // For each axis, consider entries sorted by lower and by upper
        // coordinate; for each sort and split position k in
        // [min_fill, n - min_fill], the two groups are the first k and the
        // remaining entries.
        let mut best: Option<(f64, Vec<bool>)> = None; // (axis margin sum, mask)
        for axis in 0..D {
            let mut orders: [Vec<usize>; 2] = [(0..n).collect(), (0..n).collect()];
            orders[0].sort_by(|&a, &b| {
                entries[a].rect.min[axis]
                    .partial_cmp(&entries[b].rect.min[axis])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            orders[1].sort_by(|&a, &b| {
                entries[a].rect.max[axis]
                    .partial_cmp(&entries[b].rect.max[axis])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

            // Margin sum decides the split axis; within the axis the
            // distribution minimising (overlap, area, margin) wins — the
            // margin tie-break keeps degenerate (zero-extent) inputs from
            // collapsing every criterion to 0.
            let mut axis_margin = 0.0;
            let mut axis_best: Option<((f64, f64, f64), Vec<bool>)> = None;
            for order in &orders {
                // Prefix/suffix bounding boxes for O(n) per sort.
                let mut prefix = vec![Rect::<D>::empty(); n + 1];
                let mut suffix = vec![Rect::<D>::empty(); n + 1];
                for i in 0..n {
                    prefix[i + 1] = prefix[i].union(entries[order[i]].rect);
                    suffix[n - 1 - i] = suffix[n - i].union(entries[order[n - 1 - i]].rect);
                }
                for k in min_fill..=(n - min_fill) {
                    let (a, b) = (&prefix[k], &suffix[k]);
                    axis_margin += a.margin() + b.margin();
                    let key = (a.overlap(b), a.area() + b.area(), a.margin() + b.margin());
                    if axis_best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                        let mut mask = vec![true; n];
                        for &i in &order[..k] {
                            mask[i] = false;
                        }
                        axis_best = Some((key, mask));
                    }
                }
            }

            if best.as_ref().is_none_or(|(m, _)| axis_margin < *m) {
                let (_, mask) = axis_best.expect("at least one distribution");
                best = Some((axis_margin, mask));
            }
        }
        best.expect("at least one axis").1
    }
}

impl<const D: usize, V> GroupingStrategy<D, V> for RStarGrouping {
    fn choose_subtree(
        &self,
        children: &[EntryView<'_, D, V>],
        new: &EntryView<'_, D, V>,
        child_is_leaf: bool,
    ) -> usize {
        debug_assert!(!children.is_empty());
        // Margin enlargement breaks ties when volumes degenerate (flat
        // boxes — e.g. power-law aggregate data collapsing the third
        // dimension — make every volume-based criterion 0).
        let margin_delta =
            |c: &EntryView<'_, D, V>| c.rect.union(new.rect).margin() - c.rect.margin();
        if child_is_leaf {
            // Minimum overlap enlargement; ties by area enlargement, then
            // margin enlargement, then area.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, c) in children.iter().enumerate() {
                let enlarged = c.rect.union(new.rect);
                let mut overlap_delta = 0.0;
                for (j, o) in children.iter().enumerate() {
                    if i != j {
                        overlap_delta += enlarged.overlap(o.rect) - c.rect.overlap(o.rect);
                    }
                }
                let key = (
                    overlap_delta,
                    c.rect.enlargement(new.rect),
                    margin_delta(c),
                    c.rect.area(),
                );
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            // Minimum area enlargement; ties by margin enlargement, then
            // area, then margin.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, c) in children.iter().enumerate() {
                let key = (
                    c.rect.enlargement(new.rect),
                    margin_delta(c),
                    c.rect.area(),
                    c.rect.margin(),
                );
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    fn split(&self, entries: &[EntryView<'_, D, V>], min_fill: usize) -> Vec<bool> {
        Self::rstar_split(entries, min_fill)
    }

    fn reinsert_candidates(&self, entries: &[EntryView<'_, D, V>], count: usize) -> Vec<usize> {
        // R* forced reinsert: remove the `count` entries whose centres are
        // farthest from the node centre, then reinsert them closest-first
        // ("close reinsert").
        let node_rect = entries
            .iter()
            .fold(Rect::<D>::empty(), |acc, e| acc.union(e.rect));
        let mut by_dist: Vec<usize> = (0..entries.len()).collect();
        by_dist.sort_by(|&a, &b| {
            let da = entries[a].rect.center_dist2(&node_rect);
            let db = entries[b].rect.center_dist2(&node_rect);
            db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut chosen: Vec<usize> = by_dist.into_iter().take(count).collect();
        chosen.reverse(); // closest of the removed entries reinserts first
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(rects: &[Rect<2>]) -> Vec<EntryView<'_, 2, ()>> {
        const UNIT: () = ();
        rects
            .iter()
            .map(|rect| EntryView { rect, aug: &UNIT })
            .collect()
    }

    #[test]
    fn choose_subtree_prefers_containment() {
        let rects = vec![
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([20.0, 20.0], [30.0, 30.0]),
        ];
        let new = Rect::point([25.0, 25.0]);
        let nv = EntryView {
            rect: &new,
            aug: &(),
        };
        let s = RStarGrouping;
        let idx =
            <RStarGrouping as GroupingStrategy<2, ()>>::choose_subtree(&s, &views(&rects), &nv, true);
        assert_eq!(idx, 1);
        let idx = <RStarGrouping as GroupingStrategy<2, ()>>::choose_subtree(
            &s,
            &views(&rects),
            &nv,
            false,
        );
        assert_eq!(idx, 1);
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clusters of points on the x axis must split cleanly.
        let mut rects = Vec::new();
        for i in 0..5 {
            rects.push(Rect::point([i as f64 * 0.1, 0.0]));
        }
        for i in 0..5 {
            rects.push(Rect::point([100.0 + i as f64 * 0.1, 0.0]));
        }
        let s = RStarGrouping;
        let mask = <RStarGrouping as GroupingStrategy<2, ()>>::split(&s, &views(&rects), 2);
        // All of the first cluster in one group, all of the second in the other.
        assert!(mask[..5].iter().all(|&m| m == mask[0]));
        assert!(mask[5..].iter().all(|&m| m == mask[5]));
        assert_ne!(mask[0], mask[5]);
    }

    #[test]
    fn split_respects_min_fill() {
        let rects: Vec<Rect<2>> = (0..10).map(|i| Rect::point([i as f64, 0.0])).collect();
        let s = RStarGrouping;
        for min_fill in [2, 3, 4, 5] {
            let mask = <RStarGrouping as GroupingStrategy<2, ()>>::split(&s, &views(&rects), min_fill);
            let a = mask.iter().filter(|&&m| !m).count();
            let b = mask.len() - a;
            assert!(a >= min_fill && b >= min_fill, "min_fill={min_fill} a={a} b={b}");
        }
    }

    #[test]
    fn split_picks_discriminating_axis() {
        // Points vary on y, constant on x: the split must use the y axis.
        let rects: Vec<Rect<2>> = (0..8).map(|i| Rect::point([0.0, i as f64])).collect();
        let s = RStarGrouping;
        let mask = <RStarGrouping as GroupingStrategy<2, ()>>::split(&s, &views(&rects), 3);
        // A y-axis split groups a prefix of the sorted ys together.
        let lows: Vec<bool> = (0..8).map(|i| mask[i]).collect();
        let flips = lows.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flips, 1, "contiguous split along y, got {lows:?}");
    }

    #[test]
    fn reinsert_candidates_pick_farthest() {
        // Cluster near the node centre, two extremes at the edges: the
        // extremes are farthest from the centre and must be evicted.
        let mut rects: Vec<Rect<2>> = (0..8)
            .map(|i| Rect::point([45.0 + (i % 3) as f64, 50.0]))
            .collect();
        rects.push(Rect::point([0.0, 50.0])); // index 8
        rects.push(Rect::point([100.0, 50.0])); // index 9
        let s = RStarGrouping;
        let cands =
            <RStarGrouping as GroupingStrategy<2, ()>>::reinsert_candidates(&s, &views(&rects), 2);
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![8, 9], "the two extremes are evicted");
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn three_d_split_compiles_and_balances() {
        let rects: Vec<Rect<3>> = (0..12)
            .map(|i| Rect::point([i as f64, 0.0, (i % 3) as f64]))
            .collect();
        const UNIT: () = ();
        let views: Vec<EntryView<'_, 3, ()>> = rects
            .iter()
            .map(|rect| EntryView { rect, aug: &UNIT })
            .collect();
        let s = RStarGrouping;
        let mask = <RStarGrouping as GroupingStrategy<3, ()>>::split(&s, &views, 4);
        let a = mask.iter().filter(|&&m| !m).count();
        assert!(a >= 4 && mask.len() - a >= 4);
    }
}
