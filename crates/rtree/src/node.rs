//! Arena-backed node storage.

use crate::geom::Rect;

/// Index of a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// What an entry points at.
#[derive(Debug, Clone)]
pub enum EntryPayload<T> {
    /// An internal entry pointing at a child node.
    Child(NodeId),
    /// A leaf entry holding a data item.
    Data(T),
}

/// One slot of a node: bounding box, augmented value, payload.
///
/// For internal entries, `rect` is the union of the child's entry rects and
/// `aug` the merge of the child's entry augmentations — the TAR-tree stores
/// its per-entry TIA summary (per-epoch max series) in `aug`.
#[derive(Debug, Clone)]
pub struct Entry<const D: usize, T, V> {
    /// Bounding box in grouping space.
    pub rect: Rect<D>,
    /// Augmented value (e.g. the entry's aggregate series).
    pub aug: V,
    /// Child pointer or data item.
    pub payload: EntryPayload<T>,
}

impl<const D: usize, T, V> Entry<D, T, V> {
    /// The child node id, if this is an internal entry.
    pub fn child_id(&self) -> Option<NodeId> {
        match self.payload {
            EntryPayload::Child(id) => Some(id),
            EntryPayload::Data(_) => None,
        }
    }

    /// The data item, if this is a leaf entry.
    pub fn data(&self) -> Option<&T> {
        match &self.payload {
            EntryPayload::Data(t) => Some(t),
            EntryPayload::Child(_) => None,
        }
    }
}

/// One R-tree node.
#[derive(Debug, Clone)]
pub struct Node<const D: usize, T, V> {
    /// Height above the leaves: 0 for leaf nodes.
    pub level: u32,
    /// The node's entries.
    pub entries: Vec<Entry<D, T, V>>,
}

impl<const D: usize, T, V> Node<D, T, V> {
    pub(crate) fn new(level: u32) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// Whether this node is at leaf level.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Union of the entry rects.
    pub fn bounding_rect(&self) -> Rect<D> {
        self.entries
            .iter()
            .fold(Rect::empty(), |acc, e| acc.union(&e.rect))
    }
}

/// A slab arena of nodes with a free list.
#[derive(Debug)]
pub(crate) struct Arena<const D: usize, T, V> {
    slots: Vec<Option<Node<D, T, V>>>,
    free: Vec<NodeId>,
}

impl<const D: usize, T, V> Arena<D, T, V> {
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    pub fn alloc(&mut self, node: Node<D, T, V>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.slots[id.index()] = Some(node);
            id
        } else {
            let id = NodeId(self.slots.len() as u32);
            self.slots.push(Some(node));
            id
        }
    }

    pub fn free(&mut self, id: NodeId) {
        assert!(
            self.slots[id.index()].take().is_some(),
            "double free of {id}"
        );
        self.free.push(id);
    }

    pub fn get(&self, id: NodeId) -> &Node<D, T, V> {
        self.slots[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("access to freed {id}"))
    }

    pub fn get_mut(&mut self, id: NodeId) -> &mut Node<D, T, V> {
        self.slots[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("access to freed {id}"))
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type N = Node<2, u32, ()>;

    fn leaf_entry(x: f64, item: u32) -> Entry<2, u32, ()> {
        Entry {
            rect: Rect::point([x, 0.0]),
            aug: (),
            payload: EntryPayload::Data(item),
        }
    }

    #[test]
    fn node_basics() {
        let mut n = N::new(0);
        assert!(n.is_leaf());
        assert!(n.is_empty());
        n.entries.push(leaf_entry(1.0, 7));
        n.entries.push(leaf_entry(3.0, 8));
        assert_eq!(n.len(), 2);
        let r = n.bounding_rect();
        assert_eq!(r.min, [1.0, 0.0]);
        assert_eq!(r.max, [3.0, 0.0]);
        assert_eq!(n.entries[0].data(), Some(&7));
        assert_eq!(n.entries[0].child_id(), None);
    }

    #[test]
    fn arena_alloc_free_reuse() {
        let mut a: Arena<2, u32, ()> = Arena::new();
        let n1 = a.alloc(N::new(0));
        let n2 = a.alloc(N::new(1));
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(n2).level, 1);
        a.free(n1);
        assert_eq!(a.len(), 1);
        let n3 = a.alloc(N::new(2));
        assert_eq!(n3, n1, "slot reused");
        assert_eq!(a.get(n3).level, 2);
        a.get_mut(n3).level = 5;
        assert_eq!(a.get(n3).level, 5);
    }

    #[test]
    #[should_panic(expected = "freed")]
    fn access_after_free_panics() {
        let mut a: Arena<2, u32, ()> = Arena::new();
        let n = a.alloc(N::new(0));
        a.free(n);
        let _ = a.get(n);
    }
}
