//! Structural parameters derived from the node size in bytes.

/// R*-tree parameters.
///
/// The paper derives node capacity from the node size in bytes: a 16-byte
/// header plus `2·D·4 + 4` bytes per entry (single-precision box corners and
/// a child pointer), which reproduces the paper's "node capacities are 50
/// and 36 for 2- and 3-dimensional entries" at 1024-byte nodes (Section 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per non-root node (`m`, R* recommends `0.4·M`).
    pub min_entries: usize,
    /// Entries removed by a forced reinsert (`p`, R* recommends `0.3·M`).
    pub reinsert_count: usize,
    /// Whether forced reinsertion is enabled (ablation switch).
    pub forced_reinsert: bool,
}

/// Node header bytes assumed by the capacity formula.
pub const NODE_HEADER_BYTES: usize = 16;

impl RTreeParams {
    /// Parameters for a node of `node_size` bytes holding `dims`-dimensional
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if the node cannot hold at least 4 entries.
    pub fn for_node_size(node_size: usize, dims: usize) -> Self {
        let entry_bytes = 2 * dims * 4 + 4;
        let max_entries = node_size.saturating_sub(NODE_HEADER_BYTES) / entry_bytes;
        assert!(
            max_entries >= 4,
            "node size {node_size} too small for {dims}-D entries"
        );
        Self::with_max_entries(max_entries)
    }

    /// Parameters from an explicit fanout (R* fill ratios applied).
    pub fn with_max_entries(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        RTreeParams {
            max_entries,
            min_entries: (2 * max_entries / 5).max(2),
            reinsert_count: (3 * max_entries / 10).max(1),
            forced_reinsert: true,
        }
    }

    /// Disables forced reinsertion (for the ablation benchmark).
    pub fn without_reinsert(mut self) -> Self {
        self.forced_reinsert = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities() {
        // Section 8: 1024-byte nodes hold 50 2-D or 36 3-D entries.
        assert_eq!(RTreeParams::for_node_size(1024, 2).max_entries, 50);
        assert_eq!(RTreeParams::for_node_size(1024, 3).max_entries, 36);
    }

    #[test]
    fn other_node_sizes() {
        assert_eq!(RTreeParams::for_node_size(512, 2).max_entries, 24);
        assert_eq!(RTreeParams::for_node_size(512, 3).max_entries, 17);
        assert_eq!(RTreeParams::for_node_size(8192, 2).max_entries, 408);
        assert_eq!(RTreeParams::for_node_size(8192, 3).max_entries, 292);
    }

    #[test]
    fn fill_ratios() {
        let p = RTreeParams::with_max_entries(50);
        assert_eq!(p.min_entries, 20);
        assert_eq!(p.reinsert_count, 15);
        assert!(p.forced_reinsert);
        assert!(!p.without_reinsert().forced_reinsert);
    }

    #[test]
    fn min_stays_below_half() {
        for m in 4..200 {
            let p = RTreeParams::with_max_entries(m);
            assert!(p.min_entries * 2 <= p.max_entries + 1, "m={m}");
            assert!(p.reinsert_count < p.max_entries, "m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_node_rejected() {
        let _ = RTreeParams::for_node_size(64, 3);
    }
}
