//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building a TAR-tree by repeated insertion is `O(n log n)` with large
//! constants (choose-subtree, forced reinserts, splits). When the dataset is
//! known up front — every experiment in the paper builds the index over a
//! snapshot — STR packing (Leutenegger et al., ICDE 1997) produces a
//! near-fully-packed tree in one pass per level: sort by the first
//! grouping-space coordinate, tile into slabs, recurse on the remaining
//! coordinates, and emit runs of `max_entries` as nodes.
//!
//! The packing operates in the same grouping space as the incremental
//! insertion path (2-D for IND-spa, 3-D with the normalised aggregate for
//! the TAR-tree), so bulk-loaded trees exhibit the same pruning behaviour;
//! the `ablation` benchmarks compare both construction paths.

use crate::geom::Rect;
use crate::node::{Entry, EntryPayload, Node};
use crate::strategy::GroupingStrategy;
use crate::tree::{Augmentation, RStarTree};

impl<const D: usize, T, A, S> RStarTree<D, T, A, S>
where
    A: Augmentation<T>,
    S: GroupingStrategy<D, A::Value>,
{
    /// Bulk-loads `items` into this tree with STR packing.
    ///
    /// # Panics
    ///
    /// Panics unless the tree is empty.
    pub fn bulk_load(&mut self, items: Vec<(Rect<D>, T, A::Value)>) {
        assert!(self.is_empty(), "bulk_load requires an empty tree");
        if items.is_empty() {
            return;
        }
        let cap = self.params().max_entries;
        let n = items.len();

        // Pack the data entries into leaves.
        let entries: Vec<Entry<D, T, A::Value>> = items
            .into_iter()
            .map(|(rect, item, aug)| Entry {
                rect,
                aug,
                payload: EntryPayload::Data(item),
            })
            .collect();
        let mut level = 0u32;
        let mut nodes: Vec<crate::node::NodeId> = str_tiles::<D, _>(entries, cap)
            .into_iter()
            .map(|chunk| {
                let mut node = Node::new(0);
                node.entries = chunk;
                self.alloc_node(node)
            })
            .collect();

        // Pack upper levels until a single root remains.
        while nodes.len() > 1 {
            level += 1;
            let child_entries: Vec<Entry<D, T, A::Value>> = nodes
                .iter()
                .map(|&id| self.child_entry_public(id))
                .collect();
            nodes = str_tiles::<D, _>(child_entries, cap)
                .into_iter()
                .map(|chunk| {
                    let mut node = Node::new(level);
                    node.entries = chunk;
                    self.alloc_node(node)
                })
                .collect();
        }
        let root = nodes[0];
        self.replace_root_for_bulk(root, n);
    }
}

/// Recursive STR tiling: partitions `entries` into chunks of at most `cap`,
/// spatially coherent in all `D` dimensions of their box centres.
fn str_tiles<const D: usize, E>(entries: Vec<E>, cap: usize) -> Vec<Vec<E>>
where
    E: HasRect<D>,
{
    let mut out = Vec::new();
    tile_rec(entries, cap, 0, &mut out);
    out
}

/// One tiling step along dimension `dim`.
fn tile_rec<const D: usize, E>(mut entries: Vec<E>, cap: usize, dim: usize, out: &mut Vec<Vec<E>>)
where
    E: HasRect<D>,
{
    let n = entries.len();
    if n <= cap {
        if n > 0 {
            out.push(entries);
        }
        return;
    }
    if dim + 1 == D {
        // Last dimension: sort and emit runs of `cap`.
        entries.sort_by(|a, b| {
            a.center(dim)
                .partial_cmp(&b.center(dim))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        while !entries.is_empty() {
            let take = entries.len().min(cap);
            let rest = entries.split_off(take);
            out.push(entries);
            entries = rest;
        }
        return;
    }
    // Tile into ceil(pages^(1/dims_left)) slabs along this dimension.
    let pages = n.div_ceil(cap);
    let dims_left = (D - dim) as f64;
    let slabs = (pages as f64).powf(1.0 / dims_left).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    entries.sort_by(|a, b| {
        a.center(dim)
            .partial_cmp(&b.center(dim))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    while !entries.is_empty() {
        let take = entries.len().min(slab_size);
        let rest = entries.split_off(take);
        tile_rec(entries, cap, dim + 1, out);
        entries = rest;
    }
}

/// Anything with a box centre (entries of any payload type).
trait HasRect<const D: usize> {
    fn center(&self, dim: usize) -> f64;
}

impl<const D: usize, T, V> HasRect<D> for Entry<D, T, V> {
    fn center(&self, dim: usize) -> f64 {
        0.5 * (self.rect.min[dim] + self.rect.max[dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoAug, RStarGrouping, RTreeParams};
    use pagestore::AccessStats;

    type Tree = RStarTree<2, u32, NoAug, RStarGrouping>;

    fn points(n: usize) -> Vec<(Rect<2>, u32, ())> {
        let mut x = 42u64;
        (0..n)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = ((x >> 16) % 10_000) as f64 / 10.0;
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let b = ((x >> 16) % 10_000) as f64 / 10.0;
                (Rect::point([a, b]), i as u32, ())
            })
            .collect()
    }

    fn bulk_tree(n: usize, cap: usize) -> (Tree, Vec<(Rect<2>, u32, ())>) {
        let items = points(n);
        let mut t = Tree::new(
            RTreeParams::with_max_entries(cap),
            NoAug,
            RStarGrouping,
            AccessStats::new(),
        );
        t.bulk_load(items.clone());
        (t, items)
    }

    #[test]
    fn bulk_load_structure_and_content() {
        for n in [1usize, 7, 8, 9, 100, 1000] {
            let (t, items) = bulk_tree(n, 8);
            assert_eq!(t.len(), n, "n={n}");
            t.validate_bulk();
            let mut got: Vec<u32> = t.items().into_iter().map(|(_, &id)| id).collect();
            got.sort_unstable();
            let want: Vec<u32> = (0..n as u32).collect();
            assert_eq!(got, want, "n={n}");
            let _ = items;
        }
    }

    #[test]
    fn bulk_load_queries_match_scan() {
        let (t, items) = bulk_tree(600, 10);
        let q = [333.0, 444.0];
        let got: Vec<u32> = t.nearest(&q, 12).into_iter().map(|(_, &id)| id).collect();
        let mut by_dist: Vec<(f64, u32)> = items
            .iter()
            .map(|(r, id, _)| (crate::geom::dist(&r.center(), &q), *id))
            .collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let want: Vec<u32> = by_dist[..12].iter().map(|&(_, id)| id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_packs_tightly() {
        let (t, _) = bulk_tree(1000, 10);
        // STR should produce close to n/cap leaves (within ~30%).
        let min_nodes = 1000usize.div_ceil(10);
        assert!(
            t.node_count() <= min_nodes * 2,
            "{} nodes for {} minimum",
            t.node_count(),
            min_nodes
        );
    }

    #[test]
    fn bulk_then_insert_and_remove() {
        let (mut t, items) = bulk_tree(300, 8);
        t.insert(Rect::point([5.0, 5.0]), 10_000);
        assert_eq!(t.len(), 301);
        let removed = t.remove(&items[7].0, |&id| id == 7);
        assert_eq!(removed, Some(7));
        // STR leaves trailing nodes underfull, so only the bulk-grade
        // invariants apply after further updates.
        t.validate_bulk();
        assert_eq!(t.len(), 300);
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn bulk_into_non_empty_rejected() {
        let (mut t, _) = bulk_tree(10, 8);
        t.bulk_load(points(5));
    }

    #[test]
    fn bulk_load_empty_is_noop() {
        let mut t = Tree::new(
            RTreeParams::with_max_entries(8),
            NoAug,
            RStarGrouping,
            AccessStats::new(),
        );
        t.bulk_load(Vec::new());
        assert!(t.is_empty());
    }

    #[test]
    fn three_d_bulk_load() {
        let mut t: RStarTree<3, u32, NoAug, RStarGrouping> = RStarTree::new(
            RTreeParams::with_max_entries(9),
            NoAug,
            RStarGrouping,
            AccessStats::new(),
        );
        let mut x = 9u64;
        let items: Vec<(Rect<3>, u32, ())> = (0..500)
            .map(|i| {
                let mut c = [0.0; 3];
                for v in c.iter_mut() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *v = ((x >> 16) % 1000) as f64 / 1000.0;
                }
                (Rect::point(c), i, ())
            })
            .collect();
        t.bulk_load(items);
        assert_eq!(t.len(), 500);
        t.validate_bulk();
    }
}
