//! Property-based tests: R*-tree structure and query answers under random
//! workloads, for every grouping-relevant configuration.

use knnta_util::prop::{check, Gen};
use pagestore::AccessStats;
use rtree::{dist, NoAug, RStarGrouping, RStarTree, RTreeParams, Rect};

type Tree2 = RStarTree<2, usize, NoAug, RStarGrouping>;

fn build(points: &[[f64; 2]], max_entries: usize, reinsert: bool) -> Tree2 {
    let params = if reinsert {
        RTreeParams::with_max_entries(max_entries)
    } else {
        RTreeParams::with_max_entries(max_entries).without_reinsert()
    };
    let mut t = Tree2::new(params, NoAug, RStarGrouping, AccessStats::new());
    for (i, p) in points.iter().enumerate() {
        t.insert(Rect::point(*p), i);
    }
    t
}

fn gen_points(g: &mut Gen, max: usize) -> Vec<[f64; 2]> {
    g.vec(1, max, |g| [g.f64_in(0.0..1000.0), g.f64_in(0.0..1000.0)])
}

/// Structural invariants hold after arbitrary insertions, with and
/// without forced reinsertion, for several fanouts.
#[test]
fn invariants_after_inserts() {
    check("invariants_after_inserts", 48, |g| {
        let points = gen_points(g, 300);
        let max_entries = g.usize_in(4..24);
        let reinsert = g.bool();
        let t = build(&points, max_entries, reinsert);
        t.validate();
        t.validate_augs();
        assert_eq!(t.len(), points.len());
    });
}

/// k-nearest-neighbour answers always match a linear scan.
#[test]
fn nearest_matches_scan() {
    check("nearest_matches_scan", 48, |g| {
        let points = gen_points(g, 250);
        let q = [g.f64_in(0.0..1000.0), g.f64_in(0.0..1000.0)];
        let k = g.usize_in(1..20);
        let t = build(&points, 8, true);
        let got: Vec<f64> = t.nearest(&q, k).into_iter().map(|(d, _)| d).collect();
        let mut want: Vec<f64> = points.iter().map(|p| dist(p, &q)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.truncate(k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    });
}

/// Range queries always match a linear scan.
#[test]
fn range_matches_scan() {
    check("range_matches_scan", 48, |g| {
        let points = gen_points(g, 250);
        let (x, y) = (g.f64_in(0.0..900.0), g.f64_in(0.0..900.0));
        let (w, h) = (g.f64_in(1.0..500.0), g.f64_in(1.0..500.0));
        let q = Rect::new([x, y], [x + w, y + h]);
        let t = build(&points, 10, true);
        let mut got: Vec<usize> = t.range_query(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    });
}

/// Interleaved inserts and removes keep the structure valid and the
/// content exact.
#[test]
fn insert_remove_interleaving() {
    check("insert_remove_interleaving", 48, |g| {
        let points = gen_points(g, 160);
        let removals = g.vec(0, 80, |g| g.f64_in(0.0..1.0));
        let mut t = build(&points, 6, true);
        let mut alive: Vec<usize> = (0..points.len()).collect();
        for r in removals {
            if alive.is_empty() {
                break;
            }
            let pos = ((r * alive.len() as f64) as usize).min(alive.len() - 1);
            let id = alive.swap_remove(pos);
            let removed = t.remove(&Rect::point(points[id]), |&x| x == id);
            assert_eq!(removed, Some(id));
        }
        t.validate();
        assert_eq!(t.len(), alive.len());
        let mut got: Vec<usize> = t.items().into_iter().map(|(_, &i)| i).collect();
        got.sort_unstable();
        alive.sort_unstable();
        assert_eq!(got, alive);
    });
}

/// Duplicate positions (all items at one point) never break the tree.
#[test]
fn degenerate_duplicate_points() {
    check("degenerate_duplicate_points", 48, |g| {
        let n = g.usize_in(1..120);
        let points = vec![[5.0, 5.0]; n];
        let t = build(&points, 5, true);
        t.validate();
        let got = t.nearest(&[5.0, 5.0], n);
        assert_eq!(got.len(), n);
        assert!(got.iter().all(|(d, _)| *d == 0.0));
    });
}
