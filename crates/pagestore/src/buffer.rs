//! A policy-driven buffer pool over a [`Disk`].

use crate::disk::{Disk, PageId};
use crate::policy::{make_policy, BufferPoolConfig, PolicyKind, ReplacementPolicy};
use knnta_obs::AccessStats;
use knnta_util::codec::Bytes;
use knnta_util::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A fixed-capacity page buffer in front of a shared [`Disk`], with a
/// pluggable [`ReplacementPolicy`] (LRU by default, CLOCK and 2Q via
/// [`BufferPool::with_config`]).
///
/// The paper assigns each TIA "a maximum of 10 buffer slots"; the collective
/// processing experiment (Section 8.4) then disables buffering for the
/// individual-processing baseline — both configurations are expressible here
/// (`capacity == 0` means unbuffered pass-through).
///
/// Writes go through the buffer and are flushed lazily on eviction
/// (write-back); [`BufferPool::flush`] forces everything out. Reads on a miss
/// fetch from disk and may evict the policy's chosen victim.
#[derive(Debug)]
pub struct BufferPool {
    disk: Arc<Disk>,
    stats: AccessStats,
    state: Mutex<PoolState>,
    config: BufferPoolConfig,
}

#[derive(Debug)]
struct PoolState {
    /// page -> slot
    map: HashMap<PageId, usize>,
    /// slot -> (page, payload, dirty)
    slots: Vec<Option<(PageId, Bytes, bool)>>,
    free: Vec<usize>,
    policy: Box<dyn ReplacementPolicy>,
}

impl BufferPool {
    /// An LRU pool of `capacity` page slots over `disk` (the historical
    /// constructor; behaviour-identical to the pre-policy pool).
    ///
    /// `capacity == 0` disables buffering: every read/write goes straight to
    /// the disk (and still counts as a miss, so hit-rate metrics stay
    /// meaningful).
    pub fn new(disk: Arc<Disk>, capacity: usize) -> Self {
        BufferPool::with_config(disk, BufferPoolConfig::lru(capacity))
    }

    /// A pool with an explicit capacity + replacement-policy configuration.
    pub fn with_config(disk: Arc<Disk>, config: BufferPoolConfig) -> Self {
        let stats = disk.stats().clone();
        let capacity = config.capacity;
        BufferPool {
            disk,
            stats,
            state: Mutex::new(PoolState {
                map: HashMap::with_capacity(capacity),
                slots: (0..capacity).map(|_| None).collect(),
                free: (0..capacity).rev().collect(),
                policy: make_policy(config.policy, capacity),
            }),
            config,
        }
    }

    /// The pool's slot capacity.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// The pool's replacement policy.
    pub fn policy(&self) -> PolicyKind {
        self.config.policy
    }

    /// The pool's full configuration.
    pub fn config(&self) -> BufferPoolConfig {
        self.config
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// Reads `page` through the buffer.
    pub fn read(&self, page: PageId) -> Bytes {
        if self.config.capacity == 0 {
            self.stats.record_buffer_miss();
            return self.disk.read(page);
        }
        let mut st = self.state.lock();
        if let Some(&slot) = st.map.get(&page) {
            self.stats.record_buffer_hit();
            st.policy.on_hit(slot);
            let (_, data, _) = st.slots[slot].as_ref().expect("mapped slot occupied");
            return data.clone();
        }
        self.stats.record_buffer_miss();
        let data = self.disk.read(page);
        self.install(&mut st, page, data.clone(), false);
        data
    }

    /// Writes `page` through the buffer (write-back).
    pub fn write(&self, page: PageId, data: Bytes) {
        assert!(
            data.len() <= self.disk.page_size(),
            "payload of {} bytes exceeds page size {}",
            data.len(),
            self.disk.page_size()
        );
        if self.config.capacity == 0 {
            self.stats.record_buffer_miss();
            self.disk.write(page, data);
            return;
        }
        let mut st = self.state.lock();
        if let Some(&slot) = st.map.get(&page) {
            self.stats.record_buffer_hit();
            st.policy.on_hit(slot);
            st.slots[slot] = Some((page, data, true));
            return;
        }
        self.stats.record_buffer_miss();
        self.install(&mut st, page, data, true);
    }

    /// Allocates a fresh page on the underlying disk.
    pub fn allocate(&self) -> PageId {
        self.disk.allocate()
    }

    /// Flushes all dirty pages to disk (the buffer stays warm).
    pub fn flush(&self) {
        let mut st = self.state.lock();
        for slot in 0..st.slots.len() {
            if let Some((page, data, dirty)) = st.slots[slot].clone() {
                if dirty {
                    self.disk.write(page, data);
                    st.slots[slot] = Some((page, st.slots[slot].as_ref().unwrap().1.clone(), false));
                }
            }
        }
    }

    /// Drops every cached page, flushing dirty ones first.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        for slot in 0..st.slots.len() {
            if let Some((page, data, dirty)) = st.slots[slot].take() {
                if dirty {
                    self.disk.write(page, data);
                }
                st.free.push(slot);
            }
        }
        st.map.clear();
        st.policy.reset();
    }

    /// Installs `page` in a slot, evicting the policy's victim if needed.
    fn install(&self, st: &mut PoolState, page: PageId, data: Bytes, dirty: bool) {
        let slot = if let Some(slot) = st.free.pop() {
            slot
        } else {
            let victim = st.policy.evict().expect("non-empty pool has a victim");
            let (vp, vdata, vdirty) = st.slots[victim].take().expect("victim slot occupied");
            st.map.remove(&vp);
            if vdirty {
                self.disk.write(vp, vdata);
            }
            self.stats.record_buffer_eviction();
            victim
        };
        st.slots[slot] = Some((page, data, dirty));
        st.map.insert(page, slot);
        st.policy.on_insert(slot, page);
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Persist dirty pages so a pool can be torn down and rebuilt over the
        // same disk (tests and TIA reopen paths rely on this).
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> (BufferPool, AccessStats) {
        let stats = AccessStats::new();
        let disk = Arc::new(Disk::new(64, stats.clone()));
        (BufferPool::new(disk, cap), stats)
    }

    #[test]
    fn read_caches_page() {
        let (pool, stats) = pool(2);
        let p = pool.allocate();
        pool.disk().write(p, Bytes::from_static(b"v"));
        stats.reset();
        assert_eq!(pool.read(p), Bytes::from_static(b"v"));
        assert_eq!(pool.read(p), Bytes::from_static(b"v"));
        let s = stats.snapshot();
        assert_eq!(s.page_reads, 1, "second read must hit the buffer");
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.buffer_misses, 1);
    }

    #[test]
    fn lru_eviction_writes_back_dirty() {
        let (pool, stats) = pool(2);
        let a = pool.allocate();
        let b = pool.allocate();
        let c = pool.allocate();
        pool.write(a, Bytes::from_static(b"a"));
        pool.write(b, Bytes::from_static(b"b"));
        // Touch a so b becomes LRU.
        let _ = pool.read(a);
        pool.write(c, Bytes::from_static(b"c")); // evicts b
        assert_eq!(stats.snapshot().buffer_evictions, 1);
        // b must have been written back to disk.
        assert_eq!(pool.disk().read(b), Bytes::from_static(b"b"));
        // a is still cached.
        stats.reset();
        let _ = pool.read(a);
        assert_eq!(stats.snapshot().page_reads, 0);
    }

    #[test]
    fn write_hit_updates_cached_value() {
        let (pool, _) = pool(2);
        let p = pool.allocate();
        pool.write(p, Bytes::from_static(b"one"));
        pool.write(p, Bytes::from_static(b"two"));
        assert_eq!(pool.read(p), Bytes::from_static(b"two"));
        pool.flush();
        assert_eq!(pool.disk().read(p), Bytes::from_static(b"two"));
    }

    #[test]
    fn zero_capacity_is_passthrough() {
        let (pool, stats) = pool(0);
        let p = pool.allocate();
        pool.write(p, Bytes::from_static(b"x"));
        let _ = pool.read(p);
        let _ = pool.read(p);
        let s = stats.snapshot();
        assert_eq!(s.page_reads, 2);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.buffer_hits, 0);
        assert_eq!(s.buffer_misses, 3);
    }

    #[test]
    fn drop_flushes_dirty_pages() {
        let stats = AccessStats::new();
        let disk = Arc::new(Disk::new(64, stats.clone()));
        let p;
        {
            let pool = BufferPool::new(Arc::clone(&disk), 4);
            p = pool.allocate();
            pool.write(p, Bytes::from_static(b"persisted"));
        }
        assert_eq!(disk.read(p), Bytes::from_static(b"persisted"));
    }

    #[test]
    fn clear_persists_and_empties() {
        let (pool, stats) = pool(4);
        let p = pool.allocate();
        pool.write(p, Bytes::from_static(b"z"));
        pool.clear();
        stats.reset();
        assert_eq!(pool.read(p), Bytes::from_static(b"z"));
        assert_eq!(stats.snapshot().page_reads, 1, "cleared pool must re-read");
    }

    #[test]
    fn every_policy_round_trips_a_thrashing_workload() {
        for kind in PolicyKind::ALL {
            let stats = AccessStats::new();
            let disk = Arc::new(Disk::new(64, stats.clone()));
            let pool = BufferPool::with_config(disk, BufferPoolConfig::new(3, kind));
            assert_eq!(pool.policy(), kind);
            let ids: Vec<PageId> = (0..16).map(|_| pool.allocate()).collect();
            for (i, &id) in ids.iter().enumerate() {
                pool.write(id, Bytes::from(vec![i as u8; 8]));
            }
            for _ in 0..3 {
                for (i, &id) in ids.iter().enumerate() {
                    assert_eq!(pool.read(id), Bytes::from(vec![i as u8; 8]), "{kind}");
                }
            }
            let s = stats.snapshot();
            assert!(s.buffer_evictions > 0, "{kind}: workload must evict");
            assert_eq!(
                s.buffer_evictions,
                s.buffer_misses - pool.capacity() as u64,
                "{kind}: every miss beyond capacity installs over a victim"
            );
        }
    }

    #[test]
    fn many_pages_thrash_correctly() {
        let (pool, _) = pool(3);
        let ids: Vec<PageId> = (0..20).map(|_| pool.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.write(id, Bytes::from(vec![i as u8; 8]));
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pool.read(id), Bytes::from(vec![i as u8; 8]));
        }
    }
}
