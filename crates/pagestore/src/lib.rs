//! Page-based storage substrate.
//!
//! The paper's experimental setup (Section 8) keeps the R-tree in memory but
//! treats it as a disk-resident structure whose cost is measured in *node
//! accesses*, while each TIA (temporal index on the aggregate, implemented as
//! a multi-version B-tree) is disk-based with "a maximum of 10 buffer slots".
//! This crate provides that substrate:
//!
//! * [`Disk`] — an in-memory array of fixed-size byte pages standing in for a
//!   disk volume, with physical read/write counters.
//! * [`BufferPool`] — an O(1) buffer over a [`Disk`] with a pluggable
//!   [`ReplacementPolicy`] (LRU, CLOCK or 2Q via [`BufferPoolConfig`]), a
//!   configurable number of slots (10 for TIAs in the paper's setup),
//!   hit/miss/eviction statistics and write-back of dirty pages.
//! * [`AccessStats`] — cheap shared counters used by every index layer to
//!   report logical node accesses (the paper's primary cost metric) and
//!   physical I/O.
//!
//! All types are `Send + Sync` (counters are atomic; the pool is internally
//! locked) so collective query processing can share them across threads.

#![warn(missing_docs)]

mod buffer;
mod disk;
mod lru;
mod policy;

pub use buffer::BufferPool;
pub use disk::{Disk, PageId};
pub use knnta_obs::{AccessStats, StatsSnapshot};
pub use knnta_util::codec::{Bytes, BytesMut};
pub use lru::LruList;
pub use policy::{
    make_policy, BufferPoolConfig, ClockPolicy, LruPolicy, PolicyKind, ReplacementPolicy,
    TwoQPolicy,
};
