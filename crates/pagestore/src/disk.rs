//! An in-memory "disk" of fixed-size byte pages.

use knnta_obs::AccessStats;
use knnta_util::codec::Bytes;
use knnta_util::sync::RwLock;

/// Identifier of a page on a [`Disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// An in-memory volume of fixed-size pages, standing in for the disk the
/// paper's TIAs live on.
///
/// Pages are allocated append-only ([`Disk::allocate`]) and read/written
/// whole. Every physical read and write is recorded in the shared
/// [`AccessStats`]; higher layers (the buffer pool, the multi-version B-tree)
/// derive their I/O figures from those counters.
///
/// Payloads shorter than the page size are allowed (a page stores up to
/// `page_size` bytes); longer payloads are a logic error and panic.
#[derive(Debug)]
pub struct Disk {
    page_size: usize,
    pages: RwLock<Vec<Bytes>>,
    stats: AccessStats,
}

impl Disk {
    /// A new disk with the given page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn new(page_size: usize, stats: AccessStats) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Disk {
            page_size,
            pages: RwLock::new(Vec::new()),
            stats,
        }
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn len(&self) -> usize {
        self.pages.read().len()
    }

    /// Whether no page has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Allocates a fresh empty page and returns its id.
    pub fn allocate(&self) -> PageId {
        let mut pages = self.pages.write();
        let id = PageId(pages.len() as u64);
        pages.push(Bytes::new());
        id
    }

    /// Writes `data` to `page`, counting one physical write.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist or `data` exceeds the page size.
    pub fn write(&self, page: PageId, data: Bytes) {
        assert!(
            data.len() <= self.page_size,
            "payload of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        let mut pages = self.pages.write();
        let slot = pages
            .get_mut(page.index())
            .unwrap_or_else(|| panic!("write to unallocated {page}"));
        *slot = data;
        self.stats.record_page_write();
    }

    /// Reads `page`, counting one physical read.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist.
    pub fn read(&self, page: PageId) -> Bytes {
        let pages = self.pages.read();
        let data = pages
            .get(page.index())
            .unwrap_or_else(|| panic!("read of unallocated {page}"))
            .clone();
        self.stats.record_page_read();
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let disk = Disk::new(64, AccessStats::new());
        let a = disk.allocate();
        let b = disk.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        disk.write(a, Bytes::from_static(b"hello"));
        disk.write(b, Bytes::from_static(b"world"));
        assert_eq!(disk.read(a), Bytes::from_static(b"hello"));
        assert_eq!(disk.read(b), Bytes::from_static(b"world"));
        assert_eq!(disk.len(), 2);
    }

    #[test]
    fn io_is_counted() {
        let stats = AccessStats::new();
        let disk = Disk::new(64, stats.clone());
        let p = disk.allocate();
        disk.write(p, Bytes::from_static(b"x"));
        let _ = disk.read(p);
        let _ = disk.read(p);
        let snap = stats.snapshot();
        assert_eq!(snap.page_writes, 1);
        assert_eq!(snap.page_reads, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_rejected() {
        let disk = Disk::new(4, AccessStats::new());
        let p = disk.allocate();
        disk.write(p, Bytes::from_static(b"too long"));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_unallocated_panics() {
        let disk = Disk::new(4, AccessStats::new());
        let _ = disk.read(PageId(3));
    }

    #[test]
    fn empty_page_reads_empty() {
        let disk = Disk::new(16, AccessStats::new());
        let p = disk.allocate();
        assert_eq!(disk.read(p), Bytes::new());
    }
}
