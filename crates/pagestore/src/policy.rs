//! Pluggable page-replacement policies for the buffer pool.
//!
//! The paper fixes the buffer at 10 LRU slots per TIA; this module turns that
//! constant into an axis. A policy orders the *slots* of a [`crate::BufferPool`]
//! (the pool itself maps pages to slots) and picks eviction victims. Three
//! policies ship:
//!
//! * [`LruPolicy`] — least-recently-used via the intrusive [`LruList`];
//!   behaviour-identical to the pool before the policy trait existed.
//! * [`ClockPolicy`] — second-chance CLOCK: a reference bit per slot and a
//!   sweeping hand. Pages are inserted with the bit *clear*, so a page never
//!   referenced after install is genuinely cold and evictable on the first
//!   sweep.
//! * [`TwoQPolicy`] — simplified 2Q (Johnson & Shasha, VLDB '94): a FIFO
//!   probationary queue `A1in` for first-time pages, a protected LRU `Am` for
//!   re-referenced ones, and a bounded ghost queue `A1out` of recently evicted
//!   page ids whose readmission goes straight to `Am`. Unlike textbook 2Q, a
//!   hit in `A1in` promotes to `Am` immediately; this keeps the hot/cold
//!   eviction-order guarantee exact (see `tests/policy_props.rs`).
//!
//! All operations are O(1) (amortised over a full hand revolution for CLOCK).

use crate::disk::PageId;
use crate::lru::LruList;
use std::collections::{HashSet, VecDeque};

/// Which replacement policy a buffer pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's implicit default).
    #[default]
    Lru,
    /// Second-chance CLOCK.
    Clock,
    /// Simplified 2Q with a ghost queue.
    TwoQ,
}

impl PolicyKind {
    /// Every shipped policy, for sweeps.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Clock, PolicyKind::TwoQ];

    /// Stable lowercase name (`lru`, `clock`, `2q`).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Clock => "clock",
            PolicyKind::TwoQ => "2q",
        }
    }

    /// Parses a CLI-style policy name; accepts `lru`, `clock`, `2q`/`twoq`.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(PolicyKind::Lru),
            "clock" => Some(PolicyKind::Clock),
            "2q" | "twoq" => Some(PolicyKind::TwoQ),
            _ => None,
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Buffer-pool configuration: slot capacity plus replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolConfig {
    /// Number of page slots; `0` disables buffering (pass-through).
    pub capacity: usize,
    /// Replacement policy used when the pool is full.
    pub policy: PolicyKind,
}

impl BufferPoolConfig {
    /// A config with the given capacity and policy.
    pub fn new(capacity: usize, policy: PolicyKind) -> Self {
        BufferPoolConfig { capacity, policy }
    }

    /// An LRU config — the historical `BufferPool::new` behaviour.
    pub fn lru(capacity: usize) -> Self {
        BufferPoolConfig::new(capacity, PolicyKind::Lru)
    }
}

impl Default for BufferPoolConfig {
    /// The paper's setup: 10 buffer slots, LRU.
    fn default() -> Self {
        BufferPoolConfig::lru(10)
    }
}

/// A page-replacement policy over buffer slots `0..capacity`.
///
/// The pool tells the policy when a page is installed into a slot and when a
/// resident slot is referenced again; in exchange the policy picks eviction
/// victims. A slot handed out by [`ReplacementPolicy::evict`] is no longer
/// tracked until the next [`ReplacementPolicy::on_insert`] for it. The page id
/// accompanies inserts so history-keeping policies (2Q's ghost queue) can
/// recognise returning pages.
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// A page was installed into `slot`.
    fn on_insert(&mut self, slot: usize, page: PageId);
    /// The resident page in `slot` was referenced again (read or write hit).
    fn on_hit(&mut self, slot: usize);
    /// Picks a victim among tracked slots and stops tracking it.
    fn evict(&mut self) -> Option<usize>;
    /// Forgets all tracked slots and history (pool clear).
    fn reset(&mut self);
    /// The policy's kind tag (for display and config round-trips).
    fn kind(&self) -> PolicyKind;
}

/// Instantiates the policy implementation for `kind` over `capacity` slots.
pub fn make_policy(kind: PolicyKind, capacity: usize) -> Box<dyn ReplacementPolicy> {
    match kind {
        PolicyKind::Lru => Box::new(LruPolicy::new(capacity)),
        PolicyKind::Clock => Box::new(ClockPolicy::new(capacity)),
        PolicyKind::TwoQ => Box::new(TwoQPolicy::new(capacity)),
    }
}

/// LRU replacement, extracted unchanged from the original pool: the victim is
/// always the least-recently inserted-or-referenced slot.
#[derive(Debug)]
pub struct LruPolicy {
    list: LruList,
}

impl LruPolicy {
    /// An LRU policy over `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        LruPolicy {
            list: LruList::new(capacity),
        }
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_insert(&mut self, slot: usize, _page: PageId) {
        self.list.push_front(slot);
    }

    fn on_hit(&mut self, slot: usize) {
        self.list.touch(slot);
    }

    fn evict(&mut self) -> Option<usize> {
        self.list.pop_back()
    }

    fn reset(&mut self) {
        while self.list.pop_back().is_some() {}
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }
}

/// Second-chance CLOCK replacement.
///
/// Each tracked slot carries a reference bit, set on every hit and *clear on
/// insert*. Eviction sweeps a hand over the slots, clearing set bits and
/// stopping at the first clear one — so a slot referenced since the last sweep
/// always survives one more revolution, while a never-referenced slot can be
/// taken immediately.
#[derive(Debug)]
pub struct ClockPolicy {
    tracked: Vec<bool>,
    referenced: Vec<bool>,
    hand: usize,
    live: usize,
}

impl ClockPolicy {
    /// A CLOCK policy over `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        ClockPolicy {
            tracked: vec![false; capacity],
            referenced: vec![false; capacity],
            hand: 0,
            live: 0,
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn on_insert(&mut self, slot: usize, _page: PageId) {
        debug_assert!(!self.tracked[slot], "slot {slot} already tracked");
        self.tracked[slot] = true;
        self.referenced[slot] = false;
        self.live += 1;
    }

    fn on_hit(&mut self, slot: usize) {
        debug_assert!(self.tracked[slot], "hit on untracked slot {slot}");
        self.referenced[slot] = true;
    }

    fn evict(&mut self) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.tracked.len();
            if !self.tracked[slot] {
                continue;
            }
            if self.referenced[slot] {
                self.referenced[slot] = false;
            } else {
                self.tracked[slot] = false;
                self.live -= 1;
                return Some(slot);
            }
        }
    }

    fn reset(&mut self) {
        self.tracked.iter_mut().for_each(|t| *t = false);
        self.referenced.iter_mut().for_each(|r| *r = false);
        self.hand = 0;
        self.live = 0;
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Clock
    }
}

/// Simplified 2Q replacement.
///
/// First-time pages enter the FIFO `A1in`; a hit promotes a slot to the LRU
/// `Am`. Eviction drains `A1in`'s tail while it exceeds its target size
/// (`kin = max(1, capacity/4)`), otherwise takes `Am`'s LRU tail; pages
/// evicted from `A1in` are remembered in the bounded ghost queue `A1out`
/// (`kout = max(1, capacity/2)` ids) so a quick return is installed straight
/// into `Am` — the scan-resistance trick of the original algorithm.
#[derive(Debug)]
pub struct TwoQPolicy {
    /// Resident page per tracked slot (needed to record ghosts on eviction).
    page_of: Vec<Option<PageId>>,
    /// Probationary FIFO: head = newest, tail = oldest (reuses the intrusive
    /// list; `on_hit` never touches it, so order stays insertion order).
    a1in: LruList,
    /// Protected LRU of re-referenced slots.
    am: LruList,
    /// Ghost queue of page ids recently evicted from `A1in` (front = newest).
    a1out: VecDeque<PageId>,
    a1out_set: HashSet<PageId>,
    kin: usize,
    kout: usize,
}

impl TwoQPolicy {
    /// A 2Q policy over `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        TwoQPolicy {
            page_of: vec![None; capacity],
            a1in: LruList::new(capacity),
            am: LruList::new(capacity),
            a1out: VecDeque::new(),
            a1out_set: HashSet::new(),
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
        }
    }

    fn remember_ghost(&mut self, page: PageId) {
        if self.a1out_set.insert(page) {
            self.a1out.push_front(page);
            if self.a1out.len() > self.kout {
                if let Some(old) = self.a1out.pop_back() {
                    self.a1out_set.remove(&old);
                }
            }
        }
    }

    fn forget_ghost(&mut self, page: PageId) -> bool {
        if self.a1out_set.remove(&page) {
            if let Some(pos) = self.a1out.iter().position(|&p| p == page) {
                self.a1out.remove(pos);
            }
            true
        } else {
            false
        }
    }
}

impl ReplacementPolicy for TwoQPolicy {
    fn on_insert(&mut self, slot: usize, page: PageId) {
        debug_assert!(self.page_of[slot].is_none(), "slot {slot} already tracked");
        self.page_of[slot] = Some(page);
        // The ghost queue is bounded by kout ≤ capacity/2 ids, so the scan of
        // `forget_ghost` is O(capacity) worst case but O(1) for the common
        // miss; the 2Q paper itself keeps A1out as a small FIFO.
        if self.forget_ghost(page) {
            self.am.push_front(slot);
        } else {
            self.a1in.push_front(slot);
        }
    }

    fn on_hit(&mut self, slot: usize) {
        if self.am.contains(slot) {
            self.am.touch(slot);
        } else {
            debug_assert!(self.a1in.contains(slot), "hit on untracked slot {slot}");
            self.a1in.remove(slot);
            self.am.push_front(slot);
        }
    }

    fn evict(&mut self) -> Option<usize> {
        let from_a1in = if self.a1in.len() > self.kin {
            true
        } else if !self.am.is_empty() {
            false
        } else {
            !self.a1in.is_empty()
        };
        let slot = if from_a1in {
            let slot = self.a1in.pop_back()?;
            if let Some(page) = self.page_of[slot] {
                self.remember_ghost(page);
            }
            slot
        } else {
            self.am.pop_back()?
        };
        self.page_of[slot] = None;
        Some(slot)
    }

    fn reset(&mut self) {
        self.page_of.iter_mut().for_each(|p| *p = None);
        while self.a1in.pop_back().is_some() {}
        while self.am.pop_back().is_some() {}
        self.a1out.clear();
        self.a1out_set.clear();
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::TwoQ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_parse_round_trips() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("TWOQ"), Some(PolicyKind::TwoQ));
        assert_eq!(PolicyKind::parse("mru"), None);
    }

    #[test]
    fn lru_policy_matches_list_semantics() {
        let mut p = LruPolicy::new(3);
        p.on_insert(0, PageId(10));
        p.on_insert(1, PageId(11));
        p.on_insert(2, PageId(12));
        p.on_hit(0); // 0 becomes MRU; 1 is now LRU
        assert_eq!(p.evict(), Some(1));
        assert_eq!(p.evict(), Some(2));
        assert_eq!(p.evict(), Some(0));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_slots() {
        let mut p = ClockPolicy::new(3);
        p.on_insert(0, PageId(0));
        p.on_insert(1, PageId(1));
        p.on_insert(2, PageId(2));
        p.on_hit(0);
        // Hand at 0: ref bit set → cleared and skipped; slot 1 is cold.
        assert_eq!(p.evict(), Some(1));
        // Slot 0's bit was consumed by the sweep; hand sits at 2 (cold).
        assert_eq!(p.evict(), Some(2));
        assert_eq!(p.evict(), Some(0));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn two_q_prefers_probationary_pages_and_promotes_on_hit() {
        let mut p = TwoQPolicy::new(4); // kin = 1
        p.on_insert(0, PageId(0));
        p.on_insert(1, PageId(1));
        p.on_insert(2, PageId(2));
        p.on_hit(0); // 0 → Am
        // A1in = [2, 1] (len 2 > kin) → evict FIFO tail 1, not hot 0.
        assert_eq!(p.evict(), Some(1));
        // A1in = [2] (len 1 ≤ kin), Am = [0] → evict Am tail 0.
        assert_eq!(p.evict(), Some(0));
        assert_eq!(p.evict(), Some(2));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn two_q_ghost_readmission_lands_in_am() {
        let mut p = TwoQPolicy::new(4); // kin = 1, kout = 2
        p.on_insert(0, PageId(7));
        p.on_insert(1, PageId(8));
        assert_eq!(p.evict(), Some(0)); // page 7 → ghost
        p.on_insert(0, PageId(7)); // returns → straight to Am
        p.on_insert(2, PageId(9));
        p.on_insert(3, PageId(10));
        // A1in = [10, 9, 8] exceeds kin → FIFO tail (page 8's slot 1) goes,
        // even though page 7's slot 0 was inserted earlier.
        assert_eq!(p.evict(), Some(1));
    }

    #[test]
    fn reset_forgets_everything() {
        for kind in PolicyKind::ALL {
            let mut p = make_policy(kind, 4);
            p.on_insert(0, PageId(0));
            p.on_insert(1, PageId(1));
            p.on_hit(0);
            p.reset();
            assert_eq!(p.evict(), None, "{kind}: reset must drop tracked slots");
            p.on_insert(2, PageId(2));
            assert_eq!(p.evict(), Some(2), "{kind}: usable after reset");
        }
    }
}
