//! An intrusive, slab-backed doubly-linked LRU list.

/// A fixed-capacity least-recently-used ordering over slot indices.
///
/// The list tracks *slots* `0..capacity` (the buffer pool maps page ids to
/// slots separately). All operations are O(1):
///
/// * [`LruList::touch`] moves a slot to the most-recently-used end,
/// * [`LruList::push_front`] inserts a new slot as most-recently-used,
/// * [`LruList::pop_back`] evicts the least-recently-used slot,
/// * [`LruList::remove`] unlinks an arbitrary slot.
///
/// Slots not currently linked are simply absent from the list; linking a slot
/// twice is a logic error and panics in debug builds.
#[derive(Debug)]
pub struct LruList {
    prev: Vec<usize>,
    next: Vec<usize>,
    linked: Vec<bool>,
    head: usize, // most recently used; == NIL when empty
    tail: usize, // least recently used
    len: usize,
}

const NIL: usize = usize::MAX;

impl LruList {
    /// A list managing slots `0..capacity`, initially empty.
    pub fn new(capacity: usize) -> Self {
        LruList {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            linked: vec![false; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `slot` is currently linked.
    pub fn contains(&self, slot: usize) -> bool {
        self.linked[slot]
    }

    /// Links `slot` as most-recently-used.
    pub fn push_front(&mut self, slot: usize) {
        debug_assert!(!self.linked[slot], "slot {slot} already linked");
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
        self.linked[slot] = true;
        self.len += 1;
    }

    /// Unlinks and returns the least-recently-used slot, if any.
    pub fn pop_back(&mut self) -> Option<usize> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        self.remove(slot);
        Some(slot)
    }

    /// Unlinks `slot` from wherever it is.
    pub fn remove(&mut self, slot: usize) {
        debug_assert!(self.linked[slot], "slot {slot} not linked");
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
        self.linked[slot] = false;
        self.len -= 1;
    }

    /// Moves `slot` to the most-recently-used position.
    pub fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.remove(slot);
        self.push_front(slot);
    }

    /// Slots from most- to least-recently-used (for tests and debugging).
    pub fn iter_mru(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let s = cur;
                cur = self.next[cur];
                Some(s)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(l: &LruList) -> Vec<usize> {
        l.iter_mru().collect()
    }

    #[test]
    fn push_and_pop_fifo_when_untouched() {
        let mut l = LruList::new(4);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        assert_eq!(order(&l), vec![2, 1, 0]);
        assert_eq!(l.pop_back(), Some(0));
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new(4);
        for s in 0..4 {
            l.push_front(s);
        }
        l.touch(1);
        assert_eq!(order(&l), vec![1, 3, 2, 0]);
        l.touch(0);
        assert_eq!(order(&l), vec![0, 1, 3, 2]);
        assert_eq!(l.pop_back(), Some(2));
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = LruList::new(2);
        l.push_front(0);
        l.push_front(1);
        l.touch(1);
        assert_eq!(order(&l), vec![1, 0]);
    }

    #[test]
    fn remove_middle_and_relink() {
        let mut l = LruList::new(3);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        l.remove(1);
        assert_eq!(order(&l), vec![2, 0]);
        assert!(!l.contains(1));
        l.push_front(1);
        assert_eq!(order(&l), vec![1, 2, 0]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut l = LruList::new(1);
        l.push_front(0);
        l.touch(0);
        assert_eq!(order(&l), vec![0]);
        assert_eq!(l.pop_back(), Some(0));
        assert!(l.is_empty());
        l.push_front(0);
        assert_eq!(order(&l), vec![0]);
    }
}
