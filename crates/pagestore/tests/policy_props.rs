//! Property tests for the replacement policies.
//!
//! Two guarantees pinned here, both under the deterministic RNG workload of
//! the in-repo property harness (`KNNTA_PROP_SEED` reproduces failures):
//!
//! 1. **Hot pages survive cold ones.** CLOCK and 2Q never evict a
//!    *just-touched* slot — one referenced since the previous eviction —
//!    while some resident slot has never been referenced since install.
//!    (CLOCK inserts with the reference bit clear, so untouched slots are
//!    sweepable immediately while a fresh reference always survives the
//!    current sweep; 2Q promotes on first hit, so untouched slots sit in the
//!    probationary FIFO which drains first. "Since the previous eviction"
//!    is the exact CLOCK guarantee: each sweep legitimately consumes one
//!    second chance, so a reference can only protect a page until the hand
//!    has passed it once.)
//! 2. **Eviction accounting.** On a real [`BufferPool`], the eviction counter
//!    equals misses minus the slots filled for free — every miss beyond
//!    capacity must displace a victim, for every policy.

use knnta_util::prop::{check, Gen};
use knnta_util::rng::Rng;
use pagestore::{
    make_policy, AccessStats, BufferPool, BufferPoolConfig, Bytes, Disk, PageId, PolicyKind,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Drives a bare policy like a pool would, tracking per-slot residency and
/// whether each resident page was touched since install.
fn hot_page_survives_cold(kind: PolicyKind, g: &mut Gen) {
    // capacity ≥ 3: with 2 slots, 2Q's probationary target (kin = 1) lets a
    // lone hot page be the protected queue's head *and* tail, making the
    // guarantee vacuous; see DESIGN.md §9.
    let capacity = g.usize_in(3..17);
    let universe = capacity + g.usize_in(1..3 * capacity + 1);
    let ops = g.usize_in(50..401);
    let mut policy = make_policy(kind, capacity);
    let mut slot_of: HashMap<u64, usize> = HashMap::new();
    let mut resident: Vec<Option<u64>> = vec![None; capacity];
    let mut touched: Vec<bool> = vec![false; capacity];
    let mut free: Vec<usize> = (0..capacity).rev().collect();
    let mut last_touched: Option<usize> = None;

    for op in 0..ops {
        let page = g.rng().gen_range(0..universe as u64);
        if let Some(&slot) = slot_of.get(&page) {
            policy.on_hit(slot);
            touched[slot] = true;
            last_touched = Some(slot);
            continue;
        }
        let slot = match free.pop() {
            Some(s) => s,
            None => {
                let victim = policy.evict().expect("full policy must name a victim");
                let cold_exists = (0..capacity)
                    .any(|s| s != victim && resident[s].is_some() && !touched[s]);
                if last_touched == Some(victim) && cold_exists {
                    panic!(
                        "{kind}: op {op} evicted the just-touched slot {victim} \
                         while a never-touched resident slot existed"
                    );
                }
                // A sweep may consume reference bits, so "just-touched" only
                // spans the window since the previous eviction.
                last_touched = None;
                let old = resident[victim].take().expect("victim was resident");
                slot_of.remove(&old);
                touched[victim] = false;
                victim
            }
        };
        policy.on_insert(slot, PageId(page));
        resident[slot] = Some(page);
        touched[slot] = false;
        slot_of.insert(page, slot);
    }
}

#[test]
fn clock_never_evicts_hot_before_cold() {
    check("clock_never_evicts_hot_before_cold", 64, |g| {
        hot_page_survives_cold(PolicyKind::Clock, g)
    });
}

#[test]
fn two_q_never_evicts_hot_before_cold() {
    check("two_q_never_evicts_hot_before_cold", 64, |g| {
        hot_page_survives_cold(PolicyKind::TwoQ, g)
    });
}

#[test]
fn evictions_equal_misses_minus_capacity() {
    check("evictions_equal_misses_minus_capacity", 48, |g| {
        for kind in PolicyKind::ALL {
            let capacity = g.usize_in(1..9);
            let stats = AccessStats::new();
            let disk = Arc::new(Disk::new(32, stats.clone()));
            let pool = BufferPool::with_config(
                Arc::clone(&disk),
                BufferPoolConfig::new(capacity, kind),
            );
            let pages: Vec<PageId> = (0..capacity + g.usize_in(1..25))
                .map(|i| {
                    let p = disk.allocate();
                    disk.write(p, Bytes::from(vec![i as u8; 4]));
                    p
                })
                .collect();
            stats.reset();
            let ops = g.usize_in(capacity + 1..301);
            for _ in 0..ops {
                let idx: usize = g.rng().gen_range(0..pages.len());
                let _ = pool.read(pages[idx]);
            }
            let s = stats.snapshot();
            assert_eq!(
                s.buffer_evictions,
                s.buffer_misses - s.buffer_misses.min(capacity as u64),
                "{kind}: evictions must equal misses beyond the free slots \
                 (misses={}, capacity={capacity})",
                s.buffer_misses
            );
        }
    });
}

#[test]
fn pool_contents_match_shadow_model_for_every_policy() {
    check("pool_contents_match_shadow_model", 32, |g| {
        for kind in PolicyKind::ALL {
            let capacity = g.usize_in(0..7);
            let stats = AccessStats::new();
            let disk = Arc::new(Disk::new(16, stats.clone()));
            let pool =
                BufferPool::with_config(Arc::clone(&disk), BufferPoolConfig::new(capacity, kind));
            let pages: Vec<PageId> = (0..g.usize_in(1..21)).map(|_| pool.allocate()).collect();
            let mut shadow: HashMap<PageId, u8> = HashMap::new();
            let ops = g.usize_in(1..201);
            for i in 0..ops {
                let idx: usize = g.rng().gen_range(0..pages.len());
                let page = pages[idx];
                if g.rng().gen_bool(0.5) {
                    let v = i as u8;
                    pool.write(page, Bytes::from(vec![v; 4]));
                    shadow.insert(page, v);
                } else if let Some(&v) = shadow.get(&page) {
                    assert_eq!(
                        pool.read(page),
                        Bytes::from(vec![v; 4]),
                        "{kind}: read must return the last write"
                    );
                }
            }
            pool.flush();
            for (&page, &v) in &shadow {
                assert_eq!(
                    disk.read(page),
                    Bytes::from(vec![v; 4]),
                    "{kind}: flush must persist the last write"
                );
            }
        }
    });
}
