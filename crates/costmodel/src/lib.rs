//! Executable cost model for kNNTA query processing on the TAR-tree
//! (Section 6 of the paper).
//!
//! The model estimates, from the power-law distribution of the aggregate
//! data, (i) the ranking score `f(pk)` of the k-th result — which determines
//! the cone-shaped search region in the normalised 3-D unit cube — and
//! (ii) the expected number of leaf node accesses, by carving the cube into
//! *bands* of nodes whose extents follow the power law and intersecting each
//! band with the search region via Minkowski sums with boundary-effect
//! corrections.
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. **Layers** (Section 6.2): POIs sit on countably many layers, one per
//!    aggregate value `x`, at height `h_x = 1 − x / x_max`; the expected
//!    population of layer `x` is `N(x) = N · x^{-β} / ζ(β, Ω)`.
//! 2. **Search region**: a cone with base radius `r0 = f(pk)/α0` and height
//!    `h_l = f(pk)/α1`; the cross-section at layer `x` has radius
//!    `r_x = (h_l − h_x)/h_l · r0`. `f(pk)` solves
//!    `k = Σ_x N(x) · E[S_{D(q,r_x) ∩ U_x}]` with the boundary-effect
//!    correction `E[S] = (√π·r − π r²/4)²` (capped at 1).
//! 3. **Node accesses** (Section 6.3): bands are built top-down; a band
//!    closes at layer `y` when the R-tree node extent
//!    `S_y = (1 − 1/f)·min(f/ΣN, 1)^{1/2}` matches the accumulated height
//!    `Δh`; the access probability uses the Minkowski sum
//!    `L_y = (S_y² + 4·S_y·r_y + π·r_y²)^{1/2}` with the boundary-effect
//!    correction of Tao et al.
//!
//! The same code doubles as the query-optimiser cost model the paper
//! mentions.

#![warn(missing_docs)]

use lbsn::hurwitz_zeta;

/// Effective fanout: "the average number of entries in a node … typically
/// equals 69% of the node capacity" (Theodoridis & Sellis, cited in
/// Section 6.3).
pub fn effective_fanout(node_capacity: usize) -> f64 {
    0.69 * node_capacity as f64
}

/// The Section 6 cost model for one query configuration.
///
/// ```
/// use costmodel::{effective_fanout, CostModel};
///
/// let model = CostModel {
///     n: 25_000.0,
///     beta: 2.8,
///     omega: 10,
///     xmax: 2_000,
///     alpha0: 0.3,
///     k: 10,
///     fanout: effective_fanout(36),
///     support_area: 1.0,
/// };
/// let est = model.estimate();
/// assert!(est.fpk > 0.0 && est.fpk < 1.0);
/// assert!(est.node_accesses > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Number of indexed POIs `N`.
    pub n: f64,
    /// Power-law exponent `β` of the aggregate distribution over the query
    /// interval.
    pub beta: f64,
    /// Minimum aggregate value `Ω` (the lowest populated layer).
    pub omega: u64,
    /// Maximum aggregate value (defines the height normalisation of the
    /// aggregate dimension).
    pub xmax: u64,
    /// Spatial weight `α0`.
    pub alpha0: f64,
    /// Result size `k`.
    pub k: usize,
    /// Effective leaf fanout `f`.
    pub fanout: f64,
    /// Fraction of the unit square actually occupied by data (1.0 = the
    /// paper's uniformity assumption). LBSN data is heavily clustered —
    /// cities cover a few percent of the bounding box — and both POIs *and*
    /// query points live inside the clusters, so densities, node extents
    /// and access probabilities all concentrate on this support. Estimate
    /// it with [`estimate_support_area`].
    pub support_area: f64,
}

/// The model's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated k-th result score `f(pk)`.
    pub fpk: f64,
    /// Estimated number of leaf node accesses `NA(α, k)`.
    pub node_accesses: f64,
}

/// One band of the node-access estimation (exposed for tests and
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// First (topmost) layer of the band.
    pub x_top: u64,
    /// Last (bottom) layer of the band.
    pub x_bottom: u64,
    /// Expected POIs in the band.
    pub pois: f64,
    /// Node extent `S_y`.
    pub extent: f64,
    /// Access probability `P_y`.
    pub probability: f64,
}

impl CostModel {
    /// Builds a model directly from the observed per-POI aggregates over a
    /// query interval: `N` = sample size, `Ω` = smallest non-zero
    /// aggregate, `x_max` = largest, `β` = discrete MLE over `x ≥ Ω`.
    ///
    /// Returns `None` when fewer than 10 POIs have a non-zero aggregate
    /// (no meaningful layer structure).
    pub fn from_aggregates(
        aggregates: &[u64],
        alpha0: f64,
        k: usize,
        fanout: f64,
    ) -> Option<CostModel> {
        let nonzero: Vec<u64> = aggregates.iter().copied().filter(|&x| x > 0).collect();
        if nonzero.len() < 10 {
            return None;
        }
        let omega = *nonzero.iter().min().expect("non-empty");
        let xmax = *nonzero.iter().max().expect("non-empty");
        if omega == xmax {
            return None; // a single layer has no power-law structure
        }
        let beta = lbsn::powerlaw::fit_beta(&nonzero, omega);
        Some(CostModel {
            n: nonzero.len() as f64,
            beta,
            omega,
            xmax,
            alpha0,
            k,
            fanout,
            support_area: 1.0,
        })
    }

    /// Returns the model with a clustering-aware support area (see
    /// [`CostModel::support_area`]).
    pub fn with_support_area(mut self, area: f64) -> CostModel {
        assert!(area > 0.0 && area <= 1.0, "support area in (0, 1]");
        self.support_area = area;
        self
    }

    /// The aggregate weight `α1 = 1 − α0`.
    pub fn alpha1(&self) -> f64 {
        1.0 - self.alpha0
    }

    /// Height of layer `x` in the unit cube: `h_x = 1 − x / x_max`.
    pub fn layer_height(&self, x: u64) -> f64 {
        1.0 - x as f64 / self.xmax as f64
    }

    /// Expected POIs on layer `x`: `N(x) = N · p(x)` with the discrete
    /// power law renormalised over `x ≥ Ω`.
    pub fn layer_population(&self, x: u64) -> f64 {
        if x < self.omega {
            return 0.0;
        }
        self.n * (x as f64).powf(-self.beta) / hurwitz_zeta(self.beta, self.omega as f64)
    }

    /// Cross-section radius of the search cone at height `h` (0 above the
    /// cone).
    fn cross_radius(&self, fpk: f64, h: f64) -> f64 {
        let r0 = fpk / self.alpha0;
        let hl = fpk / self.alpha1();
        if h >= hl {
            0.0
        } else {
            (hl - h) / hl * r0
        }
    }

    /// Boundary-effect-corrected expected area of a disk of radius `r`
    /// intersected with the unit square (Tao et al., cited in Section 6.2):
    /// `(√π·r − π·r²/4)²` while `√π·r < 2`, else 1.
    pub fn disk_area_in_unit_square(r: f64) -> f64 {
        let s = std::f64::consts::PI.sqrt() * r;
        if s < 2.0 {
            let v = s - std::f64::consts::PI * r * r / 4.0;
            (v * v).min(1.0)
        } else {
            1.0
        }
    }

    /// Expected number of POIs inside the search region for a candidate
    /// `f(pk)`.
    pub fn expected_in_region(&self, fpk: f64) -> f64 {
        let mut total = 0.0;
        for x in self.omega..=self.xmax {
            let r = self.cross_radius(fpk, self.layer_height(x));
            if r > 0.0 {
                // Work in support units: condense the occupied area into a
                // unit square (the paper's uniformity assumption is the
                // special case support_area = 1).
                let r = r / self.support_area.sqrt();
                total += self.layer_population(x) * Self::disk_area_in_unit_square(r);
            }
        }
        total
    }

    /// Estimates `f(pk)` by solving `k = Σ_x N(x)·E[S]` (the expected count
    /// is monotone in `f(pk)`, so bisection converges).
    pub fn estimate_fpk(&self) -> f64 {
        let target = self.k as f64;
        // Scores live in [0, α0·√2 + α1]; bisect there.
        let (mut lo, mut hi) = (0.0f64, self.alpha0 * std::f64::consts::SQRT_2 + self.alpha1());
        if self.expected_in_region(hi) < target {
            return hi; // k exceeds the population: the region is everything
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.expected_in_region(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The R-tree node extent over a span of layers holding `pois` POIs:
    /// `S = (1 − 1/f) · min(f / pois, 1)^{1/2}` (Böhm's model, Section 6.3).
    fn node_extent(&self, pois: f64) -> f64 {
        let occupancy = if pois > 0.0 {
            (self.fanout / pois).min(1.0)
        } else {
            1.0
        };
        ((1.0 - 1.0 / self.fanout) * occupancy.sqrt()).min(0.999)
    }

    /// Minkowski sum of a node of extent `s` and the cross-section disk of
    /// radius `r`, as an equivalent square side:
    /// `L = (Σ_i C(2,i)·s^{2−i}·(√π^i/Γ(i/2+1))·r^i)^{1/2}
    ///    = (s² + 4sr + πr²)^{1/2}`.
    pub fn minkowski_side(s: f64, r: f64) -> f64 {
        (s * s + 4.0 * s * r + std::f64::consts::PI * r * r).sqrt()
    }

    /// Boundary-corrected probability that a node of extent `s` intersects
    /// the cross-section of radius `r`:
    /// `P = ((4L − (L+s)²) / (4(1−s)))²` while `L + s < 2`, else 1.
    pub fn access_probability(s: f64, r: f64) -> f64 {
        let l = Self::minkowski_side(s, r);
        if l + s < 2.0 {
            let v = (4.0 * l - (l + s) * (l + s)) / (4.0 * (1.0 - s));
            (v * v).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// Carves the layers into bands (Section 6.3): a band closes at the
    /// first layer `y` where the node extent no longer exceeds the
    /// accumulated height `h_x − h_y`.
    pub fn bands(&self, fpk: f64) -> Vec<Band> {
        let hl = fpk / self.alpha1();
        let mut bands = Vec::new();
        let mut x = self.omega;
        while x <= self.xmax {
            let h_top = self.layer_height(x);
            let mut pois = 0.0;
            let mut y = x;
            let sqrt_a = self.support_area.sqrt();
            let (extent, bottom) = loop {
                pois += self.layer_population(y);
                let dh = h_top - self.layer_height(y);
                // node_extent is in support units; its physical (true-unit)
                // side is scaled by √A when compared with the height.
                let s = self.node_extent(pois);
                if s * sqrt_a <= dh || y == self.xmax {
                    break (s, y);
                }
                y += 1;
            };
            let h_bottom = self.layer_height(bottom);
            // Nodes lying entirely above the cone are never accessed.
            let probability = if h_bottom >= hl {
                0.0
            } else {
                let r = self.cross_radius(fpk, h_bottom) / sqrt_a;
                Self::access_probability(extent, r)
            };
            bands.push(Band {
                x_top: x,
                x_bottom: bottom,
                pois,
                extent,
                probability,
            });
            x = bottom + 1;
        }
        bands
    }

    /// Expected leaf node accesses for a given `f(pk)`:
    /// `NA = Σ_bands (ΣN / f) · P_y`.
    pub fn estimate_node_accesses(&self, fpk: f64) -> f64 {
        self.bands(fpk)
            .iter()
            .map(|b| (b.pois / self.fanout) * b.probability)
            .sum()
    }

    /// Runs the full pipeline.
    pub fn estimate(&self) -> CostEstimate {
        let fpk = self.estimate_fpk();
        CostEstimate {
            fpk,
            node_accesses: self.estimate_node_accesses(fpk),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            n: 10_000.0,
            beta: 2.5,
            omega: 10,
            xmax: 5_000,
            alpha0: 0.3,
            k: 10,
            fanout: effective_fanout(36),
            support_area: 1.0,
        }
    }

    #[test]
    fn effective_fanout_is_69_percent() {
        assert!((effective_fanout(50) - 34.5).abs() < 1e-12);
        assert!((effective_fanout(36) - 24.84).abs() < 1e-12);
    }

    #[test]
    fn layer_geometry() {
        let m = model();
        assert_eq!(m.layer_height(m.xmax), 0.0);
        assert!((m.layer_height(0) - 1.0).abs() < 1e-12);
        // Paper example: aggregate 2 of max 12 → height 1 − 2/12 ≈ 0.83.
        let m2 = CostModel { xmax: 12, ..m };
        assert!((m2.layer_height(2) - (1.0 - 2.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn layer_population_is_power_law() {
        let m = model();
        assert_eq!(m.layer_population(5), 0.0);
        let p10 = m.layer_population(10);
        let p20 = m.layer_population(20);
        // Ratio = (10/20)^-β = 2^-2.5.
        assert!((p20 / p10 - 2f64.powf(-2.5)).abs() < 1e-9);
        // Total population ≈ N.
        let total: f64 = (10..=100_000).map(|x| m.layer_population(x)).sum();
        assert!((total - m.n).abs() / m.n < 0.01, "total {total}");
    }

    #[test]
    fn disk_area_limits() {
        assert_eq!(CostModel::disk_area_in_unit_square(0.0), 0.0);
        // Small r: ≈ π r² (the plain disk area).
        let r = 0.01;
        let a = CostModel::disk_area_in_unit_square(r);
        assert!((a - std::f64::consts::PI * r * r).abs() < 1e-5);
        // Huge r: everything.
        assert_eq!(CostModel::disk_area_in_unit_square(5.0), 1.0);
        // Monotone in r.
        let mut prev = 0.0;
        for i in 1..100 {
            let a = CostModel::disk_area_in_unit_square(i as f64 * 0.02);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn minkowski_side_matches_closed_form() {
        let (s, r) = (0.2, 0.1);
        let expect = (0.04 + 4.0 * 0.02 + std::f64::consts::PI * 0.01).sqrt();
        assert!((CostModel::minkowski_side(s, r) - expect).abs() < 1e-12);
        // r = 0 degenerates to the square itself.
        assert!((CostModel::minkowski_side(0.3, 0.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn access_probability_limits() {
        // r = 0: probability a point query hits the node ≈ s².
        let p = CostModel::access_probability(0.3, 0.0);
        assert!((p - 0.09).abs() < 1e-9, "p = {p}");
        // Huge node or region: certain access.
        assert_eq!(CostModel::access_probability(0.999, 1.5), 1.0);
        // Monotone in r.
        let mut prev = 0.0;
        for i in 0..50 {
            let p = CostModel::access_probability(0.1, i as f64 * 0.02);
            assert!(p >= prev - 1e-12, "at r = {}", i as f64 * 0.02);
            prev = p;
        }
    }

    #[test]
    fn expected_in_region_monotone_in_fpk() {
        let m = model();
        let mut prev = 0.0;
        for i in 1..20 {
            let fpk = i as f64 * 0.05;
            let e = m.expected_in_region(fpk);
            assert!(e >= prev, "fpk = {fpk}");
            prev = e;
        }
    }

    #[test]
    fn fpk_grows_with_k() {
        let m = model();
        let mut prev = 0.0;
        for k in [1, 5, 10, 50, 100] {
            let fpk = CostModel { k, ..m }.estimate_fpk();
            assert!(fpk > prev, "k = {k}: {fpk} > {prev}");
            assert!(fpk < 1.5);
            prev = fpk;
        }
    }

    #[test]
    fn fpk_solves_the_balance_equation() {
        let m = model();
        let fpk = m.estimate_fpk();
        let count = m.expected_in_region(fpk);
        assert!(
            (count - m.k as f64).abs() < 0.05,
            "E[in region] = {count} at f(pk) = {fpk}"
        );
    }

    #[test]
    fn node_accesses_grow_with_k() {
        let m = model();
        let mut prev = 0.0;
        for k in [1, 5, 10, 50, 100] {
            let est = CostModel { k, ..m }.estimate();
            assert!(
                est.node_accesses >= prev,
                "k = {k}: {} >= {prev}",
                est.node_accesses
            );
            prev = est.node_accesses;
        }
    }

    #[test]
    fn bands_partition_all_layers() {
        let m = model();
        let fpk = m.estimate_fpk();
        let bands = m.bands(fpk);
        assert!(!bands.is_empty());
        assert_eq!(bands[0].x_top, m.omega);
        assert_eq!(bands.last().unwrap().x_bottom, m.xmax);
        for w in bands.windows(2) {
            assert_eq!(w[0].x_bottom + 1, w[1].x_top, "bands are contiguous");
        }
        for b in &bands {
            assert!(b.extent > 0.0 && b.extent < 1.0);
            assert!((0.0..=1.0).contains(&b.probability));
        }
    }

    #[test]
    fn node_extents_smaller_on_denser_bands() {
        // Power law ⇒ low layers (large x) are sparse ⇒ their bands have
        // larger extents, as in Figure 4.
        let m = model();
        let bands = m.bands(m.estimate_fpk());
        if bands.len() >= 2 {
            let first = bands.first().unwrap();
            let last = bands.last().unwrap();
            assert!(
                first.extent <= last.extent,
                "dense top band {} vs sparse bottom band {}",
                first.extent,
                last.extent
            );
        }
    }

    #[test]
    fn from_aggregates_fits() {
        let mut rng = knnta_util::rng::StdRng::seed_from_u64(5);
        let law = lbsn::PowerLaw::new(2.5, 10);
        let mut aggs: Vec<u64> = (0..5000).map(|_| law.sample(&mut rng)).collect();
        aggs.extend(std::iter::repeat_n(0u64, 1000)); // zero-aggregate POIs are ignored
        let m = CostModel::from_aggregates(&aggs, 0.3, 10, effective_fanout(36)).unwrap();
        assert!((m.beta - 2.5).abs() < 0.2, "β̂ = {}", m.beta);
        assert_eq!(m.omega, 10);
        assert_eq!(m.n, 5000.0);
        let est = m.estimate();
        assert!(est.fpk > 0.0 && est.node_accesses > 0.0);
    }

    #[test]
    fn from_aggregates_rejects_degenerate() {
        assert!(CostModel::from_aggregates(&[0; 100], 0.3, 10, 20.0).is_none());
        assert!(CostModel::from_aggregates(&[5; 100], 0.3, 10, 20.0).is_none());
        assert!(CostModel::from_aggregates(&[1, 2, 3], 0.3, 10, 20.0).is_none());
    }

    #[test]
    fn alpha_extremes_shape_the_cone() {
        // α0 → 1: tall thin cone is impossible (hl = fpk/α1 explodes);
        // the model must still return finite sane values.
        let m = model();
        for alpha0 in [0.1, 0.5, 0.9] {
            let est = CostModel { alpha0, ..m }.estimate();
            assert!(est.fpk.is_finite() && est.fpk > 0.0, "α0 = {alpha0}");
            assert!(
                est.node_accesses.is_finite() && est.node_accesses > 0.0,
                "α0 = {alpha0}"
            );
        }
    }
}

/// Estimates the fraction of the data-space bounding box actually occupied
/// by POIs, by counting occupied cells of a `grid × grid` raster (cells are
/// chosen near the leaf-node scale, so the estimate matches the node-extent
/// model). `positions` are raw data-space coordinates inside `bounds`
/// (`[min_x, min_y], [max_x, max_y]`).
pub fn estimate_support_area(positions: &[[f64; 2]], bounds: ([f64; 2], [f64; 2])) -> f64 {
    const GRID: usize = 64;
    if positions.is_empty() {
        return 1.0;
    }
    let (min, max) = bounds;
    let w = (max[0] - min[0]).max(f64::MIN_POSITIVE);
    let h = (max[1] - min[1]).max(f64::MIN_POSITIVE);
    let mut occupied = vec![false; GRID * GRID];
    for p in positions {
        let cx = (((p[0] - min[0]) / w) * GRID as f64).min(GRID as f64 - 1.0) as usize;
        let cy = (((p[1] - min[1]) / h) * GRID as f64).min(GRID as f64 - 1.0) as usize;
        occupied[cy * GRID + cx] = true;
    }
    let count = occupied.iter().filter(|&&o| o).count();
    (count as f64 / (GRID * GRID) as f64).max(1.0 / (GRID * GRID) as f64)
}

#[cfg(test)]
mod support_tests {
    use super::*;

    #[test]
    fn uniform_data_fills_the_box() {
        let mut pts = Vec::new();
        for i in 0..64 {
            for j in 0..64 {
                pts.push([i as f64 + 0.5, j as f64 + 0.5]);
            }
        }
        let a = estimate_support_area(&pts, ([0.0, 0.0], [64.0, 64.0]));
        assert!(a > 0.95, "a = {a}");
    }

    #[test]
    fn clustered_data_has_small_support() {
        let pts: Vec<[f64; 2]> = (0..1000)
            .map(|i| [50.0 + (i % 10) as f64 * 0.01, 50.0 + (i / 10) as f64 * 0.001])
            .collect();
        let a = estimate_support_area(&pts, ([0.0, 0.0], [100.0, 100.0]));
        assert!(a < 0.01, "a = {a}");
    }

    #[test]
    fn empty_input_defaults_to_uniform() {
        assert_eq!(estimate_support_area(&[], ([0.0, 0.0], [1.0, 1.0])), 1.0);
    }

    #[test]
    fn support_area_raises_estimates() {
        let base = CostModel {
            n: 20_000.0,
            beta: 2.6,
            omega: 5,
            xmax: 2_000,
            alpha0: 0.3,
            k: 10,
            fanout: effective_fanout(36),
            support_area: 1.0,
        };
        let concentrated = base.with_support_area(0.05);
        let e1 = base.estimate();
        let e2 = concentrated.estimate();
        // Concentrating the same data into 5% of the space makes the search
        // region cover relatively more of it, so fewer high-score POIs are
        // needed and f(pk) shrinks. (Node accesses feel two opposing
        // forces — higher density vs a smaller cone — so only sanity-check
        // them.)
        assert!(e2.fpk <= e1.fpk, "{} <= {}", e2.fpk, e1.fpk);
        assert!(e2.node_accesses.is_finite() && e2.node_accesses > 0.0);
    }
}

impl CostModel {
    /// Expected node accesses at every tree level, leaves first.
    ///
    /// Section 6.3 estimates leaf accesses and notes "the following analysis
    /// applies to internal nodes straightforwardly": each level up, the
    /// population shrinks by the fanout while the per-node extent grows
    /// accordingly, until a single node (the root) remains.
    pub fn estimate_node_accesses_per_level(&self, fpk: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut model = *self;
        loop {
            let accesses = model.estimate_node_accesses(fpk);
            let nodes = (model.n / model.fanout).ceil();
            if nodes <= 1.0 {
                out.push(1.0); // the root is always accessed
                break;
            }
            out.push(accesses.min(nodes));
            // One level up: the "points" are the level's node centres.
            model.n = nodes;
        }
        out
    }

    /// Expected total node accesses (all levels; compare with
    /// `AccessStats::node_accesses`), as opposed to
    /// [`CostModel::estimate_node_accesses`]'s leaf-only figure (compare
    /// with `AccessStats::leaf_node_accesses`).
    pub fn estimate_total_node_accesses(&self, fpk: f64) -> f64 {
        self.estimate_node_accesses_per_level(fpk).iter().sum()
    }
}

#[cfg(test)]
mod level_tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            n: 50_000.0,
            beta: 2.5,
            omega: 8,
            xmax: 4_000,
            alpha0: 0.3,
            k: 10,
            fanout: effective_fanout(36),
            support_area: 1.0,
        }
    }

    #[test]
    fn levels_shrink_geometrically() {
        let m = model();
        let fpk = m.estimate_fpk();
        let levels = m.estimate_node_accesses_per_level(fpk);
        // ~ log_f(n) levels, ending at the root.
        assert!(levels.len() >= 2 && levels.len() <= 6, "{levels:?}");
        assert_eq!(*levels.last().unwrap(), 1.0);
        // Upper levels cost no more than the whole level's node count.
        for (i, &na) in levels.iter().enumerate() {
            assert!(na >= 0.0, "level {i}");
        }
    }

    #[test]
    fn total_at_least_leaf_estimate_plus_root() {
        let m = model();
        let fpk = m.estimate_fpk();
        let leaf = m.estimate_node_accesses(fpk);
        let total = m.estimate_total_node_accesses(fpk);
        assert!(total >= leaf + 1.0 - 1e-9, "{total} >= {leaf} + root");
    }

    #[test]
    fn total_grows_with_k() {
        let mut prev = 0.0;
        for k in [1usize, 10, 100] {
            let m = CostModel { k, ..model() };
            let est = m.estimate_total_node_accesses(m.estimate_fpk());
            assert!(est >= prev);
            prev = est;
        }
    }
}
