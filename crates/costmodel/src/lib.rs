//! Executable cost model for kNNTA query processing on the TAR-tree
//! (Section 6 of the paper).
//!
//! The model estimates, from the power-law distribution of the aggregate
//! data, (i) the ranking score `f(pk)` of the k-th result — which determines
//! the cone-shaped search region in the normalised 3-D unit cube — and
//! (ii) the expected number of leaf node accesses, by carving the cube into
//! *bands* of nodes whose extents follow the power law and intersecting each
//! band with the search region via Minkowski sums with boundary-effect
//! corrections.
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. **Layers** (Section 6.2): POIs sit on countably many layers, one per
//!    aggregate value `x`, at height `h_x = 1 − x / x_max`; the expected
//!    population of layer `x` is `N(x) = N · x^{-β} / ζ(β, Ω)`.
//! 2. **Search region**: a cone with base radius `r0 = f(pk)/α0` and height
//!    `h_l = f(pk)/α1`; the cross-section at layer `x` has radius
//!    `r_x = (h_l − h_x)/h_l · r0`. `f(pk)` solves
//!    `k = Σ_x N(x) · E[S_{D(q,r_x) ∩ U_x}]` with the boundary-effect
//!    correction `E[S] = (√π·r − π r²/4)²` (capped at 1).
//! 3. **Node accesses** (Section 6.3): bands are built top-down; a band
//!    closes at layer `y` when the R-tree node extent
//!    `S_y = (1 − 1/f)·min(f/ΣN, 1)^{1/2}` matches the accumulated height
//!    `Δh`; the access probability uses the Minkowski sum
//!    `L_y = (S_y² + 4·S_y·r_y + π·r_y²)^{1/2}` with the boundary-effect
//!    correction of Tao et al.
//!
//! The same code doubles as the query-optimiser cost model the paper
//! mentions.

#![warn(missing_docs)]

use lbsn::hurwitz_zeta;

/// Effective fanout: "the average number of entries in a node … typically
/// equals 69% of the node capacity" (Theodoridis & Sellis, cited in
/// Section 6.3).
pub fn effective_fanout(node_capacity: usize) -> f64 {
    0.69 * node_capacity as f64
}

/// The Section 6 cost model for one query configuration.
///
/// ```
/// use costmodel::{effective_fanout, CostModel};
///
/// let model = CostModel {
///     n: 25_000.0,
///     beta: 2.8,
///     omega: 10,
///     xmax: 2_000,
///     alpha0: 0.3,
///     k: 10,
///     fanout: effective_fanout(36),
///     support_area: 1.0,
/// };
/// let est = model.estimate();
/// assert!(est.fpk > 0.0 && est.fpk < 1.0);
/// assert!(est.node_accesses > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Number of indexed POIs `N`.
    pub n: f64,
    /// Power-law exponent `β` of the aggregate distribution over the query
    /// interval.
    pub beta: f64,
    /// Minimum aggregate value `Ω` (the lowest populated layer).
    pub omega: u64,
    /// Maximum aggregate value (defines the height normalisation of the
    /// aggregate dimension).
    pub xmax: u64,
    /// Spatial weight `α0`.
    pub alpha0: f64,
    /// Result size `k`.
    pub k: usize,
    /// Effective leaf fanout `f`.
    pub fanout: f64,
    /// Fraction of the unit square actually occupied by data (1.0 = the
    /// paper's uniformity assumption). LBSN data is heavily clustered —
    /// cities cover a few percent of the bounding box — and both POIs *and*
    /// query points live inside the clusters, so densities, node extents
    /// and access probabilities all concentrate on this support. Estimate
    /// it with [`estimate_support_area`].
    pub support_area: f64,
}

/// The model's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated k-th result score `f(pk)`.
    pub fpk: f64,
    /// Estimated number of leaf node accesses `NA(α, k)`.
    pub node_accesses: f64,
}

/// One band of the node-access estimation (exposed for tests and
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// First (topmost) layer of the band.
    pub x_top: u64,
    /// Last (bottom) layer of the band.
    pub x_bottom: u64,
    /// Expected POIs in the band.
    pub pois: f64,
    /// Node extent `S_y`.
    pub extent: f64,
    /// Access probability `P_y`.
    pub probability: f64,
}

impl CostModel {
    /// Builds a model directly from the observed per-POI aggregates over a
    /// query interval: `N` = sample size, `Ω` = smallest non-zero
    /// aggregate, `x_max` = largest, `β` = discrete MLE over `x ≥ Ω`.
    ///
    /// Returns `None` when fewer than 10 POIs have a non-zero aggregate
    /// (no meaningful layer structure).
    pub fn from_aggregates(
        aggregates: &[u64],
        alpha0: f64,
        k: usize,
        fanout: f64,
    ) -> Option<CostModel> {
        let nonzero: Vec<u64> = aggregates.iter().copied().filter(|&x| x > 0).collect();
        if nonzero.len() < 10 {
            return None;
        }
        let omega = *nonzero.iter().min().expect("non-empty");
        let xmax = *nonzero.iter().max().expect("non-empty");
        if omega == xmax {
            return None; // a single layer has no power-law structure
        }
        let beta = lbsn::powerlaw::fit_beta(&nonzero, omega);
        Some(CostModel {
            n: nonzero.len() as f64,
            beta,
            omega,
            xmax,
            alpha0,
            k,
            fanout,
            support_area: 1.0,
        })
    }

    /// Returns the model with a clustering-aware support area (see
    /// [`CostModel::support_area`]).
    pub fn with_support_area(mut self, area: f64) -> CostModel {
        assert!(area > 0.0 && area <= 1.0, "support area in (0, 1]");
        self.support_area = area;
        self
    }

    /// The aggregate weight `α1 = 1 − α0`.
    pub fn alpha1(&self) -> f64 {
        1.0 - self.alpha0
    }

    /// Height of layer `x` in the unit cube: `h_x = 1 − x / x_max`.
    pub fn layer_height(&self, x: u64) -> f64 {
        1.0 - x as f64 / self.xmax as f64
    }

    /// Expected POIs on layer `x`: `N(x) = N · p(x)` with the discrete
    /// power law renormalised over `x ≥ Ω`.
    pub fn layer_population(&self, x: u64) -> f64 {
        if x < self.omega {
            return 0.0;
        }
        self.n * (x as f64).powf(-self.beta) / hurwitz_zeta(self.beta, self.omega as f64)
    }

    /// Cross-section radius of the search cone at height `h` (0 above the
    /// cone).
    fn cross_radius(&self, fpk: f64, h: f64) -> f64 {
        let r0 = fpk / self.alpha0;
        let hl = fpk / self.alpha1();
        if h >= hl {
            0.0
        } else {
            (hl - h) / hl * r0
        }
    }

    /// Boundary-effect-corrected expected area of a disk of radius `r`
    /// intersected with the unit square (Tao et al., cited in Section 6.2):
    /// `(√π·r − π·r²/4)²` while `√π·r < 2`, else 1.
    pub fn disk_area_in_unit_square(r: f64) -> f64 {
        let s = std::f64::consts::PI.sqrt() * r;
        if s < 2.0 {
            let v = s - std::f64::consts::PI * r * r / 4.0;
            (v * v).min(1.0)
        } else {
            1.0
        }
    }

    /// Expected number of POIs inside the search region for a candidate
    /// `f(pk)`.
    pub fn expected_in_region(&self, fpk: f64) -> f64 {
        let mut total = 0.0;
        for x in self.omega..=self.xmax {
            let r = self.cross_radius(fpk, self.layer_height(x));
            if r > 0.0 {
                // Work in support units: condense the occupied area into a
                // unit square (the paper's uniformity assumption is the
                // special case support_area = 1).
                let r = r / self.support_area.sqrt();
                total += self.layer_population(x) * Self::disk_area_in_unit_square(r);
            }
        }
        total
    }

    /// Estimates `f(pk)` by solving `k = Σ_x N(x)·E[S]` (the expected count
    /// is monotone in `f(pk)`, so bisection converges).
    pub fn estimate_fpk(&self) -> f64 {
        let target = self.k as f64;
        // Scores live in [0, α0·√2 + α1]; bisect there.
        let (mut lo, mut hi) = (0.0f64, self.alpha0 * std::f64::consts::SQRT_2 + self.alpha1());
        if self.expected_in_region(hi) < target {
            return hi; // k exceeds the population: the region is everything
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.expected_in_region(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The R-tree node extent over a span of layers holding `pois` POIs:
    /// `S = (1 − 1/f) · min(f / pois, 1)^{1/2}` (Böhm's model, Section 6.3).
    fn node_extent(&self, pois: f64) -> f64 {
        let occupancy = if pois > 0.0 {
            (self.fanout / pois).min(1.0)
        } else {
            1.0
        };
        ((1.0 - 1.0 / self.fanout) * occupancy.sqrt()).min(0.999)
    }

    /// Minkowski sum of a node of extent `s` and the cross-section disk of
    /// radius `r`, as an equivalent square side:
    /// `L = (Σ_i C(2,i)·s^{2−i}·(√π^i/Γ(i/2+1))·r^i)^{1/2}
    ///    = (s² + 4sr + πr²)^{1/2}`.
    pub fn minkowski_side(s: f64, r: f64) -> f64 {
        (s * s + 4.0 * s * r + std::f64::consts::PI * r * r).sqrt()
    }

    /// Boundary-corrected probability that a node of extent `s` intersects
    /// the cross-section of radius `r`:
    /// `P = ((4L − (L+s)²) / (4(1−s)))²` while `L + s < 2`, else 1.
    pub fn access_probability(s: f64, r: f64) -> f64 {
        let l = Self::minkowski_side(s, r);
        if l + s < 2.0 {
            let v = (4.0 * l - (l + s) * (l + s)) / (4.0 * (1.0 - s));
            (v * v).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// Carves the layers into bands (Section 6.3): a band closes at the
    /// first layer `y` where the node extent no longer exceeds the
    /// accumulated height `h_x − h_y`.
    pub fn bands(&self, fpk: f64) -> Vec<Band> {
        let hl = fpk / self.alpha1();
        let mut bands = Vec::new();
        let mut x = self.omega;
        while x <= self.xmax {
            let h_top = self.layer_height(x);
            let mut pois = 0.0;
            let mut y = x;
            let sqrt_a = self.support_area.sqrt();
            let (extent, bottom) = loop {
                pois += self.layer_population(y);
                let dh = h_top - self.layer_height(y);
                // node_extent is in support units; its physical (true-unit)
                // side is scaled by √A when compared with the height.
                let s = self.node_extent(pois);
                if s * sqrt_a <= dh || y == self.xmax {
                    break (s, y);
                }
                y += 1;
            };
            let h_bottom = self.layer_height(bottom);
            // Nodes lying entirely above the cone are never accessed.
            let probability = if h_bottom >= hl {
                0.0
            } else {
                let r = self.cross_radius(fpk, h_bottom) / sqrt_a;
                Self::access_probability(extent, r)
            };
            bands.push(Band {
                x_top: x,
                x_bottom: bottom,
                pois,
                extent,
                probability,
            });
            x = bottom + 1;
        }
        bands
    }

    /// Expected leaf node accesses for a given `f(pk)`:
    /// `NA = Σ_bands (ΣN / f) · P_y`.
    pub fn estimate_node_accesses(&self, fpk: f64) -> f64 {
        self.bands(fpk)
            .iter()
            .map(|b| (b.pois / self.fanout) * b.probability)
            .sum()
    }

    /// Runs the full pipeline.
    pub fn estimate(&self) -> CostEstimate {
        let fpk = self.estimate_fpk();
        CostEstimate {
            fpk,
            node_accesses: self.estimate_node_accesses(fpk),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            n: 10_000.0,
            beta: 2.5,
            omega: 10,
            xmax: 5_000,
            alpha0: 0.3,
            k: 10,
            fanout: effective_fanout(36),
            support_area: 1.0,
        }
    }

    #[test]
    fn effective_fanout_is_69_percent() {
        assert!((effective_fanout(50) - 34.5).abs() < 1e-12);
        assert!((effective_fanout(36) - 24.84).abs() < 1e-12);
    }

    #[test]
    fn layer_geometry() {
        let m = model();
        assert_eq!(m.layer_height(m.xmax), 0.0);
        assert!((m.layer_height(0) - 1.0).abs() < 1e-12);
        // Paper example: aggregate 2 of max 12 → height 1 − 2/12 ≈ 0.83.
        let m2 = CostModel { xmax: 12, ..m };
        assert!((m2.layer_height(2) - (1.0 - 2.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn layer_population_is_power_law() {
        let m = model();
        assert_eq!(m.layer_population(5), 0.0);
        let p10 = m.layer_population(10);
        let p20 = m.layer_population(20);
        // Ratio = (10/20)^-β = 2^-2.5.
        assert!((p20 / p10 - 2f64.powf(-2.5)).abs() < 1e-9);
        // Total population ≈ N.
        let total: f64 = (10..=100_000).map(|x| m.layer_population(x)).sum();
        assert!((total - m.n).abs() / m.n < 0.01, "total {total}");
    }

    #[test]
    fn disk_area_limits() {
        assert_eq!(CostModel::disk_area_in_unit_square(0.0), 0.0);
        // Small r: ≈ π r² (the plain disk area).
        let r = 0.01;
        let a = CostModel::disk_area_in_unit_square(r);
        assert!((a - std::f64::consts::PI * r * r).abs() < 1e-5);
        // Huge r: everything.
        assert_eq!(CostModel::disk_area_in_unit_square(5.0), 1.0);
        // Monotone in r.
        let mut prev = 0.0;
        for i in 1..100 {
            let a = CostModel::disk_area_in_unit_square(i as f64 * 0.02);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn minkowski_side_matches_closed_form() {
        let (s, r) = (0.2, 0.1);
        let expect = (0.04 + 4.0 * 0.02 + std::f64::consts::PI * 0.01).sqrt();
        assert!((CostModel::minkowski_side(s, r) - expect).abs() < 1e-12);
        // r = 0 degenerates to the square itself.
        assert!((CostModel::minkowski_side(0.3, 0.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn access_probability_limits() {
        // r = 0: probability a point query hits the node ≈ s².
        let p = CostModel::access_probability(0.3, 0.0);
        assert!((p - 0.09).abs() < 1e-9, "p = {p}");
        // Huge node or region: certain access.
        assert_eq!(CostModel::access_probability(0.999, 1.5), 1.0);
        // Monotone in r.
        let mut prev = 0.0;
        for i in 0..50 {
            let p = CostModel::access_probability(0.1, i as f64 * 0.02);
            assert!(p >= prev - 1e-12, "at r = {}", i as f64 * 0.02);
            prev = p;
        }
    }

    #[test]
    fn expected_in_region_monotone_in_fpk() {
        let m = model();
        let mut prev = 0.0;
        for i in 1..20 {
            let fpk = i as f64 * 0.05;
            let e = m.expected_in_region(fpk);
            assert!(e >= prev, "fpk = {fpk}");
            prev = e;
        }
    }

    #[test]
    fn fpk_grows_with_k() {
        let m = model();
        let mut prev = 0.0;
        for k in [1, 5, 10, 50, 100] {
            let fpk = CostModel { k, ..m }.estimate_fpk();
            assert!(fpk > prev, "k = {k}: {fpk} > {prev}");
            assert!(fpk < 1.5);
            prev = fpk;
        }
    }

    #[test]
    fn fpk_solves_the_balance_equation() {
        let m = model();
        let fpk = m.estimate_fpk();
        let count = m.expected_in_region(fpk);
        assert!(
            (count - m.k as f64).abs() < 0.05,
            "E[in region] = {count} at f(pk) = {fpk}"
        );
    }

    #[test]
    fn node_accesses_grow_with_k() {
        let m = model();
        let mut prev = 0.0;
        for k in [1, 5, 10, 50, 100] {
            let est = CostModel { k, ..m }.estimate();
            assert!(
                est.node_accesses >= prev,
                "k = {k}: {} >= {prev}",
                est.node_accesses
            );
            prev = est.node_accesses;
        }
    }

    #[test]
    fn bands_partition_all_layers() {
        let m = model();
        let fpk = m.estimate_fpk();
        let bands = m.bands(fpk);
        assert!(!bands.is_empty());
        assert_eq!(bands[0].x_top, m.omega);
        assert_eq!(bands.last().unwrap().x_bottom, m.xmax);
        for w in bands.windows(2) {
            assert_eq!(w[0].x_bottom + 1, w[1].x_top, "bands are contiguous");
        }
        for b in &bands {
            assert!(b.extent > 0.0 && b.extent < 1.0);
            assert!((0.0..=1.0).contains(&b.probability));
        }
    }

    #[test]
    fn node_extents_smaller_on_denser_bands() {
        // Power law ⇒ low layers (large x) are sparse ⇒ their bands have
        // larger extents, as in Figure 4.
        let m = model();
        let bands = m.bands(m.estimate_fpk());
        if bands.len() >= 2 {
            let first = bands.first().unwrap();
            let last = bands.last().unwrap();
            assert!(
                first.extent <= last.extent,
                "dense top band {} vs sparse bottom band {}",
                first.extent,
                last.extent
            );
        }
    }

    #[test]
    fn from_aggregates_fits() {
        let mut rng = knnta_util::rng::StdRng::seed_from_u64(5);
        let law = lbsn::PowerLaw::new(2.5, 10);
        let mut aggs: Vec<u64> = (0..5000).map(|_| law.sample(&mut rng)).collect();
        aggs.extend(std::iter::repeat_n(0u64, 1000)); // zero-aggregate POIs are ignored
        let m = CostModel::from_aggregates(&aggs, 0.3, 10, effective_fanout(36)).unwrap();
        assert!((m.beta - 2.5).abs() < 0.2, "β̂ = {}", m.beta);
        assert_eq!(m.omega, 10);
        assert_eq!(m.n, 5000.0);
        let est = m.estimate();
        assert!(est.fpk > 0.0 && est.node_accesses > 0.0);
    }

    #[test]
    fn from_aggregates_rejects_degenerate() {
        assert!(CostModel::from_aggregates(&[0; 100], 0.3, 10, 20.0).is_none());
        assert!(CostModel::from_aggregates(&[5; 100], 0.3, 10, 20.0).is_none());
        assert!(CostModel::from_aggregates(&[1, 2, 3], 0.3, 10, 20.0).is_none());
    }

    #[test]
    fn alpha_extremes_shape_the_cone() {
        // α0 → 1: tall thin cone is impossible (hl = fpk/α1 explodes);
        // the model must still return finite sane values.
        let m = model();
        for alpha0 in [0.1, 0.5, 0.9] {
            let est = CostModel { alpha0, ..m }.estimate();
            assert!(est.fpk.is_finite() && est.fpk > 0.0, "α0 = {alpha0}");
            assert!(
                est.node_accesses.is_finite() && est.node_accesses > 0.0,
                "α0 = {alpha0}"
            );
        }
    }
}

/// Estimates the fraction of the data-space bounding box actually occupied
/// by POIs, by counting occupied cells of a `grid × grid` raster (cells are
/// chosen near the leaf-node scale, so the estimate matches the node-extent
/// model). `positions` are raw data-space coordinates inside `bounds`
/// (`[min_x, min_y], [max_x, max_y]`).
pub fn estimate_support_area(positions: &[[f64; 2]], bounds: ([f64; 2], [f64; 2])) -> f64 {
    const GRID: usize = 64;
    if positions.is_empty() {
        return 1.0;
    }
    let (min, max) = bounds;
    let w = (max[0] - min[0]).max(f64::MIN_POSITIVE);
    let h = (max[1] - min[1]).max(f64::MIN_POSITIVE);
    let mut occupied = vec![false; GRID * GRID];
    for p in positions {
        let cx = (((p[0] - min[0]) / w) * GRID as f64).min(GRID as f64 - 1.0) as usize;
        let cy = (((p[1] - min[1]) / h) * GRID as f64).min(GRID as f64 - 1.0) as usize;
        occupied[cy * GRID + cx] = true;
    }
    let count = occupied.iter().filter(|&&o| o).count();
    (count as f64 / (GRID * GRID) as f64).max(1.0 / (GRID * GRID) as f64)
}

#[cfg(test)]
mod support_tests {
    use super::*;

    #[test]
    fn uniform_data_fills_the_box() {
        let mut pts = Vec::new();
        for i in 0..64 {
            for j in 0..64 {
                pts.push([i as f64 + 0.5, j as f64 + 0.5]);
            }
        }
        let a = estimate_support_area(&pts, ([0.0, 0.0], [64.0, 64.0]));
        assert!(a > 0.95, "a = {a}");
    }

    #[test]
    fn clustered_data_has_small_support() {
        let pts: Vec<[f64; 2]> = (0..1000)
            .map(|i| [50.0 + (i % 10) as f64 * 0.01, 50.0 + (i / 10) as f64 * 0.001])
            .collect();
        let a = estimate_support_area(&pts, ([0.0, 0.0], [100.0, 100.0]));
        assert!(a < 0.01, "a = {a}");
    }

    #[test]
    fn empty_input_defaults_to_uniform() {
        assert_eq!(estimate_support_area(&[], ([0.0, 0.0], [1.0, 1.0])), 1.0);
    }

    #[test]
    fn support_area_raises_estimates() {
        let base = CostModel {
            n: 20_000.0,
            beta: 2.6,
            omega: 5,
            xmax: 2_000,
            alpha0: 0.3,
            k: 10,
            fanout: effective_fanout(36),
            support_area: 1.0,
        };
        let concentrated = base.with_support_area(0.05);
        let e1 = base.estimate();
        let e2 = concentrated.estimate();
        // Concentrating the same data into 5% of the space makes the search
        // region cover relatively more of it, so fewer high-score POIs are
        // needed and f(pk) shrinks. (Node accesses feel two opposing
        // forces — higher density vs a smaller cone — so only sanity-check
        // them.)
        assert!(e2.fpk <= e1.fpk, "{} <= {}", e2.fpk, e1.fpk);
        assert!(e2.node_accesses.is_finite() && e2.node_accesses > 0.0);
    }
}

impl CostModel {
    /// Expected node accesses at every tree level, leaves first.
    ///
    /// Section 6.3 estimates leaf accesses and notes "the following analysis
    /// applies to internal nodes straightforwardly": each level up, the
    /// population shrinks by the fanout while the per-node extent grows
    /// accordingly, until a single node (the root) remains.
    pub fn estimate_node_accesses_per_level(&self, fpk: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut model = *self;
        loop {
            let accesses = model.estimate_node_accesses(fpk);
            let nodes = (model.n / model.fanout).ceil();
            if nodes <= 1.0 {
                out.push(1.0); // the root is always accessed
                break;
            }
            out.push(accesses.min(nodes));
            // One level up: the "points" are the level's node centres.
            model.n = nodes;
        }
        out
    }

    /// Expected total node accesses (all levels; compare with
    /// `AccessStats::node_accesses`), as opposed to
    /// [`CostModel::estimate_node_accesses`]'s leaf-only figure (compare
    /// with `AccessStats::leaf_node_accesses`).
    pub fn estimate_total_node_accesses(&self, fpk: f64) -> f64 {
        self.estimate_node_accesses_per_level(fpk).iter().sum()
    }
}

#[cfg(test)]
mod level_tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            n: 50_000.0,
            beta: 2.5,
            omega: 8,
            xmax: 4_000,
            alpha0: 0.3,
            k: 10,
            fanout: effective_fanout(36),
            support_area: 1.0,
        }
    }

    #[test]
    fn levels_shrink_geometrically() {
        let m = model();
        let fpk = m.estimate_fpk();
        let levels = m.estimate_node_accesses_per_level(fpk);
        // ~ log_f(n) levels, ending at the root.
        assert!(levels.len() >= 2 && levels.len() <= 6, "{levels:?}");
        assert_eq!(*levels.last().unwrap(), 1.0);
        // Upper levels cost no more than the whole level's node count.
        for (i, &na) in levels.iter().enumerate() {
            assert!(na >= 0.0, "level {i}");
        }
    }

    #[test]
    fn total_at_least_leaf_estimate_plus_root() {
        let m = model();
        let fpk = m.estimate_fpk();
        let leaf = m.estimate_node_accesses(fpk);
        let total = m.estimate_total_node_accesses(fpk);
        assert!(total >= leaf + 1.0 - 1e-9, "{total} >= {leaf} + root");
    }

    #[test]
    fn total_grows_with_k() {
        let mut prev = 0.0;
        for k in [1usize, 10, 100] {
            let m = CostModel { k, ..model() };
            let est = m.estimate_total_node_accesses(m.estimate_fpk());
            assert!(est >= prev);
            prev = est;
        }
    }
}

// ---------------------------------------------------------------------------
// Planner: from validation-only model to the default execution planner.
// ---------------------------------------------------------------------------

/// The per-query facts the planner needs (a strict subset of the engine's
/// query type, so this crate stays independent of `knnta-core`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Result size `k`.
    pub k: usize,
    /// Spatial weight `α0`.
    pub alpha0: f64,
    /// Number of queries planned together: 1 for a single kNNTA query,
    /// the batch size for a collective batch.
    pub batch: usize,
}

impl QuerySpec {
    /// A single (non-batch) query.
    pub fn single(k: usize, alpha0: f64) -> QuerySpec {
        QuerySpec { k, alpha0, batch: 1 }
    }
}

/// A planning-time snapshot of one index: its shape, a sample of its
/// aggregate distribution, and which serving tiers are materialised.
///
/// Built by the engine (e.g. `TarIndex::index_stats`) and handed to
/// [`Planner::plan`]; everything here is cheap to copy around and carries
/// no borrows into the index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Number of indexed POIs.
    pub n: usize,
    /// Total R-tree nodes (all levels).
    pub node_count: usize,
    /// Tree height (1 = the root is a leaf).
    pub height: usize,
    /// Effective fanout (see [`effective_fanout`]).
    pub fanout: f64,
    /// Per-POI aggregates over the full time span — the sample the
    /// power-law fit runs on.
    pub aggregates: Vec<u64>,
    /// Fraction of the bounding box occupied by data
    /// (see [`CostModel::support_area`]).
    pub support_area: f64,
    /// A paged (buffer-pool) image is materialised and fresh.
    pub paged_available: bool,
    /// A packed immutable image is materialised and fresh.
    pub packed_available: bool,
    /// Buffer-pool capacity in pages (0 when no paged image).
    pub buffer_capacity: usize,
    /// Upper bound on worker threads the executor may spawn.
    pub max_threads: usize,
}

impl IndexStats {
    /// A cheap content token over everything the *model estimate* reads
    /// (shape, aggregate sample, support area) — backend availability and
    /// thread limits are deliberately excluded, they only steer the plan
    /// after the estimate. Used to key [`Planner`]'s estimate memo; FNV-1a
    /// over the scalar fields plus a sample of the aggregate vector.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.n as u64);
        mix(self.node_count as u64);
        mix(self.height as u64);
        mix(self.fanout.to_bits());
        mix(self.support_area.to_bits());
        mix(self.aggregates.len() as u64);
        // Sampling keeps this O(1); a content change that alters no shape
        // field, no sampled aggregate, and not the aggregate count is
        // negligible for a latency *estimate*.
        for a in self.aggregates.iter().step_by((self.aggregates.len() / 64).max(1)) {
            mix(*a);
        }
        h
    }
}

/// Execution mode chosen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Single-threaded best-first search.
    Sequential,
    /// Work-stealing parallel best-first search.
    Parallel {
        /// Worker thread count (always ≥ 2; 1 would be sequential).
        threads: usize,
    },
}

/// Storage backend chosen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanBackend {
    /// The pointer-based in-memory R*-tree.
    InMemory,
    /// The page-serialised tree behind a buffer pool.
    Paged,
    /// The bulk-packed immutable serving image.
    Packed,
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanMode::Sequential => write!(f, "sequential"),
            PlanMode::Parallel { threads } => write!(f, "parallel({threads})"),
        }
    }
}

impl std::fmt::Display for PlanBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlanBackend::InMemory => "in-memory",
            PlanBackend::Paged => "paged",
            PlanBackend::Packed => "packed",
        })
    }
}

/// A fully-resolved execution configuration plus the cost estimates that
/// justified it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPlan {
    /// Sequential or parallel (with thread count).
    pub mode: PlanMode,
    /// Which materialised tier to traverse.
    pub backend: PlanBackend,
    /// Collective-batch tile size (1 for single queries).
    pub tile: usize,
    /// Whether the per-node aggregate cache is enabled for batches.
    pub agg_cache: bool,
    /// Estimated k-th result score `f(pk)` (0 when the model was
    /// degenerate and the heuristic fallback was used).
    pub estimated_fpk: f64,
    /// Raw model estimate of total node accesses (all levels), before
    /// calibration.
    pub model_node_accesses: f64,
    /// Calibration-scaled estimate of total node accesses — the figure the
    /// planner actually decided on, comparable with
    /// `AccessStats::node_accesses`.
    pub estimated_node_accesses: f64,
}

/// Online EWMA calibration of model estimates against measured counters.
///
/// The paper's model is analytic and assumes power-law layers over a known
/// support; real traversals drift from it (clustering, cache effects,
/// grouping strategy). The executor feeds every `(estimated, measured)`
/// node-access pair back here; the planner multiplies future estimates by
/// the learned factor so they converge to observed costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    factor: f64,
    alpha: f64,
    samples: u64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::new()
    }
}

impl Calibration {
    /// EWMA weight for each new observation.
    pub const DEFAULT_ALPHA: f64 = 0.25;
    /// Per-observation ratio clamp: one wild measurement (cold cache,
    /// degenerate query) may not swing the factor by more than 32×.
    const RATIO_CLAMP: f64 = 32.0;

    /// A fresh, identity calibration (factor 1.0, no samples).
    pub fn new() -> Calibration {
        Calibration {
            factor: 1.0,
            alpha: Self::DEFAULT_ALPHA,
            samples: 0,
        }
    }

    /// Records one estimate-vs-measurement pair. Non-finite or non-positive
    /// estimates are ignored (the model was degenerate for that query).
    pub fn observe(&mut self, estimated: f64, measured: f64) {
        if !(estimated > 0.0) || !estimated.is_finite() || !(measured >= 0.0) {
            return;
        }
        let ratio = (measured / estimated).clamp(1.0 / Self::RATIO_CLAMP, Self::RATIO_CLAMP);
        if self.samples == 0 {
            self.factor = ratio;
        } else {
            self.factor = (1.0 - self.alpha) * self.factor + self.alpha * ratio;
        }
        self.samples += 1;
    }

    /// Snaps the correction factor to a robust windowed statistic — the
    /// median measured/estimated ratio over a recent window, as reported by
    /// the serving telemetry's sliding-window histogram. Unlike
    /// [`Calibration::observe`], this replaces the EWMA state outright: the
    /// median over a window is already noise-resistant, and on a
    /// long-running server it tracks workload drift without the EWMA's
    /// sensitivity to the arrival order of outliers. Non-finite or
    /// non-positive ratios are ignored; the clamp still applies.
    pub fn recalibrate(&mut self, median_ratio: f64) {
        if !(median_ratio > 0.0) || !median_ratio.is_finite() {
            return;
        }
        self.factor = median_ratio.clamp(1.0 / Self::RATIO_CLAMP, Self::RATIO_CLAMP);
        self.samples += 1;
    }

    /// The current multiplicative correction applied to model estimates.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// How many observations have been folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// The cost-model-driven planner: turns the paper-§6 node-access analysis
/// into the component that picks the execution configuration per query.
///
/// Decision rules (all deterministic given the same stats + calibration):
///
/// - **Backend** — prefer the packed serving image when materialised (its
///   latency dominance over the pointer tree is CI-gated), else the
///   in-memory tree, else the paged tier. The paged tier is never chosen
///   over an available in-memory tree: it trades latency for bounded
///   memory, which is the *caller's* constraint, not a per-query one.
/// - **Mode** — parallel only when the calibrated total-node-access
///   estimate amortises worker spawn + steal overhead
///   ([`Planner::PARALLEL_THRESHOLD`]); the thread count then scales with
///   the estimate ([`Planner::NODES_PER_THREAD`]) and clamps to
///   `max_threads`. Below the threshold the sequential path is both faster
///   and allocation-free.
/// - **Tile** (collective batches) — tiles grow with the batch so adjacent
///   Hilbert-ordered queries share node accesses, capped to bound frontier
///   state, and on the paged tier additionally capped so one tile's
///   working set (`tile × height` pages) fits the buffer pool without
///   thrashing.
/// - **Agg-cache** — on for real batches (≥ 2 queries, where repeated
///   epoch scans amortise), off for trivial ones.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Planner {
    calibration: Calibration,
    /// Memoised `(fpk, raw)` model estimates keyed on
    /// `(k, alpha0, stats fingerprint)`. The paper-§6 estimate needs a
    /// power-law fit over the full aggregate sample plus a layered
    /// bisection — far too expensive per query — while its inputs change
    /// only when the index contents do. Calibration is applied *after* the
    /// cached estimate, so the cache stays valid across feedback.
    estimates: Vec<((usize, u64, u64), (f64, f64))>,
}

impl Planner {
    /// Minimum calibrated node-access estimate before parallel execution
    /// pays for itself.
    pub const PARALLEL_THRESHOLD: f64 = 4096.0;
    /// Calibrated node accesses each extra worker should have to chew on.
    pub const NODES_PER_THREAD: f64 = 2048.0;
    /// Collective tile-size bounds.
    pub const MIN_TILE: usize = 16;
    /// Upper tile bound (frontier state per tile is O(tile)).
    pub const MAX_TILE: usize = 256;

    /// A fresh planner with identity calibration.
    pub fn new() -> Planner {
        Planner::default()
    }

    /// Read access to the calibration state.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Feeds one measured total-node-access count back into the
    /// calibration, against the plan's raw (uncalibrated) model estimate.
    pub fn feedback(&mut self, plan: &QueryPlan, measured_node_accesses: u64) {
        self.calibration
            .observe(plan.model_node_accesses, measured_node_accesses as f64);
    }

    /// Snaps the calibration to a windowed median ratio (see
    /// [`Calibration::recalibrate`]). Plan choice never changes answers, so
    /// this is always answer-safe.
    pub fn recalibrate(&mut self, median_ratio: f64) {
        self.calibration.recalibrate(median_ratio);
    }

    /// Raw model estimate of total node accesses for `query` on an index
    /// shaped like `stats`, plus the `f(pk)` it derives from. Falls back to
    /// a height-based heuristic (`height + k/fanout` per query) when the
    /// aggregate sample is degenerate (too few non-zero values, or a single
    /// layer).
    fn model_estimate(query: &QuerySpec, stats: &IndexStats) -> (f64, f64) {
        if let Some(model) =
            CostModel::from_aggregates(&stats.aggregates, query.alpha0, query.k, stats.fanout)
        {
            let model = model.with_support_area(stats.support_area.clamp(f64::MIN_POSITIVE, 1.0));
            let fpk = model.estimate_fpk();
            (fpk, model.estimate_total_node_accesses(fpk))
        } else {
            let per_query =
                stats.height as f64 + query.k as f64 / stats.fanout.max(1.0);
            (0.0, per_query.min(stats.node_count.max(1) as f64))
        }
    }

    /// [`Planner::model_estimate`] through the memo: one fit + bisection
    /// per distinct `(k, alpha0, stats)`, a linear scan of a tiny vector
    /// after that.
    fn estimate_cached(
        &mut self,
        query: &QuerySpec,
        stats: &IndexStats,
        fingerprint: u64,
    ) -> (f64, f64) {
        let key = (query.k, query.alpha0.to_bits(), fingerprint);
        if let Some((_, e)) = self.estimates.iter().find(|(k, _)| *k == key) {
            return *e;
        }
        let e = Self::model_estimate(query, stats);
        if self.estimates.len() >= 64 {
            self.estimates.clear(); // tiny workloads never get here
        }
        self.estimates.push((key, e));
        e
    }

    /// Chooses the execution configuration for `query` (ISSUE-8 signature:
    /// the paper-§6 estimates, calibrated online, drive every knob).
    pub fn plan(&mut self, query: &QuerySpec, stats: &IndexStats) -> QueryPlan {
        self.plan_keyed(query, stats, stats.fingerprint())
    }

    /// [`Planner::plan`] with a caller-supplied [`IndexStats::fingerprint`].
    /// The fingerprint is a per-content-epoch token: callers that already
    /// cache stats per epoch (the executor) hash once per epoch instead of
    /// once per query.
    pub fn plan_keyed(
        &mut self,
        query: &QuerySpec,
        stats: &IndexStats,
        fingerprint: u64,
    ) -> QueryPlan {
        let (fpk, raw) = self.estimate_cached(query, stats, fingerprint);
        // The whole batch shares one traversal budget.
        let raw_total = raw * query.batch.max(1) as f64;
        let calibrated = (raw_total * self.calibration.factor())
            .min(stats.node_count.max(1) as f64 * query.batch.max(1) as f64);

        let backend = if stats.packed_available {
            PlanBackend::Packed
        } else if stats.paged_available {
            // Only reachable when no in-memory tree is being planned for;
            // TarIndex always has one, so this arm serves stats built for
            // page-resident deployments.
            PlanBackend::InMemory
        } else {
            PlanBackend::InMemory
        };

        let mode = if calibrated >= Self::PARALLEL_THRESHOLD && stats.max_threads >= 2 {
            let threads = ((calibrated / Self::NODES_PER_THREAD) as usize)
                .clamp(2, stats.max_threads);
            PlanMode::Parallel { threads }
        } else {
            PlanMode::Sequential
        };

        let tile = if query.batch <= 1 {
            1
        } else {
            let mut tile = query.batch.clamp(Self::MIN_TILE, Self::MAX_TILE);
            if backend == PlanBackend::Paged && stats.buffer_capacity > 0 {
                tile = tile.min((stats.buffer_capacity / stats.height.max(1)).max(1));
            }
            tile
        };

        QueryPlan {
            mode,
            backend,
            tile,
            agg_cache: query.batch >= 2,
            estimated_fpk: fpk,
            model_node_accesses: raw_total,
            estimated_node_accesses: calibrated,
        }
    }
}

#[cfg(test)]
mod planner_tests {
    use super::*;

    fn sample_aggregates() -> Vec<u64> {
        let mut rng = knnta_util::rng::StdRng::seed_from_u64(42);
        let law = lbsn::PowerLaw::new(2.6, 8);
        (0..4000).map(|_| law.sample(&mut rng)).collect()
    }

    fn stats() -> IndexStats {
        IndexStats {
            n: 4000,
            node_count: 250,
            height: 3,
            fanout: effective_fanout(36),
            aggregates: sample_aggregates(),
            support_area: 0.2,
            paged_available: false,
            packed_available: false,
            buffer_capacity: 0,
            max_threads: 8,
        }
    }

    #[test]
    fn estimates_monotone_in_k() {
        let mut planner = Planner::new();
        let s = stats();
        let mut prev = 0.0;
        for k in [1, 5, 10, 50, 100] {
            let plan = planner.plan(&QuerySpec::single(k, 0.3), &s);
            assert!(
                plan.estimated_node_accesses >= prev,
                "k = {k}: {} >= {prev}",
                plan.estimated_node_accesses
            );
            assert!(plan.estimated_node_accesses > 0.0);
            prev = plan.estimated_node_accesses;
        }
    }

    #[test]
    fn recalibrate_snaps_to_windowed_median() {
        let mut cal = Calibration::new();
        cal.observe(100.0, 100.0);
        cal.recalibrate(2.5);
        assert_eq!(cal.factor(), 2.5);
        // Clamped like per-observation ratios; garbage ignored.
        cal.recalibrate(1.0e9);
        assert_eq!(cal.factor(), 32.0);
        cal.recalibrate(f64::NAN);
        cal.recalibrate(0.0);
        cal.recalibrate(-3.0);
        assert_eq!(cal.factor(), 32.0);
        let mut planner = Planner::new();
        planner.recalibrate(0.5);
        assert_eq!(planner.calibration().factor(), 0.5);
    }

    #[test]
    fn calibration_converges_on_replayed_trace() {
        // Replay a trace where the real tree consistently costs 3× the
        // model's figure: the EWMA factor must converge to 3 and planned
        // estimates must land within 5% of the measured costs.
        let mut planner = Planner::new();
        let s = stats();
        for _ in 0..50 {
            let plan = planner.plan(&QuerySpec::single(10, 0.3), &s);
            let measured = (plan.model_node_accesses * 3.0).round() as u64;
            planner.feedback(&plan, measured);
        }
        let f = planner.calibration().factor();
        assert!((f - 3.0).abs() < 0.15, "factor = {f}");
        let plan = planner.plan(&QuerySpec::single(10, 0.3), &s);
        let err = (plan.estimated_node_accesses - plan.model_node_accesses * 3.0).abs()
            / (plan.model_node_accesses * 3.0);
        assert!(err < 0.05, "relative error {err}");
        assert_eq!(planner.calibration().samples(), 50);
    }

    #[test]
    fn calibration_ignores_degenerate_estimates() {
        let mut c = Calibration::new();
        c.observe(0.0, 100.0);
        c.observe(f64::NAN, 100.0);
        c.observe(10.0, -1.0);
        assert_eq!(c.samples(), 0);
        assert_eq!(c.factor(), 1.0);
        // A wild outlier is clamped, not adopted verbatim.
        c.observe(1.0, 1.0e9);
        assert_eq!(c.factor(), 32.0);
    }

    #[test]
    fn backend_prefers_packed_then_in_memory() {
        let mut planner = Planner::new();
        let mut s = stats();
        assert_eq!(
            planner.plan(&QuerySpec::single(10, 0.3), &s).backend,
            PlanBackend::InMemory
        );
        s.paged_available = true;
        s.buffer_capacity = 64;
        assert_eq!(
            planner.plan(&QuerySpec::single(10, 0.3), &s).backend,
            PlanBackend::InMemory,
            "paged trades latency for memory; never chosen over in-memory"
        );
        s.packed_available = true;
        assert_eq!(
            planner.plan(&QuerySpec::single(10, 0.3), &s).backend,
            PlanBackend::Packed
        );
    }

    #[test]
    fn small_indexes_plan_sequential() {
        // At laptop/bench scale the calibrated estimate sits far below the
        // spawn-amortisation threshold: the plan must be sequential (which
        // is also the measured-fastest fixed configuration there).
        let mut planner = Planner::new();
        let plan = planner.plan(&QuerySpec::single(100, 0.3), &stats());
        assert_eq!(plan.mode, PlanMode::Sequential);
    }

    #[test]
    fn huge_estimates_go_parallel_and_clamp_threads() {
        let mut planner = Planner::new();
        let mut s = stats();
        s.n = 4_000_000;
        s.node_count = 200_000;
        // A large batch on a tree the calibration has learned costs far more
        // than the model predicts (the ratio clamps at `RATIO_CLAMP`).
        let spec = QuerySpec {
            k: 100,
            alpha0: 0.3,
            batch: 16,
        };
        let probe = planner.plan(&spec, &s);
        for _ in 0..20 {
            planner.feedback(&probe, (probe.model_node_accesses * 50.0) as u64);
        }
        let plan = planner.plan(&spec, &s);
        match plan.mode {
            PlanMode::Parallel { threads } => {
                assert!(threads >= 2 && threads <= s.max_threads, "threads = {threads}");
            }
            PlanMode::Sequential => panic!(
                "estimate {} above threshold must plan parallel",
                plan.estimated_node_accesses
            ),
        }
        // max_threads = 1 forbids parallelism no matter the estimate.
        s.max_threads = 1;
        assert_eq!(planner.plan(&spec, &s).mode, PlanMode::Sequential);
    }

    #[test]
    fn tile_scales_with_batch_and_respects_buffer() {
        let mut planner = Planner::new();
        let s = stats();
        let mut tile_of = |batch: usize, s: &IndexStats| {
            planner
                .plan(&QuerySpec { k: 10, alpha0: 0.3, batch }, s)
                .tile
        };
        assert_eq!(tile_of(1, &s), 1);
        let mut prev = 0;
        for batch in [2, 16, 64, 200, 1000, 10_000] {
            let tile = tile_of(batch, &s);
            assert!(tile >= Planner::MIN_TILE && tile <= Planner::MAX_TILE);
            assert!(tile >= prev, "tile monotone in batch");
            prev = tile;
        }
        assert_eq!(tile_of(10_000, &s), Planner::MAX_TILE);
    }

    #[test]
    fn agg_cache_on_for_real_batches() {
        let mut planner = Planner::new();
        let s = stats();
        assert!(!planner.plan(&QuerySpec::single(10, 0.3), &s).agg_cache);
        assert!(planner.plan(&QuerySpec { k: 10, alpha0: 0.3, batch: 2 }, &s).agg_cache);
    }

    #[test]
    fn degenerate_aggregates_fall_back_to_heuristic() {
        let mut planner = Planner::new();
        let mut s = stats();
        s.aggregates = vec![7; 100]; // single layer: no power-law fit
        let plan = planner.plan(&QuerySpec::single(10, 0.3), &s);
        assert_eq!(plan.estimated_fpk, 0.0);
        assert!(plan.estimated_node_accesses > 0.0);
        assert!(plan.estimated_node_accesses <= s.node_count as f64);
    }
}
