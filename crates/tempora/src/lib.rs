//! Temporal substrate for k-nearest-neighbor temporal aggregate (kNNTA) queries.
//!
//! The paper (Sun et al., EDBT 2015, Section 3) discretises the time axis into
//! *epochs* — fixed-length (a second, an hour, seven days, …) or of varied
//! lengths — and aggregates *check-ins* (visits, likes, …) per point of
//! interest per epoch. This crate provides:
//!
//! * [`Timestamp`] and [`TimeInterval`]: instants and closed intervals on the
//!   application time axis, measured in seconds since the application start
//!   `t0`.
//! * [`EpochGrid`]: the discretisation of `[t0, tc]` into epochs, either
//!   [`EpochGrid::fixed`]-length or [`EpochGrid::varied`] (e.g. exponentially
//!   growing epochs).
//! * [`CheckIn`] and [`aggregate_checkins`]: raw events and their per-epoch
//!   aggregation.
//! * [`AggregateSeries`]: a sparse per-epoch aggregate vector — the record
//!   layout `⟨ts, te, agg⟩` the paper stores in each TIA (temporal index on
//!   the aggregate), plus the operations the index layer needs (sum over a
//!   query interval, per-epoch max merge, Manhattan distance, mean rate `λ̂`).
//!
//! Everything here is deterministic and allocation-conscious; the hot-path
//! operations ([`AggregateSeries::aggregate_over`],
//! [`AggregateSeries::merge_max`]) are linear merges over sorted sparse
//! records.

#![warn(missing_docs)]

mod aggregate;
mod checkin;
mod epoch;
mod time;

pub use aggregate::{aggregate_checkins, AggregateKind, AggregateSeries, EpochRecord, PrefixSums};
pub use checkin::{CheckIn, PoiId};
pub use epoch::{Epoch, EpochGrid, EpochWatermark};
pub use time::{TimeInterval, Timestamp};
