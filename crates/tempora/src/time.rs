//! Instants and intervals on the application time axis.

use std::fmt;
use std::ops::{Add, Sub};

/// An instant on the application time axis, in seconds since the application
/// start `t0` (so `Timestamp::ZERO` *is* `t0`).
///
/// The paper measures epochs in days; [`Timestamp::from_days`] and
/// [`Timestamp::from_hours`] cover the common cases.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The application start `t0`.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Seconds in one hour.
    pub const HOUR: i64 = 3_600;
    /// Seconds in one day.
    pub const DAY: i64 = 86_400;

    /// A timestamp `days` days after `t0`.
    pub fn from_days(days: i64) -> Self {
        Timestamp(days * Self::DAY)
    }

    /// A timestamp `hours` hours after `t0`.
    pub fn from_hours(hours: i64) -> Self {
        Timestamp(hours * Self::HOUR)
    }

    /// Seconds since `t0`.
    pub fn seconds(self) -> i64 {
        self.0
    }

    /// Whole days since `t0` (rounded towards zero).
    pub fn days(self) -> i64 {
        self.0 / Self::DAY
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two timestamps.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t0+{}s", self.0)
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: i64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<i64> for Timestamp {
    type Output = Timestamp;

    fn sub(self, rhs: i64) -> Timestamp {
        Timestamp(self.0 - rhs)
    }
}

impl Sub for Timestamp {
    type Output = i64;

    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

/// A closed time interval `[start, end]` on the application time axis.
///
/// Query time intervals `Iq` in kNNTA queries are of this form. An epoch
/// record `⟨ts, te, agg⟩` contributes to a query iff `[ts, te] ⊆ Iq`
/// (Section 4.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    start: Timestamp,
    end: Timestamp,
}

impl TimeInterval {
    /// Creates `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(
            start <= end,
            "TimeInterval start {start} must not exceed end {end}"
        );
        TimeInterval { start, end }
    }

    /// `[t0 + start_day days, t0 + end_day days]`.
    pub fn days(start_day: i64, end_day: i64) -> Self {
        Self::new(Timestamp::from_days(start_day), Timestamp::from_days(end_day))
    }

    /// The inclusive start.
    pub fn start(self) -> Timestamp {
        self.start
    }

    /// The inclusive end.
    pub fn end(self) -> Timestamp {
        self.end
    }

    /// Length in seconds (`end - start`).
    pub fn duration(self) -> i64 {
        self.end - self.start
    }

    /// Whether `t` lies within `[start, end]`.
    pub fn contains(self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether `other ⊆ self` (both endpoints inside).
    pub fn contains_interval(self, other: TimeInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two closed intervals share at least one instant.
    pub fn intersects(self, other: TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The intersection of the two intervals, if non-empty.
    pub fn intersection(self, other: TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(TimeInterval { start, end })
    }

    /// The smallest interval covering both inputs.
    pub fn hull(self, other: TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_units() {
        assert_eq!(Timestamp::from_days(2).seconds(), 172_800);
        assert_eq!(Timestamp::from_hours(3).seconds(), 10_800);
        assert_eq!(Timestamp::from_days(5).days(), 5);
        assert_eq!(Timestamp(86_401).days(), 1);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_days(1);
        assert_eq!(t + 60, Timestamp(86_460));
        assert_eq!(t - 60, Timestamp(86_340));
        assert_eq!(Timestamp::from_days(3) - Timestamp::from_days(1), 2 * Timestamp::DAY);
    }

    #[test]
    fn timestamp_min_max() {
        let a = Timestamp(5);
        let b = Timestamp(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(a), a);
    }

    #[test]
    fn interval_contains_point() {
        let iv = TimeInterval::days(1, 3);
        assert!(iv.contains(Timestamp::from_days(1)));
        assert!(iv.contains(Timestamp::from_days(2)));
        assert!(iv.contains(Timestamp::from_days(3)));
        assert!(!iv.contains(Timestamp::from_days(3) + 1));
        assert!(!iv.contains(Timestamp::from_days(1) - 1));
    }

    #[test]
    fn interval_containment() {
        let outer = TimeInterval::days(0, 10);
        let inner = TimeInterval::days(2, 5);
        assert!(outer.contains_interval(inner));
        assert!(!inner.contains_interval(outer));
        assert!(outer.contains_interval(outer));
        // Partial overlap is not containment.
        let overlap = TimeInterval::days(5, 15);
        assert!(!outer.contains_interval(overlap));
    }

    #[test]
    fn interval_intersection() {
        let a = TimeInterval::days(0, 5);
        let b = TimeInterval::days(3, 8);
        assert!(a.intersects(b));
        assert_eq!(a.intersection(b), Some(TimeInterval::days(3, 5)));
        let c = TimeInterval::days(6, 7);
        assert!(!a.intersects(c));
        assert_eq!(a.intersection(c), None);
        // Touching endpoints count as intersecting (closed intervals).
        let d = TimeInterval::days(5, 9);
        assert!(a.intersects(d));
        assert_eq!(a.intersection(d), Some(TimeInterval::days(5, 5)));
    }

    #[test]
    fn interval_hull() {
        let a = TimeInterval::days(0, 2);
        let b = TimeInterval::days(5, 7);
        assert_eq!(a.hull(b), TimeInterval::days(0, 7));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn interval_rejects_reversed_bounds() {
        let _ = TimeInterval::days(3, 1);
    }

    #[test]
    fn interval_duration() {
        assert_eq!(TimeInterval::days(1, 4).duration(), 3 * Timestamp::DAY);
        assert_eq!(TimeInterval::days(2, 2).duration(), 0);
    }
}
