//! Discretisation of the time axis into epochs.

use crate::time::{TimeInterval, Timestamp};

/// One epoch: a half-open slice `[start, end)` of the time axis, with its
/// position `index` in the grid.
///
/// The paper's TIA records store the epoch as a closed pair `⟨ts, te⟩`; we
/// keep grids half-open internally so adjacent epochs never overlap, and
/// treat the record's `te` as `end` when checking containment in a query
/// interval (a record is counted iff `[start, end] ⊆ Iq` with `end` being the
/// epoch's upper boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch {
    /// Position of this epoch in its [`EpochGrid`] (0-based).
    pub index: usize,
    /// Inclusive start of the epoch.
    pub start: Timestamp,
    /// Exclusive end of the epoch.
    pub end: Timestamp,
}

impl Epoch {
    /// The epoch as a closed interval `[start, end]` (the form stored in TIA
    /// records and compared against query intervals).
    pub fn interval(self) -> TimeInterval {
        TimeInterval::new(self.start, self.end)
    }

    /// Length of the epoch in seconds.
    pub fn duration(self) -> i64 {
        self.end - self.start
    }
}

/// The discretisation of `[t0, tc]` into `m` consecutive epochs.
///
/// Supports the two regimes the paper mentions (Section 3.1): equi-length
/// epochs ("a second, an hour, seven days") and varied lengths ("one hour,
/// two hours, four hours, eight hours and so on").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochGrid {
    /// Epoch boundaries: `boundaries[i]..boundaries[i+1]` is epoch `i`.
    /// Always strictly increasing, with `boundaries[0] == t0`.
    boundaries: Vec<Timestamp>,
}

impl EpochGrid {
    /// A grid of `count` equi-length epochs of `epoch_seconds` seconds each,
    /// starting at `t0 = Timestamp::ZERO`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `epoch_seconds <= 0`.
    pub fn fixed(epoch_seconds: i64, count: usize) -> Self {
        assert!(count > 0, "EpochGrid needs at least one epoch");
        assert!(epoch_seconds > 0, "epoch length must be positive");
        let boundaries = (0..=count as i64)
            .map(|i| Timestamp(i * epoch_seconds))
            .collect();
        EpochGrid { boundaries }
    }

    /// A grid of `count` epochs of `days`-day length each.
    pub fn fixed_days(days: i64, count: usize) -> Self {
        Self::fixed(days * Timestamp::DAY, count)
    }

    /// A grid with explicit epoch boundaries (varied-length epochs).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two boundaries are given or they are not strictly
    /// increasing.
    pub fn varied(boundaries: Vec<Timestamp>) -> Self {
        assert!(
            boundaries.len() >= 2,
            "EpochGrid needs at least two boundaries"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "EpochGrid boundaries must be strictly increasing"
        );
        EpochGrid { boundaries }
    }

    /// A grid of `count` epochs whose lengths double each time, starting from
    /// `first_seconds` (the "one hour, two hours, four hours, …" example in
    /// the paper).
    pub fn exponential(first_seconds: i64, count: usize) -> Self {
        assert!(count > 0 && first_seconds > 0);
        let mut boundaries = Vec::with_capacity(count + 1);
        let mut t = 0i64;
        boundaries.push(Timestamp(t));
        let mut len = first_seconds;
        for _ in 0..count {
            t += len;
            boundaries.push(Timestamp(t));
            len = len.saturating_mul(2);
        }
        EpochGrid { boundaries }
    }

    /// Number of epochs `m` in the grid.
    pub fn len(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Whether the grid has no epochs (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The application start `t0` (first boundary).
    pub fn t0(&self) -> Timestamp {
        self.boundaries[0]
    }

    /// The grid end `tc` (last boundary).
    pub fn tc(&self) -> Timestamp {
        *self.boundaries.last().expect("grid has boundaries")
    }

    /// The epoch at position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn epoch(&self, index: usize) -> Epoch {
        assert!(index < self.len(), "epoch index {index} out of range");
        Epoch {
            index,
            start: self.boundaries[index],
            end: self.boundaries[index + 1],
        }
    }

    /// The epoch containing instant `t`, or `None` if `t` is outside
    /// `[t0, tc)`.
    ///
    /// Binary search over the boundaries: `O(log m)`.
    pub fn epoch_of(&self, t: Timestamp) -> Option<Epoch> {
        if t < self.t0() || t >= self.tc() {
            return None;
        }
        // partition_point returns the first boundary > t; epoch index is one
        // less than that boundary position.
        let idx = self.boundaries.partition_point(|&b| b <= t) - 1;
        Some(self.epoch(idx))
    }

    /// Indices of the epochs *fully contained* in `iq` — exactly the records
    /// a TIA returns for a query interval (Section 4.3: "the TIA returns the
    /// records whose time interval `[ts, te]` is contained in `Iq`").
    ///
    /// Returns an inclusive index range, empty when no epoch fits.
    pub fn epochs_within(&self, iq: TimeInterval) -> std::ops::Range<usize> {
        // First epoch with start >= iq.start:
        let first = self.boundaries.partition_point(|&b| b < iq.start());
        // Last boundary <= iq.end bounds the last fully-contained epoch.
        let last_boundary = self.boundaries.partition_point(|&b| b <= iq.end());
        if last_boundary == 0 || first >= last_boundary {
            return 0..0;
        }
        let end = (last_boundary - 1).min(self.len());
        if first >= end {
            0..0
        } else {
            first..end
        }
    }

    /// Iterator over all epochs in order.
    pub fn iter(&self) -> impl Iterator<Item = Epoch> + '_ {
        (0..self.len()).map(move |i| self.epoch(i))
    }
}

/// A point on an ingestion tier's seal timeline: how many epochs have been
/// sealed (the open epoch's index, capped at the grid length) plus a
/// monotonic seal sequence number that also advances for seals which do not
/// move the open epoch (e.g. draining late arrivals once the grid is
/// exhausted).
///
/// Watermarks are totally ordered by `(seq, open_epoch)` — a snapshot taken
/// later can never compare below an earlier one, which is what lets a
/// differential oracle replay "the state as of watermark w" deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpochWatermark {
    /// Monotonic seal counter: incremented by every seal operation.
    pub seq: u64,
    /// Index of the currently open epoch; equals the grid length once every
    /// epoch has been sealed.
    pub open_epoch: usize,
}

impl EpochWatermark {
    /// The watermark of a tier that has sealed nothing yet and is accepting
    /// events for `open_epoch`.
    pub fn initial(open_epoch: usize) -> Self {
        EpochWatermark { seq: 0, open_epoch }
    }

    /// The watermark after one more seal, which advanced the open epoch to
    /// `open_epoch`.
    pub fn sealed(self, open_epoch: usize) -> Self {
        debug_assert!(open_epoch >= self.open_epoch, "open epoch never retreats");
        EpochWatermark {
            seq: self.seq + 1,
            open_epoch,
        }
    }
}

impl std::fmt::Display for EpochWatermark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seal#{}@epoch{}", self.seq, self.open_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_grid_shape() {
        let g = EpochGrid::fixed_days(7, 10);
        assert_eq!(g.len(), 10);
        assert_eq!(g.t0(), Timestamp::ZERO);
        assert_eq!(g.tc(), Timestamp::from_days(70));
        let e3 = g.epoch(3);
        assert_eq!(e3.start, Timestamp::from_days(21));
        assert_eq!(e3.end, Timestamp::from_days(28));
        assert_eq!(e3.duration(), 7 * Timestamp::DAY);
    }

    #[test]
    fn epoch_of_lookup() {
        let g = EpochGrid::fixed_days(7, 4);
        assert_eq!(g.epoch_of(Timestamp::ZERO).unwrap().index, 0);
        assert_eq!(g.epoch_of(Timestamp::from_days(6)).unwrap().index, 0);
        assert_eq!(g.epoch_of(Timestamp::from_days(7)).unwrap().index, 1);
        assert_eq!(g.epoch_of(Timestamp::from_days(27)).unwrap().index, 3);
        assert!(g.epoch_of(Timestamp::from_days(28)).is_none());
        assert!(g.epoch_of(Timestamp(-1)).is_none());
    }

    #[test]
    fn epochs_within_interval() {
        let g = EpochGrid::fixed_days(7, 10); // epochs [0,7),[7,14),...
        // Interval exactly covering epochs 1..=2.
        let r = g.epochs_within(TimeInterval::days(7, 21));
        assert_eq!(r, 1..3);
        // Interval not aligned: [8, 21] contains only epoch 2 fully... epoch 1
        // is [7,14) so [7,14] ⊄ [8,21]; epoch 2 is [14,21].
        let r = g.epochs_within(TimeInterval::days(8, 21));
        assert_eq!(r, 2..3);
        // Interval smaller than one epoch → none contained.
        let r = g.epochs_within(TimeInterval::days(8, 12));
        assert!(r.is_empty());
        // Whole axis.
        let r = g.epochs_within(TimeInterval::days(0, 70));
        assert_eq!(r, 0..10);
        // Past the end.
        let r = g.epochs_within(TimeInterval::days(63, 200));
        assert_eq!(r, 9..10);
    }

    #[test]
    fn varied_grid() {
        let g = EpochGrid::varied(vec![
            Timestamp(0),
            Timestamp(10),
            Timestamp(30),
            Timestamp(70),
        ]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.epoch(1).duration(), 20);
        assert_eq!(g.epoch_of(Timestamp(29)).unwrap().index, 1);
        let r = g.epochs_within(TimeInterval::new(Timestamp(10), Timestamp(70)));
        assert_eq!(r, 1..3);
    }

    #[test]
    fn exponential_grid_doubles() {
        let g = EpochGrid::exponential(Timestamp::HOUR, 4);
        let lens: Vec<i64> = g.iter().map(|e| e.duration()).collect();
        assert_eq!(
            lens,
            vec![
                Timestamp::HOUR,
                2 * Timestamp::HOUR,
                4 * Timestamp::HOUR,
                8 * Timestamp::HOUR
            ]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn varied_rejects_unsorted() {
        let _ = EpochGrid::varied(vec![Timestamp(0), Timestamp(5), Timestamp(5)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn epoch_index_bounds_checked() {
        let g = EpochGrid::fixed_days(1, 2);
        let _ = g.epoch(2);
    }

    #[test]
    fn watermarks_are_monotonic() {
        let w0 = EpochWatermark::initial(0);
        let w1 = w0.sealed(1);
        let w2 = w1.sealed(1); // a seal that drains without advancing
        let w3 = w2.sealed(3);
        assert!(w0 < w1 && w1 < w2 && w2 < w3);
        assert_eq!(w1.open_epoch, 1);
        assert_eq!(w2, EpochWatermark { seq: 2, open_epoch: 1 });
        assert_eq!(format!("{w3}"), "seal#3@epoch3");
    }

    #[test]
    fn iter_covers_grid() {
        let g = EpochGrid::fixed_days(7, 5);
        let epochs: Vec<Epoch> = g.iter().collect();
        assert_eq!(epochs.len(), 5);
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(e.index, i);
        }
        // Adjacent epochs tile the axis without gaps.
        for w in epochs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
