//! Per-epoch aggregates and the sparse series stored in TIAs.

use crate::checkin::CheckIn;
use crate::epoch::EpochGrid;
use crate::time::{TimeInterval, Timestamp};

/// Which temporal aggregate is computed over the check-ins of an epoch.
///
/// The paper focuses on `Count` ("the aggregate that counts the number of
/// check-ins at a POI") and notes the methods "easily extend to other
/// aggregates"; this enum implements that extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggregateKind {
    /// Number of check-ins in the epoch.
    #[default]
    Count,
    /// Sum of the check-in attribute values.
    Sum,
    /// Maximum attribute value.
    Max,
    /// Minimum attribute value.
    Min,
    /// `Sum / Count` (integer division; 0 for empty epochs).
    Average,
}

/// One TIA record `⟨ts, te, agg⟩`: the aggregate value `agg` over the epoch
/// `[ts, te]` (Section 4.1 of the paper). Only non-zero aggregates are ever
/// materialised as records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochRecord {
    /// Epoch start.
    pub ts: Timestamp,
    /// Epoch end (upper boundary of the epoch).
    pub te: Timestamp,
    /// Aggregate value during the epoch (non-zero).
    pub agg: u64,
}

/// A sparse per-epoch aggregate vector: sorted `(epoch index, value)` pairs
/// with only non-zero values stored.
///
/// This is the in-memory form of a TIA's content, and the unit the entry
/// grouping strategies compare (Manhattan distance, Section 5.1) and
/// summarise (`λ̂p`, Section 5.2).
///
/// ```
/// use tempora::{AggregateSeries, EpochGrid, TimeInterval};
///
/// let grid = EpochGrid::fixed_days(7, 4);
/// let series = AggregateSeries::from_pairs([(0, 3), (2, 5)]);
/// // Epochs 0..2 are fully inside [0, 21] days; epoch 3 is not populated.
/// assert_eq!(series.aggregate_over(&grid, TimeInterval::days(0, 21)), 8);
/// assert_eq!(series.total(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AggregateSeries {
    /// Sorted by epoch index; values are always non-zero.
    entries: Vec<(u32, u64)>,
}

impl AggregateSeries {
    /// An empty series (all epochs zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a series from `(epoch index, value)` pairs.
    ///
    /// Pairs may arrive unsorted; zero values are dropped; duplicate epoch
    /// indices are summed.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u64)>) -> Self {
        let mut entries: Vec<(u32, u64)> = pairs.into_iter().filter(|&(_, v)| v != 0).collect();
        entries.sort_unstable_by_key(|&(e, _)| e);
        entries.dedup_by(|next, prev| {
            if next.0 == prev.0 {
                prev.1 += next.1;
                true
            } else {
                false
            }
        });
        AggregateSeries { entries }
    }

    /// The value at `epoch` (0 when absent).
    pub fn get(&self, epoch: u32) -> u64 {
        match self.entries.binary_search_by_key(&epoch, |&(e, _)| e) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Sets the value at `epoch` (removing the record if `value == 0`).
    pub fn set(&mut self, epoch: u32, value: u64) {
        match self.entries.binary_search_by_key(&epoch, |&(e, _)| e) {
            Ok(i) => {
                if value == 0 {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = value;
                }
            }
            Err(i) => {
                if value != 0 {
                    self.entries.insert(i, (epoch, value));
                }
            }
        }
    }

    /// Adds `delta` to the value at `epoch`.
    pub fn add(&mut self, epoch: u32, delta: u64) {
        if delta == 0 {
            return;
        }
        match self.entries.binary_search_by_key(&epoch, |&(e, _)| e) {
            Ok(i) => self.entries[i].1 += delta,
            Err(i) => self.entries.insert(i, (epoch, delta)),
        }
    }

    /// Raises the value at `epoch` to at least `value` (per-epoch max
    /// maintenance for internal-entry TIAs).
    pub fn raise_to(&mut self, epoch: u32, value: u64) {
        if value == 0 {
            return;
        }
        match self.entries.binary_search_by_key(&epoch, |&(e, _)| e) {
            Ok(i) => self.entries[i].1 = self.entries[i].1.max(value),
            Err(i) => self.entries.insert(i, (epoch, value)),
        }
    }

    /// Number of non-zero epochs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether every epoch is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(epoch index, value)` pairs in epoch order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sum of the values over epoch indices in `range`.
    pub fn sum_range(&self, range: std::ops::Range<usize>) -> u64 {
        if range.is_empty() {
            return 0;
        }
        let lo = self
            .entries
            .partition_point(|&(e, _)| (e as usize) < range.start);
        let hi = self
            .entries
            .partition_point(|&(e, _)| (e as usize) < range.end);
        self.entries[lo..hi].iter().map(|&(_, v)| v).sum()
    }

    /// [`AggregateSeries::sum_range`] also reporting how many stored epoch
    /// records the sum scanned (the instrumentation currency of the
    /// observability layer). The sum is computed by the exact same code
    /// path, so it is bit-identical to `sum_range`.
    pub fn sum_range_counted(&self, range: std::ops::Range<usize>) -> (u64, u64) {
        if range.is_empty() {
            return (0, 0);
        }
        let lo = self
            .entries
            .partition_point(|&(e, _)| (e as usize) < range.start);
        let hi = self
            .entries
            .partition_point(|&(e, _)| (e as usize) < range.end);
        (
            self.entries[lo..hi].iter().map(|&(_, v)| v).sum(),
            (hi - lo) as u64,
        )
    }

    /// The temporal aggregate `g(p, Iq)` before normalisation: the sum of the
    /// records whose epoch `[ts, te] ⊆ iq` (Section 4.3).
    pub fn aggregate_over(&self, grid: &EpochGrid, iq: TimeInterval) -> u64 {
        self.sum_range(grid.epochs_within(iq))
    }

    /// [`AggregateSeries::aggregate_over`] also reporting the number of
    /// stored epoch records scanned.
    pub fn aggregate_over_counted(&self, grid: &EpochGrid, iq: TimeInterval) -> (u64, u64) {
        self.sum_range_counted(grid.epochs_within(iq))
    }

    /// Total over all epochs (`Σ vi`).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// `λ̂p = (1/m) Σ vi` — the mean per-epoch aggregate used as the third
    /// grouping dimension (Section 5.2).
    pub fn mean_rate(&self, m: usize) -> f64 {
        if m == 0 {
            0.0
        } else {
            self.total() as f64 / m as f64
        }
    }

    /// Merges `other` into `self`, keeping the per-epoch **max** — how an
    /// internal entry's TIA summarises its child TIAs (Section 4.1).
    pub fn merge_max(&mut self, other: &AggregateSeries) {
        if other.entries.is_empty() {
            return;
        }
        if self.entries.is_empty() {
            self.entries = other.entries.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (ea, va) = self.entries[i];
            let (eb, vb) = other.entries[j];
            match ea.cmp(&eb) {
                std::cmp::Ordering::Less => {
                    merged.push((ea, va));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((eb, vb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ea, va.max(vb)));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
    }

    /// The per-epoch max of a set of series.
    pub fn max_of<'a>(series: impl IntoIterator<Item = &'a AggregateSeries>) -> AggregateSeries {
        let mut out = AggregateSeries::new();
        for s in series {
            out.merge_max(s);
        }
        out
    }

    /// Manhattan distance `Σ |ai − bi|` between two aggregate distributions
    /// (the similarity measure of the IND-agg grouping strategy,
    /// Section 5.1).
    pub fn manhattan_distance(&self, other: &AggregateSeries) -> u64 {
        let mut dist = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (ea, va) = self.entries[i];
            let (eb, vb) = other.entries[j];
            match ea.cmp(&eb) {
                std::cmp::Ordering::Less => {
                    dist += va;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    dist += vb;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    dist += va.abs_diff(vb);
                    i += 1;
                    j += 1;
                }
            }
        }
        dist += self.entries[i..].iter().map(|&(_, v)| v).sum::<u64>();
        dist += other.entries[j..].iter().map(|&(_, v)| v).sum::<u64>();
        dist
    }

    /// The series as explicit `⟨ts, te, agg⟩` records under `grid`.
    pub fn records(&self, grid: &EpochGrid) -> Vec<EpochRecord> {
        self.entries
            .iter()
            .map(|&(e, v)| {
                let ep = grid.epoch(e as usize);
                EpochRecord {
                    ts: ep.start,
                    te: ep.end,
                    agg: v,
                }
            })
            .collect()
    }
}

impl FromIterator<(u32, u64)> for AggregateSeries {
    fn from_iter<T: IntoIterator<Item = (u32, u64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

/// Cumulative per-epoch partial sums of an [`AggregateSeries`].
///
/// Built once per series ([`AggregateSeries::prefix_sums`]), it answers the
/// temporal aggregate over *any* epoch range in `O(log s)` (two binary
/// searches and a subtraction) instead of the `O(log s + s)` slice sum of
/// [`AggregateSeries::sum_range`] — the substrate of the collective batch
/// scheme's shared TIA aggregate memoisation, where many overlapping query
/// intervals probe the same entry.
///
/// Sums are exact: values are `u64` and the cumulative total of a series
/// cannot overflow in practice (it would require 2⁶⁴ check-ins).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrefixSums {
    /// `(epoch, cumulative sum of all values at epochs ≤ epoch)`, sorted by
    /// epoch; one record per non-zero epoch of the source series.
    entries: Vec<(u32, u64)>,
}

impl PrefixSums {
    /// Cumulative sum over all epochs strictly before `epoch`.
    fn cum_before(&self, epoch: usize) -> u64 {
        let i = self
            .entries
            .partition_point(|&(e, _)| (e as usize) < epoch);
        if i == 0 {
            0
        } else {
            self.entries[i - 1].1
        }
    }

    /// Sum of the source series over epoch indices in `range` — equal to
    /// [`AggregateSeries::sum_range`] on the series this was built from.
    pub fn sum_range(&self, range: std::ops::Range<usize>) -> u64 {
        if range.start >= range.end {
            return 0;
        }
        self.cum_before(range.end) - self.cum_before(range.start)
    }

    /// The temporal aggregate `g(p, Iq)`: sum of the records whose epoch
    /// `[ts, te] ⊆ iq` — equal to [`AggregateSeries::aggregate_over`].
    pub fn aggregate_over(&self, grid: &EpochGrid, iq: TimeInterval) -> u64 {
        self.sum_range(grid.epochs_within(iq))
    }

    /// Total over all epochs.
    pub fn total(&self) -> u64 {
        self.entries.last().map_or(0, |&(_, c)| c)
    }

    /// Number of non-zero epochs in the source series.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the source series was all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl AggregateSeries {
    /// The series' cumulative partial sums (see [`PrefixSums`]).
    pub fn prefix_sums(&self) -> PrefixSums {
        let mut cum = 0u64;
        PrefixSums {
            entries: self
                .entries
                .iter()
                .map(|&(e, v)| {
                    cum += v;
                    (e, cum)
                })
                .collect(),
        }
    }
}

/// Aggregates a raw check-in stream into one [`AggregateSeries`] per POI.
///
/// Check-ins outside the grid are ignored. `num_pois` sizes the output; a
/// check-in with `poi.index() >= num_pois` panics (it indicates a corrupt
/// stream).
pub fn aggregate_checkins(
    checkins: &[CheckIn],
    grid: &EpochGrid,
    kind: AggregateKind,
    num_pois: usize,
) -> Vec<AggregateSeries> {
    // Dense (poi, epoch) accumulation would be O(N·m) memory; check-in
    // streams are sparse, so accumulate per-POI sparse maps instead.
    let mut sums: Vec<Vec<(u32, u64)>> = vec![Vec::new(); num_pois];
    let mut counts: Vec<Vec<(u32, u64)>> = if kind == AggregateKind::Average {
        vec![Vec::new(); num_pois]
    } else {
        Vec::new()
    };

    let bump = |acc: &mut Vec<(u32, u64)>, epoch: u32, v: u64, kind: AggregateKind| match acc
        .binary_search_by_key(&epoch, |&(e, _)| e)
    {
        Ok(i) => {
            let cur = &mut acc[i].1;
            match kind {
                AggregateKind::Count | AggregateKind::Sum | AggregateKind::Average => *cur += v,
                AggregateKind::Max => *cur = (*cur).max(v),
                AggregateKind::Min => *cur = (*cur).min(v),
            }
        }
        Err(i) => acc.insert(i, (epoch, v)),
    };

    for c in checkins {
        let Some(epoch) = grid.epoch_of(c.time) else {
            continue;
        };
        let e = epoch.index as u32;
        let idx = c.poi.index();
        assert!(idx < num_pois, "check-in references POI {idx} >= {num_pois}");
        let v = match kind {
            AggregateKind::Count => 1,
            _ => c.value as u64,
        };
        bump(&mut sums[idx], e, v, kind);
        if kind == AggregateKind::Average {
            bump(&mut counts[idx], e, 1, AggregateKind::Count);
        }
    }

    sums.into_iter()
        .enumerate()
        .map(|(p, s)| {
            if kind == AggregateKind::Average {
                AggregateSeries::from_pairs(s.into_iter().zip(counts[p].iter()).map(
                    |((e, sum), &(ec, count))| {
                        debug_assert_eq!(e, ec);
                        (e, sum.checked_div(count).unwrap_or(0))
                    },
                ))
            } else {
                AggregateSeries::from_pairs(s)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::PoiId;

    fn series(pairs: &[(u32, u64)]) -> AggregateSeries {
        AggregateSeries::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn from_pairs_sorts_dedups_drops_zeros() {
        let s = AggregateSeries::from_pairs([(3, 2), (1, 5), (3, 1), (4, 0)]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(1, 5), (3, 3)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn get_set_add() {
        let mut s = series(&[(1, 5)]);
        assert_eq!(s.get(1), 5);
        assert_eq!(s.get(2), 0);
        s.add(2, 3);
        s.add(1, 1);
        assert_eq!(s.get(1), 6);
        assert_eq!(s.get(2), 3);
        s.set(1, 0);
        assert_eq!(s.get(1), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn raise_to_is_max() {
        let mut s = series(&[(1, 5)]);
        s.raise_to(1, 3);
        assert_eq!(s.get(1), 5);
        s.raise_to(1, 9);
        assert_eq!(s.get(1), 9);
        s.raise_to(4, 2);
        assert_eq!(s.get(4), 2);
        s.raise_to(5, 0);
        assert_eq!(s.get(5), 0);
    }

    #[test]
    fn sum_range_and_total() {
        let s = series(&[(0, 1), (2, 2), (5, 4), (9, 8)]);
        assert_eq!(s.total(), 15);
        assert_eq!(s.sum_range(0..3), 3);
        assert_eq!(s.sum_range(2..6), 6);
        assert_eq!(s.sum_range(6..9), 0);
        assert_eq!(s.sum_range(3..3), 0);
    }

    #[test]
    fn counted_variants_match_uncounted() {
        let grid = EpochGrid::fixed_days(7, 10);
        let s = series(&[(0, 1), (2, 2), (5, 4), (9, 8)]);
        for range in [0..3, 2..6, 6..9, 3..3, 0..10] {
            let (sum, n) = s.sum_range_counted(range.clone());
            assert_eq!(sum, s.sum_range(range.clone()));
            let expect = s
                .iter()
                .filter(|&(e, _)| range.contains(&(e as usize)))
                .count() as u64;
            assert_eq!(n, expect, "range {range:?}");
        }
        let iq = TimeInterval::days(0, 70);
        let (sum, n) = s.aggregate_over_counted(&grid, iq);
        assert_eq!(sum, s.aggregate_over(&grid, iq));
        assert_eq!(n, 4);
    }

    #[test]
    fn aggregate_over_uses_containment() {
        let grid = EpochGrid::fixed_days(7, 5); // epochs [0,7),[7,14),[14,21),[21,28),[28,35)
        let s = series(&[(0, 1), (1, 2), (2, 4), (3, 8), (4, 16)]);
        // [7, 28] fully contains epochs 1,2,3.
        assert_eq!(s.aggregate_over(&grid, TimeInterval::days(7, 28)), 14);
        // [8, 28] excludes epoch 1 (not fully contained).
        assert_eq!(s.aggregate_over(&grid, TimeInterval::days(8, 28)), 12);
        // Entire axis.
        assert_eq!(s.aggregate_over(&grid, TimeInterval::days(0, 35)), 31);
    }

    #[test]
    fn paper_example_aggregates() {
        // Table 1 of the paper: POI f has 3, 5, 4 over three epochs; its
        // aggregate over [t0, tc] is 12.
        let grid = EpochGrid::fixed_days(1, 3);
        let f = series(&[(0, 3), (1, 5), (2, 4)]);
        assert_eq!(f.aggregate_over(&grid, TimeInterval::days(0, 3)), 12);
        // POI e: 1, 1, 0 → aggregate 2.
        let e = series(&[(0, 1), (1, 1)]);
        assert_eq!(e.aggregate_over(&grid, TimeInterval::days(0, 3)), 2);
    }

    #[test]
    fn merge_max_matches_paper_example() {
        // Section 4.1: children {⟨t0,t1,2⟩,⟨t1,t2,2⟩,⟨t2,*,2⟩} and
        // {⟨t0,t1,2⟩,⟨t1,t2,3⟩,⟨t2,*,1⟩} merge to {2, 3, 2}.
        let mut a = series(&[(0, 2), (1, 2), (2, 2)]);
        let b = series(&[(0, 2), (1, 3), (2, 1)]);
        a.merge_max(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 2), (1, 3), (2, 2)]);
    }

    #[test]
    fn merge_max_disjoint_epochs() {
        let mut a = series(&[(0, 1), (4, 3)]);
        let b = series(&[(2, 7)]);
        a.merge_max(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 1), (2, 7), (4, 3)]);
    }

    #[test]
    fn max_of_many() {
        let m = AggregateSeries::max_of([
            &series(&[(0, 1), (1, 5)]),
            &series(&[(0, 3)]),
            &series(&[(2, 2)]),
        ]);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(0, 3), (1, 5), (2, 2)]);
    }

    #[test]
    fn manhattan_matches_paper_example() {
        // Section 5.1 example (Table 1): dist(c, g) = 0+1+1 = 2 and
        // dist(c, l) = 1+2+1 = 4.
        let c = series(&[(0, 2), (1, 2), (2, 2)]);
        let g = series(&[(0, 2), (1, 3), (2, 1)]);
        let l = series(&[(0, 1), (2, 1)]);
        assert_eq!(c.manhattan_distance(&g), 2);
        assert_eq!(c.manhattan_distance(&l), 4);
        assert_eq!(g.manhattan_distance(&c), 2);
        assert_eq!(c.manhattan_distance(&c), 0);
    }

    #[test]
    fn mean_rate() {
        let s = series(&[(0, 3), (1, 5), (2, 4)]);
        assert!((s.mean_rate(3) - 4.0).abs() < 1e-12);
        assert_eq!(series(&[]).mean_rate(0), 0.0);
    }

    #[test]
    fn records_roundtrip() {
        let grid = EpochGrid::fixed_days(7, 3);
        let s = series(&[(0, 3), (2, 4)]);
        let recs = s.records(&grid);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, Timestamp::ZERO);
        assert_eq!(recs[0].te, Timestamp::from_days(7));
        assert_eq!(recs[0].agg, 3);
        assert_eq!(recs[1].ts, Timestamp::from_days(14));
        assert_eq!(recs[1].agg, 4);
    }

    #[test]
    fn aggregate_checkins_count() {
        let grid = EpochGrid::fixed_days(1, 3);
        let cs = vec![
            CheckIn::at(PoiId(0), Timestamp::from_hours(1)),
            CheckIn::at(PoiId(0), Timestamp::from_hours(2)),
            CheckIn::at(PoiId(1), Timestamp::from_days(1)),
            CheckIn::at(PoiId(0), Timestamp::from_days(2)),
            // outside the grid: dropped
            CheckIn::at(PoiId(1), Timestamp::from_days(5)),
        ];
        let agg = aggregate_checkins(&cs, &grid, AggregateKind::Count, 2);
        assert_eq!(agg[0].iter().collect::<Vec<_>>(), vec![(0, 2), (2, 1)]);
        assert_eq!(agg[1].iter().collect::<Vec<_>>(), vec![(1, 1)]);
    }

    #[test]
    fn aggregate_checkins_sum_max_min_avg() {
        let grid = EpochGrid::fixed_days(1, 2);
        let cs = vec![
            CheckIn::with_value(PoiId(0), Timestamp::from_hours(1), 4),
            CheckIn::with_value(PoiId(0), Timestamp::from_hours(2), 10),
            CheckIn::with_value(PoiId(0), Timestamp::from_days(1), 6),
        ];
        let sum = aggregate_checkins(&cs, &grid, AggregateKind::Sum, 1);
        assert_eq!(sum[0].get(0), 14);
        assert_eq!(sum[0].get(1), 6);
        let max = aggregate_checkins(&cs, &grid, AggregateKind::Max, 1);
        assert_eq!(max[0].get(0), 10);
        let min = aggregate_checkins(&cs, &grid, AggregateKind::Min, 1);
        assert_eq!(min[0].get(0), 4);
        let avg = aggregate_checkins(&cs, &grid, AggregateKind::Average, 1);
        assert_eq!(avg[0].get(0), 7);
        assert_eq!(avg[0].get(1), 6);
    }

    #[test]
    fn prefix_sums_match_sum_range() {
        let s = series(&[(0, 1), (2, 2), (5, 4), (9, 8)]);
        let p = s.prefix_sums();
        assert_eq!(p.total(), 15);
        assert_eq!(p.len(), 4);
        for lo in 0..12 {
            for hi in 0..12 {
                assert_eq!(p.sum_range(lo..hi), s.sum_range(lo..hi), "{lo}..{hi}");
            }
        }
        let empty = AggregateSeries::new().prefix_sums();
        assert!(empty.is_empty());
        assert_eq!(empty.sum_range(0..100), 0);
    }

    #[test]
    fn prefix_sums_aggregate_over_matches_series() {
        let grid = EpochGrid::fixed_days(7, 10);
        let s = series(&[(0, 3), (3, 1), (4, 7), (9, 2)]);
        let p = s.prefix_sums();
        for (a, b) in [(0, 70), (7, 28), (8, 28), (21, 35), (63, 200), (5, 6)] {
            let iq = TimeInterval::days(a, b);
            assert_eq!(p.aggregate_over(&grid, iq), s.aggregate_over(&grid, iq));
        }
    }

    #[test]
    fn manhattan_symmetry_smoke() {
        let a = series(&[(0, 4), (3, 1), (7, 9)]);
        let b = series(&[(1, 2), (3, 5)]);
        assert_eq!(a.manhattan_distance(&b), b.manhattan_distance(&a));
        // triangle inequality against a third
        let c = series(&[(0, 1)]);
        assert!(a.manhattan_distance(&b) <= a.manhattan_distance(&c) + c.manhattan_distance(&b));
    }
}
