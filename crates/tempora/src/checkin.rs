//! Raw check-in events.

use crate::time::Timestamp;

/// Identifier of a point of interest (POI).
///
/// Dense indices (0-based) into the dataset's POI table; cheap to copy and
/// hash, and usable directly as a `Vec` index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct PoiId(pub u32);

impl PoiId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for PoiId {
    fn from(v: u32) -> Self {
        PoiId(v)
    }
}

impl std::fmt::Display for PoiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "poi#{}", self.0)
    }
}

/// One check-in event: a user visited / liked / photographed `poi` at `time`.
///
/// The check-in *attribute value* defaults to 1 (the paper focuses on the
/// count aggregate) but carries an explicit `value` so sum / max / min /
/// average aggregates work on the same stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckIn {
    /// The POI checked into.
    pub poi: PoiId,
    /// When the check-in happened.
    pub time: Timestamp,
    /// The aggregated attribute value (1 for plain counting).
    pub value: u32,
}

impl CheckIn {
    /// A plain counting check-in (`value == 1`).
    pub fn at(poi: PoiId, time: Timestamp) -> Self {
        CheckIn { poi, time, value: 1 }
    }

    /// A check-in carrying an attribute value (for sum/max/min/avg).
    pub fn with_value(poi: PoiId, time: Timestamp, value: u32) -> Self {
        CheckIn { poi, time, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poi_id_roundtrip() {
        let id = PoiId::from(42u32);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "poi#42");
    }

    #[test]
    fn checkin_constructors() {
        let c = CheckIn::at(PoiId(1), Timestamp::from_days(2));
        assert_eq!(c.value, 1);
        let c = CheckIn::with_value(PoiId(1), Timestamp::from_days(2), 7);
        assert_eq!(c.value, 7);
    }
}
