//! Property-based tests for the temporal substrate.

use proptest::prelude::*;
use tempora::{aggregate_checkins, AggregateKind, AggregateSeries, CheckIn, EpochGrid, PoiId, TimeInterval, Timestamp};

fn arb_series() -> impl Strategy<Value = AggregateSeries> {
    proptest::collection::vec((0u32..64, 0u64..1000), 0..40).prop_map(AggregateSeries::from_pairs)
}

proptest! {
    /// `from_pairs` output is sorted by epoch with no zero values.
    #[test]
    fn series_invariants(s in arb_series()) {
        let entries: Vec<_> = s.iter().collect();
        prop_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert!(entries.iter().all(|&(_, v)| v > 0));
    }

    /// Manhattan distance is a metric: symmetric, zero iff equal, triangle.
    #[test]
    fn manhattan_is_metric(a in arb_series(), b in arb_series(), c in arb_series()) {
        prop_assert_eq!(a.manhattan_distance(&b), b.manhattan_distance(&a));
        prop_assert_eq!(a.manhattan_distance(&a), 0);
        if a.manhattan_distance(&b) == 0 {
            prop_assert_eq!(a.clone(), b.clone());
        }
        prop_assert!(
            a.manhattan_distance(&b) <= a.manhattan_distance(&c) + c.manhattan_distance(&b)
        );
    }

    /// merge_max dominates both inputs pointwise and never exceeds their max.
    #[test]
    fn merge_max_is_pointwise_max(a in arb_series(), b in arb_series()) {
        let mut m = a.clone();
        m.merge_max(&b);
        for e in 0..64u32 {
            prop_assert_eq!(m.get(e), a.get(e).max(b.get(e)));
        }
    }

    /// merge_max is commutative and idempotent.
    #[test]
    fn merge_max_algebra(a in arb_series(), b in arb_series()) {
        let mut ab = a.clone();
        ab.merge_max(&b);
        let mut ba = b.clone();
        ba.merge_max(&a);
        prop_assert_eq!(ab.clone(), ba);
        let mut aa = a.clone();
        aa.merge_max(&a);
        prop_assert_eq!(aa, a.clone());
    }

    /// sum_range equals the naive sum of get() over the range.
    #[test]
    fn sum_range_matches_naive(s in arb_series(), lo in 0usize..70, len in 0usize..70) {
        let hi = (lo + len).min(70);
        let naive: u64 = (lo..hi).map(|e| s.get(e as u32)).sum();
        prop_assert_eq!(s.sum_range(lo..hi), naive);
    }

    /// epoch_of is consistent with the epoch's own bounds, for fixed and
    /// varied grids.
    #[test]
    fn epoch_of_consistent(
        lens in proptest::collection::vec(1i64..1_000_000, 1..20),
        probe in 0i64..20_000_000,
    ) {
        let mut boundaries = vec![Timestamp(0)];
        let mut t = 0;
        for l in &lens {
            t += l;
            boundaries.push(Timestamp(t));
        }
        let grid = EpochGrid::varied(boundaries);
        let ts = Timestamp(probe);
        match grid.epoch_of(ts) {
            Some(e) => {
                prop_assert!(e.start <= ts && ts < e.end);
                prop_assert_eq!(grid.epoch(e.index), e);
            }
            None => prop_assert!(ts < grid.t0() || ts >= grid.tc()),
        }
    }

    /// epochs_within returns exactly the epochs whose closed interval is
    /// contained in the query interval.
    #[test]
    fn epochs_within_matches_definition(
        m in 1usize..30,
        days in 1i64..10,
        a in 0i64..400,
        len in 0i64..400,
    ) {
        let grid = EpochGrid::fixed_days(days, m);
        let iq = TimeInterval::new(Timestamp(a * 3_600), Timestamp((a + len) * 3_600));
        let got = grid.epochs_within(iq);
        for i in 0..m {
            let contained = iq.contains_interval(grid.epoch(i).interval());
            prop_assert_eq!(got.contains(&i), contained, "epoch {}", i);
        }
    }

    /// Counting check-ins then summing over the full grid recovers the number
    /// of in-grid check-ins.
    #[test]
    fn aggregate_checkins_conserves_count(
        times in proptest::collection::vec(0i64..(30 * 86_400), 0..200),
        pois in proptest::collection::vec(0u32..8, 200),
    ) {
        let grid = EpochGrid::fixed_days(7, 4); // covers 28 days; some check-ins fall outside
        let checkins: Vec<CheckIn> = times
            .iter()
            .zip(pois.iter())
            .map(|(&t, &p)| CheckIn::at(PoiId(p), Timestamp(t)))
            .collect();
        let in_grid = checkins.iter().filter(|c| c.time < grid.tc()).count() as u64;
        let agg = aggregate_checkins(&checkins, &grid, AggregateKind::Count, 8);
        let total: u64 = agg.iter().map(|s| s.total()).sum();
        prop_assert_eq!(total, in_grid);
    }
}
