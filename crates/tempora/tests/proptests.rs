//! Property-based tests for the temporal substrate.

use knnta_util::prop::{check, Gen};
use tempora::{
    aggregate_checkins, AggregateKind, AggregateSeries, CheckIn, EpochGrid, PoiId, TimeInterval,
    Timestamp,
};

fn gen_series(g: &mut Gen) -> AggregateSeries {
    AggregateSeries::from_pairs(g.vec(0, 40, |g| (g.u32_in(0..64), g.u64_in(0..1000))))
}

/// `from_pairs` output is sorted by epoch with no zero values.
#[test]
fn series_invariants() {
    check("series_invariants", 64, |g| {
        let s = gen_series(g);
        let entries: Vec<_> = s.iter().collect();
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(entries.iter().all(|&(_, v)| v > 0));
    });
}

/// Manhattan distance is a metric: symmetric, zero iff equal, triangle.
#[test]
fn manhattan_is_metric() {
    check("manhattan_is_metric", 64, |g| {
        let (a, b, c) = (gen_series(g), gen_series(g), gen_series(g));
        assert_eq!(a.manhattan_distance(&b), b.manhattan_distance(&a));
        assert_eq!(a.manhattan_distance(&a), 0);
        if a.manhattan_distance(&b) == 0 {
            assert_eq!(a.clone(), b.clone());
        }
        assert!(a.manhattan_distance(&b) <= a.manhattan_distance(&c) + c.manhattan_distance(&b));
    });
}

/// merge_max dominates both inputs pointwise and never exceeds their max.
#[test]
fn merge_max_is_pointwise_max() {
    check("merge_max_is_pointwise_max", 64, |g| {
        let (a, b) = (gen_series(g), gen_series(g));
        let mut m = a.clone();
        m.merge_max(&b);
        for e in 0..64u32 {
            assert_eq!(m.get(e), a.get(e).max(b.get(e)));
        }
    });
}

/// merge_max is commutative and idempotent.
#[test]
fn merge_max_algebra() {
    check("merge_max_algebra", 64, |g| {
        let (a, b) = (gen_series(g), gen_series(g));
        let mut ab = a.clone();
        ab.merge_max(&b);
        let mut ba = b.clone();
        ba.merge_max(&a);
        assert_eq!(ab.clone(), ba);
        let mut aa = a.clone();
        aa.merge_max(&a);
        assert_eq!(aa, a.clone());
    });
}

/// sum_range equals the naive sum of get() over the range.
#[test]
fn sum_range_matches_naive() {
    check("sum_range_matches_naive", 64, |g| {
        let s = gen_series(g);
        let lo = g.usize_in(0..70);
        let len = g.usize_in(0..70);
        let hi = (lo + len).min(70);
        let naive: u64 = (lo..hi).map(|e| s.get(e as u32)).sum();
        assert_eq!(s.sum_range(lo..hi), naive);
    });
}

/// epoch_of is consistent with the epoch's own bounds, for fixed and
/// varied grids.
#[test]
fn epoch_of_consistent() {
    check("epoch_of_consistent", 64, |g| {
        let lens = g.vec(1, 20, |g| g.i64_in(1..1_000_000));
        let probe = g.i64_in(0..20_000_000);
        let mut boundaries = vec![Timestamp(0)];
        let mut t = 0;
        for l in &lens {
            t += l;
            boundaries.push(Timestamp(t));
        }
        let grid = EpochGrid::varied(boundaries);
        let ts = Timestamp(probe);
        match grid.epoch_of(ts) {
            Some(e) => {
                assert!(e.start <= ts && ts < e.end);
                assert_eq!(grid.epoch(e.index), e);
            }
            None => assert!(ts < grid.t0() || ts >= grid.tc()),
        }
    });
}

/// epochs_within returns exactly the epochs whose closed interval is
/// contained in the query interval.
#[test]
fn epochs_within_matches_definition() {
    check("epochs_within_matches_definition", 64, |g| {
        let m = g.usize_in(1..30);
        let days = g.i64_in(1..10);
        let a = g.i64_in(0..400);
        let len = g.i64_in(0..400);
        let grid = EpochGrid::fixed_days(days, m);
        let iq = TimeInterval::new(Timestamp(a * 3_600), Timestamp((a + len) * 3_600));
        let got = grid.epochs_within(iq);
        for i in 0..m {
            let contained = iq.contains_interval(grid.epoch(i).interval());
            assert_eq!(got.contains(&i), contained, "epoch {i}");
        }
    });
}

/// Counting check-ins then summing over the full grid recovers the number
/// of in-grid check-ins.
#[test]
fn aggregate_checkins_conserves_count() {
    check("aggregate_checkins_conserves_count", 64, |g| {
        let times = g.vec(0, 200, |g| g.i64_in(0..(30 * 86_400)));
        let grid = EpochGrid::fixed_days(7, 4); // covers 28 days; some check-ins fall outside
        let checkins: Vec<CheckIn> = times
            .iter()
            .map(|&t| CheckIn::at(PoiId(g.u32_in(0..8)), Timestamp(t)))
            .collect();
        let in_grid = checkins.iter().filter(|c| c.time < grid.tc()).count() as u64;
        let agg = aggregate_checkins(&checkins, &grid, AggregateKind::Count, 8);
        let total: u64 = agg.iter().map(|s| s.total()).sum();
        assert_eq!(total, in_grid);
    });
}
