//! A seeded open-loop load client for the query service.
//!
//! "Open loop" means arrivals are scheduled on a fixed clock — query `i`
//! is submitted at `start + i / rate` regardless of how fast earlier
//! queries complete — so offered load is independent of service latency
//! and queueing delay shows up in the measured latencies instead of being
//! absorbed by the client (the standard way to expose saturation).
//!
//! Query points follow the check-in **power law** of the `lbsn`
//! generators: ranks are drawn from [`lbsn::PowerLaw`] and mapped onto
//! POIs ordered by total check-ins, so a handful of popular locations
//! absorb most of the traffic — exactly the skew that makes Hilbert
//! locality tiles pay off, since concurrent queries pile onto the same
//! few hot regions. Intervals are the workload generator's power-of-two
//! "recent" spans. Everything is deterministic under the seed.

use crate::Service;
use knnta_core::KnntaQuery;
use knnta_util::rng::{Rng, StdRng};
use lbsn::{LbsnDataset, PowerLaw};
use std::time::{Duration, Instant};
use tempora::{TimeInterval, Timestamp};

/// Open-loop client knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Total queries to submit.
    pub queries: usize,
    /// Offered load in queries/second (the open-loop clock).
    pub rate_qps: f64,
    /// `k` of every query.
    pub k: usize,
    /// `α0` of every query.
    pub alpha0: f64,
    /// Power-law exponent of the popularity rank distribution (`> 1`;
    /// ~2.2 matches the check-in fits of the lbsn generators).
    pub beta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            queries: 500,
            rate_qps: 2000.0,
            k: 10,
            alpha0: 0.3,
            beta: 2.2,
            seed: 20_260_704,
        }
    }
}

/// What an open-loop run measured.
#[derive(Debug, Clone, Copy)]
pub struct ClientReport {
    /// Queries submitted (== answered; every ticket resolved).
    pub completed: usize,
    /// Wall-clock from first submit to last answer.
    pub elapsed: Duration,
    /// Achieved throughput over `elapsed`.
    pub qps: f64,
    /// Median submit-to-answer latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile submit-to-answer latency, microseconds.
    pub p95_us: u64,
    /// Worst submit-to-answer latency, microseconds.
    pub max_us: u64,
}

/// Generates the power-law query stream for `dataset` (pure function of
/// the config — callers replay it for oracle comparisons).
pub fn powerlaw_queries(dataset: &LbsnDataset, config: &ClientConfig) -> Vec<KnntaQuery> {
    assert!(!dataset.is_empty(), "client needs a non-empty dataset");
    let totals: Vec<u64> = dataset
        .series
        .iter()
        .map(|s| s.iter().map(|(_, v)| v).sum())
        .collect();
    let mut by_popularity: Vec<usize> = (0..dataset.len()).collect();
    by_popularity.sort_by_key(|&i| (std::cmp::Reverse(totals[i]), i));

    let law = PowerLaw::new(config.beta, 1);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0C11_E017);
    let tc = dataset.grid.tc();
    (0..config.queries)
        .map(|_| {
            let rank = (law.sample(&mut rng).max(1) as usize - 1).min(by_popularity.len() - 1);
            let point = dataset.positions[by_popularity[rank]];
            let exp = rng.gen_range(0..=9u32);
            let len = (1i64 << exp).min(tc.days().max(1)) * Timestamp::DAY;
            KnntaQuery::new(point, TimeInterval::new(tc - len, tc))
                .with_k(config.k)
                .with_alpha0(config.alpha0)
        })
        .collect()
}

/// Submits `queries` open-loop at `rate_qps`, waits for every answer, and
/// reports achieved throughput + latency percentiles.
///
/// Latency is measured merger-side (each answer carries its completion
/// instant), so waiting for tickets after the submit phase does not skew
/// the numbers.
pub fn run_open_loop(service: &Service, queries: &[KnntaQuery], rate_qps: f64) -> ClientReport {
    assert!(rate_qps > 0.0, "offered load must be positive");
    let gap = Duration::from_secs_f64(1.0 / rate_qps);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let due = start + gap * (i as u32);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        tickets.push(service.submit(*q));
    }
    let mut latencies_us: Vec<u64> = tickets
        .into_iter()
        .map(|t| t.wait_timed().1.as_micros() as u64)
        .collect();
    let elapsed = start.elapsed();
    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };
    ClientReport {
        completed: latencies_us.len(),
        elapsed,
        qps: latencies_us.len() as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        max_us: latencies_us.last().copied().unwrap_or(0),
    }
}
