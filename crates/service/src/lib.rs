//! # knnta-service — the async sharded query service
//!
//! A server loop in front of the kNNTA engine, turning continuously
//! arriving queries into the locality-tiled collective executions the
//! batch scheme (Section 7.2) makes fast — with zero dependencies beyond
//! the workspace: the executor is [`knnta_util::pool::ThreadPool`] over
//! [`knnta_util::chan`] channels, no external async runtime.
//!
//! ## Pipeline
//!
//! ```text
//! submit() ──► admission ──► shard 0 workers ─┐
//!              (tile by     shard 1 workers ──┼──► merger ──► Ticket
//!               Hilbert,         ...          │
//!               flush on    shard N-1 workers ┘
//!               size or
//!               deadline)
//! ```
//!
//! * **Admission** accumulates in-flight queries into a batch and flushes
//!   when the batch reaches `max_batch` queries or the oldest query has
//!   waited `max_delay` (deadline-or-size). Each flush is ordered along
//!   the 3-D Hilbert curve ([`knnta_core::BatchOrder::Hilbert`]) so the
//!   collective execution inside every shard walks a locality tile — the
//!   streaming generalisation of the static batches of PR 4.
//! * **Shards**: the POI set is partitioned across `shards` engine shards
//!   by [`knnta_core::partition_pois`] (contiguous Hilbert runs). Every
//!   shard builds its own `TarIndex` + packed image **with the global grid
//!   and global bounds**, and executes through a [`knnta_core::Executor`]
//!   (cost-model planner + EWMA calibration, per shard) seeded with the
//!   **global root-max** series ([`knnta_core::Executor::with_root_max`])
//!   so per-shard scores are bit-identical to the unsharded tree's.
//! * **Merge**: per-shard top-k lists are merged by
//!   [`knnta_core::merge_ranked`] under the global `(score, PoiId)` total
//!   order. `tests/service_oracle.rs` is the differential proof that the
//!   whole pipeline is bit-identical to one-at-a-time unsharded execution.
//! * **Faults**: a shard worker panic is caught at the execution boundary;
//!   the shard is rebuilt from its retained POIs and the flush retried
//!   (bounded by [`ServiceConfig::retry_limit`] and
//!   [`ServiceConfig::deadline`]). Exhausted retries propagate the original
//!   panic payload through [`Ticket::wait`] via `resume_unwind`, matching
//!   the workspace's parallel-search convention. In-flight queries never
//!   hang: every code path either answers the ticket or drops its response
//!   slot, which wakes the waiter with an error.
//!
//! Per-phase spans (`admit`, `tile`, `scatter`, `merge`) and
//! `knnta.service.*` counters flow into the attached [`Obs`] handle, so
//! `knnta report` breaks service latency down by phase. See DESIGN.md §15.
//!
//! Independently of the opt-in [`Obs`] tracing, every service carries an
//! always-on [`ServiceTelemetry`] ([`telemetry`]): sliding-window latency
//! histograms with per-segment attribution (admit / queue / scatter /
//! merge), per-shard health gauges, and a bounded tail-trace sampler —
//! snapshotted to the stable `knnta.snapshot.v1` schema for
//! `knnta serve --stats-out`, `knnta top`, and `knnta slo`. See
//! DESIGN.md §16.

#![warn(missing_docs)]

pub mod client;
pub mod telemetry;

pub use telemetry::{
    ServiceTelemetry, TelemetryConfig, G_IMBALANCE_X1000, G_TAIL_THRESHOLD_US, W_ADMIT_US,
    W_ANSWERED, W_E2E_US, W_FLUSHES, W_MERGE_US, W_QUEUE_US, W_SCATTER_US, W_SUBMITTED,
    W_TAIL_KEPT,
};

use knnta_core::{
    merge_ranked, partition_pois, BatchOrder, Executor, IndexConfig, KnntaQuery, Obs,
    PackedTarTree, Planner, Poi, QueryHit, TarIndex,
};
use knnta_obs::SpanId;
use knnta_util::chan::{self, OneshotReceiver, OneshotSender, Receiver, RecvError, Sender};
use knnta_util::pool::ThreadPool;
use knnta_util::sync::Mutex;
use rtree::Rect;
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempora::{AggregateSeries, EpochGrid};

/// Counter: queries accepted by [`Service::submit`].
pub const M_SUBMITTED: &str = "knnta.service.submitted";
/// Counter: queries answered (successfully) by the merger.
pub const M_ANSWERED: &str = "knnta.service.answered";
/// Counter: admission flushes (locality tiles dispatched).
pub const M_FLUSHES: &str = "knnta.service.flushes";
/// Counter: queries flushed by the size trigger (vs the deadline trigger).
pub const M_FLUSH_FULL: &str = "knnta.service.flush_full";
/// Counter: shard-task retries after a caught worker panic.
pub const M_RETRIES: &str = "knnta.service.retries";
/// Counter: shard rebuilds triggered by caught panics.
pub const M_REBUILDS: &str = "knnta.service.rebuilds";
/// Counter: shard tasks that exhausted their retries.
pub const M_FAILURES: &str = "knnta.service.failures";

/// Test-only fault injection: called with `(shard, flush id, attempt)` at
/// the start of every shard execution, inside the panic boundary — panic
/// here to simulate a shard worker dying mid-query.
pub type FaultHook = Arc<dyn Fn(usize, u64, usize) + Send + Sync>;

/// Tuning knobs for a [`Service`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Engine shards the POI set is partitioned across (clamped to the POI
    /// count at startup).
    pub shards: usize,
    /// Worker threads per shard.
    pub workers: usize,
    /// Admission flushes when this many queries are waiting…
    pub max_batch: usize,
    /// …or when the oldest waiting query has been held this long.
    pub max_delay: Duration,
    /// Retries per shard task after a caught panic (each on a freshly
    /// rebuilt shard) before the panic is propagated to the tickets.
    pub retry_limit: usize,
    /// Retries stop once a flush has been in flight this long, even if
    /// `retry_limit` is not yet exhausted.
    pub deadline: Duration,
    /// Test-only fault injection, normally `None`; set via
    /// [`ServiceConfig::with_fault_hook`].
    pub fault_hook: Option<FaultHook>,
    /// Always-on serving telemetry knobs (see [`telemetry`]).
    pub telemetry: TelemetryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            workers: 1,
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            retry_limit: 2,
            deadline: Duration::from_secs(5),
            fault_hook: None,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Installs a [`FaultHook`] (tests only; see the type's docs).
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }
}

/// A failed shard task: the panic message plus (for the first ticket it is
/// delivered to) the original panic payload.
struct Failure {
    message: String,
    payload: Option<Box<dyn Any + Send>>,
}

impl Failure {
    fn from_payload(payload: Box<dyn Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "shard worker panicked".to_string()
        };
        Failure {
            message,
            payload: Some(payload),
        }
    }
}

/// What the merger sends back through a ticket's response slot.
struct Response {
    result: Result<Vec<QueryHit>, Failure>,
    completed: Instant,
}

/// A pending answer for one submitted query.
pub struct Ticket {
    rx: OneshotReceiver<Response>,
    submitted: Instant,
}

impl Ticket {
    /// Blocks for the answer.
    ///
    /// # Panics
    ///
    /// Resumes the shard worker's panic (`std::panic::resume_unwind`) if
    /// the query's retries were exhausted, and panics with a shutdown
    /// message if the service stopped before answering — a ticket never
    /// hangs.
    pub fn wait(self) -> Vec<QueryHit> {
        self.wait_timed().0
    }

    /// [`Ticket::wait`], also returning the submit-to-answer latency.
    pub fn wait_timed(self) -> (Vec<QueryHit>, Duration) {
        match self.rx.recv() {
            Ok(resp) => {
                let latency = resp.completed.saturating_duration_since(self.submitted);
                match resp.result {
                    Ok(hits) => (hits, latency),
                    Err(failure) => match failure.payload {
                        Some(payload) => resume_unwind(payload),
                        None => resume_unwind(Box::new(failure.message)),
                    },
                }
            }
            Err(_) => panic!("query service shut down before answering"),
        }
    }

    /// Waits up to `timeout`; returns the ticket back on timeout so the
    /// caller can keep waiting (used by the fault tests to prove tickets
    /// never hang).
    pub fn wait_timeout(self, timeout: Duration) -> Result<(Vec<QueryHit>, Duration), Ticket> {
        match self.rx.recv_timeout_ref(timeout) {
            Ok(resp) => {
                let latency = resp.completed.saturating_duration_since(self.submitted);
                match resp.result {
                    Ok(hits) => Ok((hits, latency)),
                    Err(failure) => match failure.payload {
                        Some(payload) => resume_unwind(payload),
                        None => resume_unwind(Box::new(failure.message)),
                    },
                }
            }
            Err(RecvError::Timeout) => Err(self),
            Err(RecvError::Closed) => panic!("query service shut down before answering"),
        }
    }
}

/// One submitted query travelling through admission → merger.
struct Entry {
    query: KnntaQuery,
    reply: OneshotSender<Response>,
    submitted: Instant,
}

/// One shard execution: a flushed tile, in Hilbert order.
struct Task {
    flush: u64,
    queries: Arc<Vec<KnntaQuery>>,
    submitted: Instant,
}

enum MergeMsg {
    Manifest {
        flush: u64,
        entries: Vec<Entry>,
        shards: usize,
        /// When admission dispatched the flush (the admit/queue boundary).
        flushed_at: Instant,
    },
    ShardDone {
        flush: u64,
        shard: usize,
        outcome: Result<Vec<Vec<QueryHit>>, Failure>,
        /// Wall time of the (final) execution attempt on this shard.
        exec_ns: u64,
        /// Execution attempts consumed (0 = first try succeeded).
        attempts: u64,
        /// When this shard finished (the queue/merge boundary is the max
        /// over shards).
        finished: Instant,
    },
}

/// One shard's immutable serving state for one generation; replaced
/// wholesale on rebuild.
struct ShardData {
    generation: u64,
    index: TarIndex,
    packed: PackedTarTree,
}

/// A shard: its retained build inputs (for rebuilds) plus the current
/// [`ShardData`] generation.
struct ShardState {
    id: usize,
    pois: Vec<(Poi, AggregateSeries)>,
    grid: EpochGrid,
    bounds: Rect<2>,
    obs: Obs,
    slot: Mutex<Arc<ShardData>>,
}

/// Builds one shard generation: a TAR-tree over the shard's POIs with the
/// *global* grid and bounds, plus its packed serving image.
fn build_shard(
    pois: &[(Poi, AggregateSeries)],
    grid: &EpochGrid,
    bounds: Rect<2>,
    obs: &Obs,
    generation: u64,
) -> Arc<ShardData> {
    let mut index = TarIndex::build(
        IndexConfig::default(),
        grid.clone(),
        bounds,
        pois.iter().cloned(),
    );
    index.set_obs(obs.clone());
    let packed = index.pack();
    Arc::new(ShardData {
        generation,
        index,
        packed,
    })
}

impl ShardState {
    fn build_data(&self, generation: u64) -> Arc<ShardData> {
        build_shard(&self.pois, &self.grid, self.bounds, &self.obs, generation)
    }

    fn current(&self) -> Arc<ShardData> {
        self.slot.lock().clone()
    }

    /// Rebuilds the shard unless another worker already moved past the
    /// generation the caller saw the panic on.
    fn rebuild_after(&self, seen_generation: u64) -> Arc<ShardData> {
        let mut slot = self.slot.lock();
        if slot.generation > seen_generation {
            return slot.clone();
        }
        let data = self.build_data(slot.generation + 1);
        *slot = data.clone();
        data
    }
}

struct Counters {
    submitted: knnta_obs::Counter,
    answered: knnta_obs::Counter,
    flushes: knnta_obs::Counter,
    flush_full: knnta_obs::Counter,
    retries: knnta_obs::Counter,
    rebuilds: knnta_obs::Counter,
    failures: knnta_obs::Counter,
}

impl Counters {
    fn new(obs: &Obs) -> Self {
        Counters {
            submitted: obs.counter(M_SUBMITTED),
            answered: obs.counter(M_ANSWERED),
            flushes: obs.counter(M_FLUSHES),
            flush_full: obs.counter(M_FLUSH_FULL),
            retries: obs.counter(M_RETRIES),
            rebuilds: obs.counter(M_REBUILDS),
            failures: obs.counter(M_FAILURES),
        }
    }
}

/// The running service: submission front door plus the admission, shard
/// worker, and merger threads behind it. Dropping the service shuts it
/// down (draining the queue first).
pub struct Service {
    submit_tx: Sender<Entry>,
    submitted: knnta_obs::Counter,
    obs: Obs,
    shards: usize,
    telemetry: Arc<ServiceTelemetry>,
    pools: Vec<ThreadPool>,
}

impl Service {
    /// Partitions `pois` into shards, builds every shard's serving state,
    /// and starts the admission / worker / merger threads.
    ///
    /// The global `grid` and `bounds` are shared by every shard tree, and
    /// the global root-max series (the per-epoch max over all POI series —
    /// identical to the unsharded tree's root-max) is the `gmax`
    /// normaliser of every shard execution; both are what makes sharded
    /// answers bit-identical to the unsharded tree's.
    ///
    /// # Panics
    ///
    /// Panics if `pois` is empty.
    pub fn start(
        config: ServiceConfig,
        grid: EpochGrid,
        bounds: Rect<2>,
        pois: Vec<(Poi, AggregateSeries)>,
        obs: Obs,
    ) -> Service {
        assert!(!pois.is_empty(), "service needs at least one POI");
        let shards_n = config.shards.max(1).min(pois.len());
        let workers_n = config.workers.max(1);
        let config = Arc::new(ServiceConfig {
            shards: shards_n,
            workers: workers_n,
            max_batch: config.max_batch.max(1),
            ..config
        });

        let root_max = Arc::new(AggregateSeries::max_of(pois.iter().map(|(_, s)| s)));
        let positions: Vec<Poi> = pois.iter().map(|(p, _)| *p).collect();
        let parts = partition_pois(&positions, &bounds, shards_n);

        let counters = Arc::new(Counters::new(&obs));
        let shards: Vec<Arc<ShardState>> = parts
            .iter()
            .enumerate()
            .map(|(id, part)| {
                let shard_pois: Vec<(Poi, AggregateSeries)> =
                    part.iter().map(|&i| pois[i].clone()).collect();
                let data = build_shard(&shard_pois, &grid, bounds, &obs, 1);
                Arc::new(ShardState {
                    id,
                    pois: shard_pois,
                    grid: grid.clone(),
                    bounds,
                    obs: obs.clone(),
                    slot: Mutex::new(data),
                })
            })
            .collect();

        let telemetry = ServiceTelemetry::new(&config.telemetry, shards_n);

        let (submit_tx, submit_rx) = chan::channel::<Entry>();
        let (merge_tx, merge_rx) = chan::channel::<MergeMsg>();
        let shard_channels: Vec<(Sender<Task>, Receiver<Task>)> =
            (0..shards_n).map(|_| chan::channel::<Task>()).collect();

        // Admission orders each flush with a shard tree (same global grid
        // and bounds as the unsharded tree, so the same Hilbert ordering).
        let order_data = shards[0].current();

        let admit_pool = ThreadPool::new("knnta-admit", 1);
        {
            let shard_txs: Vec<Sender<Task>> =
                shard_channels.iter().map(|(tx, _)| tx.clone()).collect();
            let merge_tx = merge_tx.clone();
            let config = config.clone();
            let obs = obs.clone();
            let counters = counters.clone();
            let telemetry = telemetry.clone();
            let queued = admit_pool.execute(move || {
                admission_loop(
                    &submit_rx, &shard_txs, &merge_tx, &order_data, &config, &obs, &counters,
                    &telemetry,
                );
                for tx in &shard_txs {
                    tx.close();
                }
            });
            assert!(queued.is_ok(), "admission pool accepts its loop");
        }

        let worker_pool = ThreadPool::new("knnta-shard", shards_n * workers_n);
        for shard in &shards {
            for _ in 0..workers_n {
                let state = shard.clone();
                let rx = shard_channels[shard.id].1.clone();
                let merge_tx = merge_tx.clone();
                let root_max = root_max.clone();
                let config = config.clone();
                let obs = obs.clone();
                let counters = counters.clone();
                let telemetry = telemetry.clone();
                let queued = worker_pool.execute(move || {
                    worker_loop(
                        &state, &rx, &merge_tx, &root_max, &config, &obs, &counters, &telemetry,
                    );
                });
                assert!(queued.is_ok(), "worker pool accepts its loops");
            }
        }
        drop(merge_tx); // merger exits once admission + all workers are done

        let merge_pool = ThreadPool::new("knnta-merge", 1);
        {
            let obs = obs.clone();
            let counters = counters.clone();
            let telemetry = telemetry.clone();
            let queued =
                merge_pool.execute(move || merger_loop(&merge_rx, &obs, &counters, &telemetry));
            assert!(queued.is_ok(), "merge pool accepts its loop");
        }

        Service {
            submit_tx,
            submitted: counters.submitted.clone(),
            obs,
            shards: shards_n,
            telemetry,
            // Join order at shutdown: admission (drains + closes shard
            // queues) → workers (drain + drop their merge senders) →
            // merger (drains, answers everything outstanding).
            pools: vec![admit_pool, worker_pool, merge_pool],
        }
    }

    /// Enqueues a query; the returned [`Ticket`] resolves to its answer.
    /// After [`Service::shutdown`] the ticket resolves to the shutdown
    /// panic instead of hanging.
    pub fn submit(&self, query: KnntaQuery) -> Ticket {
        let (tx, rx) = chan::oneshot::<Response>();
        let submitted = Instant::now();
        let entry = Entry {
            query,
            reply: tx,
            submitted,
        };
        if self.submit_tx.send(entry).is_ok() {
            self.submitted.add(1);
            self.telemetry.submitted.inc();
        }
        Ticket { rx, submitted }
    }

    /// The always-on live telemetry (window snapshots, tail traces).
    pub fn telemetry(&self) -> &Arc<ServiceTelemetry> {
        &self.telemetry
    }

    /// Number of engine shards actually running (after clamping to the POI
    /// count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The observability handle every phase reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Stops accepting queries, drains everything in flight, and joins
    /// every service thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.submit_tx.close();
        for pool in &mut self.pools {
            pool.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Admission: accumulate submissions into a tile, flush on size or
/// deadline, order along the Hilbert curve, scatter to every shard.
#[allow(clippy::too_many_arguments)]
fn admission_loop(
    submit_rx: &Receiver<Entry>,
    shard_txs: &[Sender<Task>],
    merge_tx: &Sender<MergeMsg>,
    order_data: &ShardData,
    config: &ServiceConfig,
    obs: &Obs,
    counters: &Counters,
    telemetry: &ServiceTelemetry,
) {
    let mut flush_id = 0u64;
    loop {
        let first = match submit_rx.recv() {
            Ok(entry) => entry,
            Err(_) => return, // closed and drained: every entry was flushed
        };
        let admit_span = obs.span("admit", SpanId::NONE);
        let batch_started = Instant::now();
        let mut batch = vec![first];
        let mut filled = true;
        while batch.len() < config.max_batch {
            let elapsed = batch_started.elapsed();
            if elapsed >= config.max_delay {
                filled = false;
                break;
            }
            match submit_rx.recv_timeout(config.max_delay - elapsed) {
                Ok(entry) => batch.push(entry),
                Err(RecvError::Timeout) => {
                    filled = false;
                    break;
                }
                // Closed: flush what we have, then the next recv() exits.
                Err(RecvError::Closed) => {
                    filled = false;
                    break;
                }
            }
        }
        flush_id += 1;
        admit_span.set_attrs(vec![
            ("flush".into(), flush_id.into()),
            ("batch".into(), batch.len().into()),
            ("filled".into(), filled.into()),
        ]);
        drop(admit_span);
        counters.flushes.add(1);
        if filled {
            counters.flush_full.add(1);
        }
        // The admission clock: flush counting drives window rotation — no
        // wall-clock reads, deterministic under seeded test streams.
        telemetry.on_flush(flush_id, filled);

        let tile_span = obs.span("tile", SpanId::NONE);
        let queries: Vec<KnntaQuery> = batch.iter().map(|e| e.query).collect();
        let order = order_data.index.batch_order(&queries, BatchOrder::Hilbert);
        let mut slots: Vec<Option<Entry>> = batch.into_iter().map(Some).collect();
        let entries: Vec<Entry> = order
            .iter()
            .map(|&i| slots[i].take().expect("batch_order is a permutation"))
            .collect();
        let ordered = Arc::new(entries.iter().map(|e| e.query).collect::<Vec<_>>());
        let oldest = entries
            .iter()
            .map(|e| e.submitted)
            .min()
            .expect("non-empty batch");
        tile_span.set_attrs(vec![
            ("flush".into(), flush_id.into()),
            ("batch".into(), entries.len().into()),
        ]);

        // Manifest first: its queue position precedes every shard result
        // (workers can only respond to tasks sent after it), so the merger
        // always sees the manifest before the first ShardDone.
        let manifest_sent = merge_tx
            .send(MergeMsg::Manifest {
                flush: flush_id,
                entries,
                shards: shard_txs.len(),
                flushed_at: Instant::now(),
            })
            .is_ok();
        if manifest_sent {
            for tx in shard_txs {
                let _ = tx.send(Task {
                    flush: flush_id,
                    queries: ordered.clone(),
                    submitted: oldest,
                });
            }
        }
        drop(tile_span);
    }
}

/// One shard worker: drain tasks, execute through the planner-driven
/// executor, catch panics, rebuild + retry, report to the merger.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    state: &ShardState,
    rx: &Receiver<Task>,
    merge_tx: &Sender<MergeMsg>,
    root_max: &AggregateSeries,
    config: &ServiceConfig,
    obs: &Obs,
    counters: &Counters,
    telemetry: &ServiceTelemetry,
) {
    // The planner survives shard rebuilds: calibration is a property of
    // the workload + shard shape, not of one index instance.
    let mut planner = Planner::default();
    let mut pending: Option<(Task, usize)> = None;
    'generations: loop {
        let data = state.current();
        let mut exec = Executor::new(&data.index)
            .with_packed(&data.packed)
            .with_root_max(root_max)
            .with_planner(planner.clone())
            .with_windows(telemetry.windows());
        loop {
            let (task, attempt) = match pending.take() {
                Some(t) => t,
                None => match rx.recv() {
                    Ok(task) => {
                        telemetry.set_queue_depth(state.id, rx.len());
                        (task, 0)
                    }
                    Err(_) => return, // closed and drained
                },
            };
            let exec_start = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(hook) = &config.fault_hook {
                    hook(state.id, task.flush, attempt);
                }
                let span = obs.span("scatter", SpanId::NONE);
                span.set_attrs(vec![
                    ("flush".into(), task.flush.into()),
                    ("shard".into(), state.id.into()),
                    ("attempt".into(), attempt.into()),
                    ("batch".into(), task.queries.len().into()),
                ]);
                if task.queries.len() == 1 {
                    vec![exec.query(&task.queries[0])]
                } else {
                    exec.query_batch(&task.queries)
                }
            }));
            let exec_ns = exec_start.elapsed().as_nanos() as u64;
            match outcome {
                Ok(lists) => {
                    let _ = merge_tx.send(MergeMsg::ShardDone {
                        flush: task.flush,
                        shard: state.id,
                        outcome: Ok(lists),
                        exec_ns,
                        attempts: attempt as u64,
                        finished: Instant::now(),
                    });
                }
                Err(payload) => {
                    let next = attempt + 1;
                    let expired = task.submitted.elapsed() >= config.deadline;
                    if next > config.retry_limit || expired {
                        counters.failures.add(1);
                        telemetry.on_failure();
                        let _ = merge_tx.send(MergeMsg::ShardDone {
                            flush: task.flush,
                            shard: state.id,
                            outcome: Err(Failure::from_payload(payload)),
                            exec_ns,
                            attempts: attempt as u64,
                            finished: Instant::now(),
                        });
                    } else {
                        counters.retries.add(1);
                        counters.rebuilds.add(1);
                        telemetry.on_retry(state.id);
                        planner = exec.planner().clone();
                        pending = Some((task, next));
                        drop(exec);
                        state.rebuild_after(data.generation);
                        continue 'generations;
                    }
                }
            }
        }
    }
}

/// Merger: gather per-shard results per flush, merge under the global
/// total order, answer every ticket.
fn merger_loop(
    rx: &Receiver<MergeMsg>,
    obs: &Obs,
    counters: &Counters,
    telemetry: &ServiceTelemetry,
) {
    struct Pending {
        entries: Vec<Entry>,
        flushed_at: Instant,
        results: Vec<Option<Result<Vec<Vec<QueryHit>>, Failure>>>,
        // Per-shard (exec_ns, attempts, finished), same indexing as results.
        execs: Vec<Option<(u64, u64, Instant)>>,
    }
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            MergeMsg::Manifest {
                flush,
                entries,
                shards,
                flushed_at,
            } => {
                pending.insert(
                    flush,
                    Pending {
                        entries,
                        flushed_at,
                        results: (0..shards).map(|_| None).collect(),
                        execs: (0..shards).map(|_| None).collect(),
                    },
                );
            }
            MergeMsg::ShardDone {
                flush,
                shard,
                outcome,
                exec_ns,
                attempts,
                finished,
            } => {
                let slot = pending
                    .get_mut(&flush)
                    .expect("manifest always precedes shard results");
                slot.results[shard] = Some(outcome);
                slot.execs[shard] = Some((exec_ns, attempts, finished));
                if !slot.results.iter().all(Option::is_some) {
                    continue;
                }
                let done = pending.remove(&flush).expect("present above");
                // Per-shard attribution for this flush: scatter is the
                // slowest shard execution; queueing is whatever of the
                // post-flush wall time the executions themselves don't
                // explain.
                let shard_execs: Vec<(u64, u64)> = done
                    .execs
                    .iter()
                    .map(|e| {
                        let (ns, attempts, _) = e.expect("all shards reported");
                        (ns / 1_000, attempts)
                    })
                    .collect();
                let execs_us: Vec<u64> = shard_execs.iter().map(|&(us, _)| us).collect();
                telemetry.record_flush_execs(&execs_us);
                let scatter_us = execs_us.iter().copied().max().unwrap_or(0);
                let last_finish = done
                    .execs
                    .iter()
                    .map(|e| e.expect("all shards reported").2)
                    .max()
                    .unwrap_or(done.flushed_at);
                let queue_us = (last_finish
                    .saturating_duration_since(done.flushed_at)
                    .as_micros() as u64)
                    .saturating_sub(scatter_us);
                let span = obs.span("merge", SpanId::NONE);
                span.set_attrs(vec![
                    ("flush".into(), flush.into()),
                    ("batch".into(), done.entries.len().into()),
                    ("shards".into(), done.results.len().into()),
                ]);
                let mut lists = Vec::with_capacity(done.results.len());
                let mut failure: Option<Failure> = None;
                for outcome in done.results.into_iter().flatten() {
                    match outcome {
                        Ok(list) => lists.push(list),
                        Err(f) => {
                            // Keep the first failure's payload; later ones
                            // carry the same panic.
                            failure.get_or_insert(f);
                        }
                    }
                }
                match failure {
                    None => {
                        for (i, entry) in done.entries.into_iter().enumerate() {
                            let per_shard: Vec<Vec<QueryHit>> =
                                lists.iter().map(|l| l[i].clone()).collect();
                            let hits = merge_ranked(&per_shard, entry.query.k);
                            counters.answered.add(1);
                            let completed = Instant::now();
                            let total_us = completed
                                .saturating_duration_since(entry.submitted)
                                .as_micros() as u64;
                            let admit_us = done
                                .flushed_at
                                .saturating_duration_since(entry.submitted)
                                .as_micros() as u64;
                            // Merge picks up the remainder so the four
                            // segments always sum to the end-to-end time.
                            let merge_us = total_us
                                .saturating_sub(admit_us + queue_us + scatter_us);
                            telemetry.record_query(
                                flush,
                                entry.query.k,
                                total_us,
                                admit_us,
                                queue_us,
                                scatter_us,
                                merge_us,
                                &shard_execs,
                            );
                            let _ = entry.reply.send(Response {
                                result: Ok(hits),
                                completed,
                            });
                        }
                    }
                    Some(mut f) => {
                        // Every ticket of the flush fails; the first gets
                        // the original payload, the rest its message.
                        for entry in done.entries {
                            let _ = entry.reply.send(Response {
                                result: Err(Failure {
                                    message: f.message.clone(),
                                    payload: f.payload.take(),
                                }),
                                completed: Instant::now(),
                            });
                        }
                    }
                }
            }
        }
    }
    // Channel closed: admission and every worker are done, so nothing can
    // still be pending — but if a flush somehow is, dropping it closes its
    // response slots and wakes the waiters with an error instead of a hang.
}
