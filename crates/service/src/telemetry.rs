//! Always-on serving telemetry: sliding-window metrics, per-query latency
//! segments, per-shard health, and tail trace sampling.
//!
//! A [`ServiceTelemetry`] hangs off every [`crate::Service`]. Unlike the
//! opt-in [`knnta_core::Obs`] tracing (which records *everything* and is
//! therefore unusable on a process that runs for days), this layer is
//! bounded by construction and cheap enough to leave on:
//!
//! * every answered query costs a handful of atomic adds into
//!   [`LiveWindows`] ring buckets (one per latency segment) plus one mutex
//!   hop in the tail sampler — all on the single merger thread, off the
//!   shard hot paths;
//! * the window clock is the admission loop's flush counter
//!   ([`TelemetryConfig::advance_every_flushes`]), not wall-clock reads,
//!   so window contents are deterministic under seeded test clocks;
//! * full span trees survive only for queries over the tail sampler's
//!   rolling latency quantile, in a bounded reservoir
//!   ([`knnta_obs::TailSampler`]).
//!
//! End-to-end latency is decomposed into back-to-back segments measured
//! from the pipeline's own `Instant`s:
//!
//! ```text
//! submit ──admit──► flushed ──queue──► ──scatter──► all shards done ──merge──► answered
//!   t0               t1                               t2                        t3
//! ```
//!
//! `admit = t1 − t0` (per query), `scatter = max` shard execution time of
//! the flush (the critical path), `queue = (t2 − t1) − scatter` (time the
//! flush waited for worker dispatch), and `merge` is the remainder up to
//! `t3`, so the four segments always sum to the end-to-end latency.
//!
//! [`ServiceTelemetry::snapshot`] serializes the whole window state to the
//! stable `knnta.snapshot.v1` schema for `knnta serve --stats-out`,
//! `knnta top`, and `knnta slo`; [`ServiceTelemetry::tail_trace`] exports
//! the retained slow-query trees as one `knnta.trace.v1` document for
//! `knnta report`. See DESIGN.md §16.

use knnta_obs::trace::SpanDoc;
use knnta_obs::{
    bounds, AttrValue, Gauge, LiveWindows, SnapshotDoc, TailConfig, TailSampler, TraceDoc,
    WindowCounter, WindowHistogram,
};
use knnta_util::sync::Mutex;
use std::sync::Arc;

/// Window histogram: end-to-end submit→answer latency (µs).
pub const W_E2E_US: &str = "knnta.service.window.e2e_us";
/// Window histogram: admission wait (submit→flush) latency (µs).
pub const W_ADMIT_US: &str = "knnta.service.window.admit_us";
/// Window histogram: worker-dispatch queueing latency (µs).
pub const W_QUEUE_US: &str = "knnta.service.window.queue_us";
/// Window histogram: scatter critical path (slowest shard execution, µs).
pub const W_SCATTER_US: &str = "knnta.service.window.scatter_us";
/// Window histogram: merge + answer-delivery latency (µs).
pub const W_MERGE_US: &str = "knnta.service.window.merge_us";
/// Window counter: queries submitted.
pub const W_SUBMITTED: &str = "knnta.service.window.submitted";
/// Window counter: queries answered.
pub const W_ANSWERED: &str = "knnta.service.window.answered";
/// Window counter: admission flushes.
pub const W_FLUSHES: &str = "knnta.service.window.flushes";
/// Window counter: flushes triggered by size (vs deadline).
pub const W_FLUSH_FULL: &str = "knnta.service.window.flush_full";
/// Window counter: shard-task failures (retries exhausted).
pub const W_FAILURES: &str = "knnta.service.window.failures";
/// Window counter: tail traces retained by the sampler.
pub const W_TAIL_KEPT: &str = "knnta.service.window.tail_kept";
/// Gauge: the tail sampler's current keep threshold (µs).
pub const G_TAIL_THRESHOLD_US: &str = "knnta.service.tail.threshold_us";
/// Gauge: shard load imbalance — slowest shard's busy-EWMA over the mean,
/// ×1000 (1000 = perfectly balanced).
pub const G_IMBALANCE_X1000: &str = "knnta.service.imbalance_x1000";

/// Per-shard busy-EWMA weight (×1000): `ewma ← 0.75·ewma + 0.25·exec`.
const EWMA_NEW_X1000: u64 = 250;

/// Knobs for the always-on serving telemetry.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Master switch. Off vends no-op handles everywhere (one branch per
    /// site) — the overhead-bench baseline, not a production mode.
    pub enabled: bool,
    /// Epochs per sliding window.
    pub window_slots: usize,
    /// The admission loop advances the window clock every this many
    /// flushes (the deterministic "admission clock").
    pub advance_every_flushes: u64,
    /// Tail-sampler policy.
    pub tail: TailConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            window_slots: 8,
            advance_every_flushes: 4,
            tail: TailConfig::default(),
        }
    }
}

/// Per-shard health handles.
struct ShardHealth {
    queue_depth: Gauge,
    busy_ewma_us: Gauge,
    retries: WindowCounter,
    rebuilds: WindowCounter,
}

/// The live-telemetry sink of one [`crate::Service`].
pub struct ServiceTelemetry {
    windows: LiveWindows,
    sampler: Option<TailSampler>,
    advance_every: u64,
    e2e: WindowHistogram,
    admit: WindowHistogram,
    queue: WindowHistogram,
    scatter: WindowHistogram,
    merge: WindowHistogram,
    pub(crate) submitted: WindowCounter,
    answered: WindowCounter,
    flushes: WindowCounter,
    flush_full: WindowCounter,
    failures: WindowCounter,
    tail_kept: WindowCounter,
    tail_threshold: Gauge,
    imbalance: Gauge,
    shards: Vec<ShardHealth>,
    /// Per-shard busy EWMA state (µs), updated by the single merger
    /// thread; behind a mutex only so the struct stays `Sync`.
    ewma_us: Mutex<Vec<u64>>,
}

impl ServiceTelemetry {
    pub(crate) fn new(config: &TelemetryConfig, shard_count: usize) -> Arc<ServiceTelemetry> {
        let windows = if config.enabled {
            LiveWindows::new(config.window_slots)
        } else {
            LiveWindows::disabled()
        };
        let sampler = config.enabled.then(|| TailSampler::new(config.tail.clone()));
        let hist = |name| windows.histogram(name, bounds::LATENCY_US);
        let shards = (0..shard_count)
            .map(|s| ShardHealth {
                queue_depth: windows.gauge(&format!("knnta.service.shard{s}.queue_depth")),
                busy_ewma_us: windows.gauge(&format!("knnta.service.shard{s}.busy_ewma_us")),
                retries: windows.counter(&format!("knnta.service.shard{s}.retries")),
                rebuilds: windows.counter(&format!("knnta.service.shard{s}.rebuilds")),
            })
            .collect();
        Arc::new(ServiceTelemetry {
            e2e: hist(W_E2E_US),
            admit: hist(W_ADMIT_US),
            queue: hist(W_QUEUE_US),
            scatter: hist(W_SCATTER_US),
            merge: hist(W_MERGE_US),
            submitted: windows.counter(W_SUBMITTED),
            answered: windows.counter(W_ANSWERED),
            flushes: windows.counter(W_FLUSHES),
            flush_full: windows.counter(W_FLUSH_FULL),
            failures: windows.counter(W_FAILURES),
            tail_kept: windows.counter(W_TAIL_KEPT),
            tail_threshold: windows.gauge(G_TAIL_THRESHOLD_US),
            imbalance: windows.gauge(G_IMBALANCE_X1000),
            shards,
            ewma_us: Mutex::new(vec![0; shard_count]),
            sampler,
            advance_every: config.advance_every_flushes.max(1),
            windows,
        })
    }

    /// Whether this telemetry records anything.
    pub fn is_enabled(&self) -> bool {
        self.windows.is_enabled()
    }

    /// The sliding-window registry (for attaching more windowed metrics,
    /// e.g. the executor's planner-feedback ratio histogram).
    pub fn windows(&self) -> &LiveWindows {
        &self.windows
    }

    /// A `knnta.snapshot.v1` snapshot of the live window (empty when
    /// disabled). Refreshes the tail-threshold gauge first so the snapshot
    /// is self-consistent.
    pub fn snapshot(&self) -> SnapshotDoc {
        if let Some(s) = &self.sampler {
            self.tail_threshold.set(s.threshold_us() as i64);
        }
        self.windows.snapshot()
    }

    /// The retained slow-query span trees merged into one `knnta.trace.v1`
    /// document (empty when disabled).
    pub fn tail_trace(&self) -> TraceDoc {
        match &self.sampler {
            Some(s) => s.export(),
            None => TraceDoc {
                schema: knnta_obs::TRACE_SCHEMA.to_string(),
                ..TraceDoc::default()
            },
        }
    }

    /// Tail traces retained over the service lifetime (the
    /// `tail_traces_kept` bench counter).
    pub fn tail_kept_ever(&self) -> u64 {
        self.sampler.as_ref().map_or(0, |s| s.kept_ever())
    }

    /// The tail sampler's current rolling keep threshold in microseconds.
    pub fn tail_threshold_us(&self) -> u64 {
        self.sampler.as_ref().map_or(0, |s| s.threshold_us())
    }

    /// Admission-clock hook: counts the flush and advances the window
    /// epoch every [`TelemetryConfig::advance_every_flushes`] flushes.
    pub(crate) fn on_flush(&self, flush_id: u64, filled: bool) {
        self.flushes.inc();
        if filled {
            self.flush_full.inc();
        }
        if self.windows.is_enabled() && flush_id % self.advance_every == 0 {
            self.windows.advance();
            if let Some(s) = &self.sampler {
                s.advance();
            }
        }
    }

    /// Worker hook: current depth of a shard's task queue.
    pub(crate) fn set_queue_depth(&self, shard: usize, depth: usize) {
        if let Some(h) = self.shards.get(shard) {
            h.queue_depth.set(depth as i64);
        }
    }

    /// Worker hook: a caught panic triggered a rebuild + retry on `shard`.
    pub(crate) fn on_retry(&self, shard: usize) {
        if let Some(h) = self.shards.get(shard) {
            h.retries.inc();
            h.rebuilds.inc();
        }
    }

    /// Worker hook: a shard task exhausted its retries.
    pub(crate) fn on_failure(&self) {
        self.failures.inc();
    }

    /// Merger hook: one flush's per-shard execution times (µs, indexed by
    /// shard). Folds them into the per-shard busy EWMAs and republishes
    /// the load-imbalance gauge (max EWMA over mean, ×1000).
    pub(crate) fn record_flush_execs(&self, execs_us: &[u64]) {
        if !self.windows.is_enabled() || self.shards.is_empty() {
            return;
        }
        let mut ewma = self.ewma_us.lock();
        for (shard, &exec) in execs_us.iter().enumerate() {
            let Some(cell) = ewma.get_mut(shard) else { continue };
            *cell = if *cell == 0 {
                exec
            } else {
                (*cell * (1000 - EWMA_NEW_X1000) + exec * EWMA_NEW_X1000) / 1000
            };
            self.shards[shard].busy_ewma_us.set(*cell as i64);
        }
        let max = ewma.iter().copied().max().unwrap_or(0);
        let mean = ewma.iter().copied().sum::<u64>() / ewma.len() as u64;
        if mean > 0 {
            self.imbalance.set((max * 1000 / mean) as i64);
        }
    }

    /// Merger hook: one answered query's latency decomposition. Records
    /// every segment into its window histogram and offers the query to the
    /// tail sampler (the span tree is built only if retained).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_query(
        &self,
        flush: u64,
        k: usize,
        total_us: u64,
        admit_us: u64,
        queue_us: u64,
        scatter_us: u64,
        merge_us: u64,
        shard_execs: &[(u64, u64)],
    ) {
        if !self.windows.is_enabled() {
            return;
        }
        self.answered.inc();
        self.e2e.record(total_us);
        self.admit.record(admit_us);
        self.queue.record(queue_us);
        self.scatter.record(scatter_us);
        self.merge.record(merge_us);
        if let Some(sampler) = &self.sampler {
            let kept = sampler.offer(total_us, || {
                tail_trace_doc(
                    flush, k, total_us, admit_us, queue_us, scatter_us, merge_us, shard_execs,
                )
            });
            if kept {
                self.tail_kept.inc();
            }
        }
    }
}

impl std::fmt::Debug for ServiceTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceTelemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Builds the synthetic per-query span tree retained by the tail sampler:
/// a `served_query` root with back-to-back `segment.*` children (admit,
/// queue, scatter, merge) and per-shard `segment.shard` grandchildren
/// inside the scatter segment. All intervals are clamped to nest, so the
/// merged export always validates against `knnta.trace.v1`.
fn tail_trace_doc(
    flush: u64,
    k: usize,
    total_us: u64,
    admit_us: u64,
    queue_us: u64,
    scatter_us: u64,
    merge_us: u64,
    shard_execs: &[(u64, u64)],
) -> TraceDoc {
    let total_ns = total_us.saturating_mul(1_000);
    let mut spans = vec![SpanDoc {
        id: 1,
        parent: 0,
        name: "served_query".to_string(),
        start_ns: 0,
        end_ns: total_ns,
        attrs: vec![
            ("flush".to_string(), AttrValue::from(flush)),
            ("k".to_string(), AttrValue::from(k as u64)),
            ("latency_us".to_string(), AttrValue::from(total_us)),
        ],
    }];
    let mut next_id = 2u64;
    let mut t = 0u64;
    let mut scatter_interval = (0u64, 0u64);
    for (name, us) in [
        ("segment.admit", admit_us),
        ("segment.queue", queue_us),
        ("segment.scatter", scatter_us),
        ("segment.merge", merge_us),
    ] {
        let end = t.saturating_add(us.saturating_mul(1_000)).min(total_ns);
        if name == "segment.scatter" {
            scatter_interval = (t, end);
        }
        spans.push(SpanDoc {
            id: next_id,
            parent: 1,
            name: name.to_string(),
            start_ns: t,
            end_ns: end,
            attrs: vec![],
        });
        t = end;
        next_id += 1;
    }
    let scatter_id = 4; // third segment child
    for (shard, &(exec_us, attempts)) in shard_execs.iter().enumerate() {
        let end = scatter_interval
            .0
            .saturating_add(exec_us.saturating_mul(1_000))
            .min(scatter_interval.1);
        spans.push(SpanDoc {
            id: next_id,
            parent: scatter_id,
            name: "segment.shard".to_string(),
            start_ns: scatter_interval.0,
            end_ns: end,
            attrs: vec![
                ("shard".to_string(), AttrValue::from(shard as u64)),
                ("exec_us".to_string(), AttrValue::from(exec_us)),
                ("attempts".to_string(), AttrValue::from(attempts)),
            ],
        });
        next_id += 1;
    }
    TraceDoc {
        schema: knnta_obs::TRACE_SCHEMA.to_string(),
        spans,
        events: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = ServiceTelemetry::new(
            &TelemetryConfig {
                enabled: false,
                ..TelemetryConfig::default()
            },
            2,
        );
        assert!(!t.is_enabled());
        t.on_flush(1, true);
        t.record_query(1, 10, 500, 100, 100, 200, 100, &[(200, 0)]);
        t.record_flush_execs(&[10, 20]);
        assert_eq!(t.snapshot(), SnapshotDoc::default());
        assert!(t.tail_trace().spans.is_empty());
        assert_eq!(t.tail_kept_ever(), 0);
    }

    #[test]
    fn record_query_fills_windows_and_tail() {
        let t = ServiceTelemetry::new(&TelemetryConfig::default(), 2);
        for i in 0..20u64 {
            let total = 200 + i * 50;
            t.record_query(1, 10, total, 40, 10, total - 80, 30, &[(total - 80, 0), (50, 0)]);
        }
        t.record_flush_execs(&[900, 100]);
        let doc = t.snapshot();
        doc.validate().unwrap();
        let e2e = doc.histogram(W_E2E_US).unwrap();
        assert_eq!(e2e.count, 20);
        assert!(e2e.p50 <= e2e.p95 && e2e.p95 <= e2e.p99);
        assert_eq!(doc.counter(W_ANSWERED).unwrap().window, 20);
        assert!(doc.gauge("knnta.service.shard0.busy_ewma_us").unwrap() > 0);
        assert!(doc.gauge(G_IMBALANCE_X1000).unwrap() >= 1000);
        // Early offers land in the warmup window: the tail kept something.
        assert!(t.tail_kept_ever() > 0);
        let tail = t.tail_trace();
        tail.validate().unwrap();
        assert!(tail.spans.iter().any(|s| s.name == "served_query"));
        assert!(tail.spans.iter().any(|s| s.name == "segment.scatter"));
        assert!(tail.spans.iter().any(|s| s.name == "segment.shard"));
    }

    #[test]
    fn segments_nest_and_sum_to_total() {
        let doc = tail_trace_doc(7, 5, 1_000, 300, 100, 500, 100, &[(500, 1), (200, 0)]);
        doc.validate().unwrap();
        let root = doc.spans_named("served_query").next().unwrap();
        assert_eq!(root.duration_ns(), 1_000_000);
        let seg_total: u64 = doc
            .spans
            .iter()
            .filter(|s| s.name.starts_with("segment.") && s.name != "segment.shard")
            .map(|s| s.duration_ns())
            .sum();
        assert_eq!(seg_total, root.duration_ns());
        // Shard children nest inside the scatter segment.
        let scatter = doc.spans_named("segment.scatter").next().unwrap();
        for sh in doc.spans.iter().filter(|s| s.name == "segment.shard") {
            assert!(sh.start_ns >= scatter.start_ns && sh.end_ns <= scatter.end_ns);
        }
    }

    #[test]
    fn flush_clock_advances_windows() {
        let t = ServiceTelemetry::new(
            &TelemetryConfig {
                advance_every_flushes: 2,
                ..TelemetryConfig::default()
            },
            1,
        );
        t.on_flush(1, false);
        assert_eq!(t.windows().tick(), 0);
        t.on_flush(2, false);
        assert_eq!(t.windows().tick(), 1);
        t.on_flush(3, true);
        t.on_flush(4, true);
        assert_eq!(t.windows().tick(), 2);
        let doc = t.snapshot();
        assert_eq!(doc.counter(W_FLUSHES).unwrap().lifetime, 4);
        assert_eq!(doc.counter(W_FLUSH_FULL).unwrap().lifetime, 2);
    }
}
