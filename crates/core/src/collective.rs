//! Collective (batched) query processing (Section 7.2).
//!
//! A batch of kNNTA queries runs one best-first search per query, but the
//! physical node fetches and the TIA aggregate computation are shared:
//!
//! * **Hilbert ordering.** The batch is sorted along a 3-D Hilbert curve
//!   over `(x, y, Iq midpoint)` (see [`crate::hilbert`]) and processed in
//!   fixed-size locality *tiles*. Queries inside a tile open near-identical
//!   frontiers, so the greedy "most frequent front entry first" rule of the
//!   paper fetches each hot node once for the whole tile — and the paged
//!   backend's buffer pool stays resident on the tile's subtree.
//! * **Shared TIA aggregate memoisation.** `g(p, Iq)` depends on `Iq` only
//!   through its contained-epoch range, so queries are grouped by epoch
//!   range (a strict generalisation of the paper's "same query time
//!   interval" grouping) and an [`AggCache`] memoises per-entry aggregates
//!   per `(node, epoch-range)`, materialised from per-entry prefix partial
//!   sums ([`tempora::PrefixSums`]) that are built once per node no matter
//!   how many distinct ranges probe it. The `f(p_k)` normaliser `gmax` is
//!   likewise computed once per range, not once per query.
//!
//! Every per-query traversal is the *same* bound-pruned best-first search as
//! [`TarIndex::query`] — hits go into a [`TopK`] under the `(score, PoiId)`
//! total order, and a query stops at the first frontier node whose lower
//! bound exceeds its `f(p_k)` — so the batch answers are bit-identical to
//! the individual ones, per query, on every storage backend
//! (`tests/batch_oracle.rs` is the differential oracle). Node accesses are
//! counted once per physical fetch, and since each fetch serves at least one
//! query's pop (whose pop set equals its individual search's), collective
//! accesses never exceed individual accesses.

use crate::agg_cache::AggCache;
use crate::frontier::{NodeCand, TopK};
use crate::hilbert;
use crate::index::{QueryCtx, TarIndex};
use crate::observe::{self, PhaseAcc};
use crate::poi::{KnntaQuery, QueryHit};
use crate::storage::{EntryTarget, NodeSource, StorageBackend};
use knnta_obs::{AttrValue, Obs, SpanId};
use pagestore::AccessStats;
use rtree::NodeId;
use std::collections::{BinaryHeap, HashMap};
use std::ops::Range;

/// How a collective batch is ordered before tiling (the `--batch-order`
/// CLI flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchOrder {
    /// Hilbert-curve locality order over `(x, y, Iq midpoint)`.
    #[default]
    Hilbert,
    /// The queries' input order (the naive scheduler).
    Input,
}

impl BatchOrder {
    /// Parses a CLI name (`hilbert` | `input`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hilbert" => Some(BatchOrder::Hilbert),
            "input" => Some(BatchOrder::Input),
            _ => None,
        }
    }
}

impl std::fmt::Display for BatchOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BatchOrder::Hilbert => "hilbert",
            BatchOrder::Input => "input",
        })
    }
}

/// Tuning knobs of [`TarIndex::query_batch_collective_with`]. Every setting
/// preserves the answers; only the schedule and the amount of sharing
/// change.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Batch ordering (default: [`BatchOrder::Hilbert`]).
    pub order: BatchOrder,
    /// Whether the shared [`AggCache`] memoises aggregate computation
    /// across the batch (default: `true`).
    pub agg_cache: bool,
    /// Queries per locality tile; node fetches are shared within a tile
    /// (default: 64; `0` is treated as 1).
    pub tile: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            order: BatchOrder::default(),
            agg_cache: true,
            tile: 64,
        }
    }
}

/// Per-axis Hilbert precision of the batch ordering: 16 bits × 3 axes keeps
/// the key in one `u64` with far finer cells than any realistic batch needs.
/// The packed bulk-load ([`crate::PackedTarTree`]) reuses the same precision
/// so both locality orderings quantize identically.
pub(crate) const HILBERT_BITS: u32 = 16;

impl TarIndex {
    /// Processes a batch of queries collectively with the default options
    /// (Hilbert ordering, shared aggregate memoisation), sharing node
    /// accesses and aggregate computation across the batch. Node accesses
    /// are counted once per physical fetch in [`TarIndex::stats`].
    ///
    /// Returns one result list per query, in input order; each list is
    /// bit-identical to what [`TarIndex::query`] returns for that query.
    pub fn query_batch_collective(&self, queries: &[KnntaQuery]) -> Vec<Vec<QueryHit>> {
        self.query_batch_collective_with(queries, &BatchOptions::default())
    }

    /// [`TarIndex::query_batch_collective`] with explicit [`BatchOptions`].
    pub fn query_batch_collective_with(
        &self,
        queries: &[KnntaQuery],
        opts: &BatchOptions,
    ) -> Vec<Vec<QueryHit>> {
        crate::plan::run_batch(&self.exec_env(), StorageBackend::InMemory, queries, opts)
    }

    /// [`TarIndex::query_batch_collective_with`] against an explicit storage
    /// backend, so the buffer pool behind [`StorageBackend::Paged`] sees the
    /// Hilbert ordering's locality.
    ///
    /// # Panics
    ///
    /// Panics if a paged backend is stale (the index changed since it was
    /// materialised).
    pub fn query_batch_collective_on(
        &self,
        queries: &[KnntaQuery],
        opts: &BatchOptions,
        backend: StorageBackend<'_>,
    ) -> Vec<Vec<QueryHit>> {
        crate::plan::run_batch(&self.exec_env(), backend, queries, opts)
    }

    /// Processes the batch one query at a time (the "individual" baseline of
    /// the paper's batch experiments): every query pays its own node
    /// accesses and recomputes every aggregate.
    pub fn query_batch_individual(&self, queries: &[KnntaQuery]) -> Vec<Vec<QueryHit>> {
        queries.iter().map(|q| self.query(q)).collect()
    }

    /// [`TarIndex::query_batch_individual`] against an explicit storage
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if a paged backend is stale.
    pub fn query_batch_individual_on(
        &self,
        queries: &[KnntaQuery],
        backend: StorageBackend<'_>,
    ) -> Vec<Vec<QueryHit>> {
        queries.iter().map(|q| self.query_on(q, backend)).collect()
    }

    /// The processing order [`TarIndex::query_batch_collective_with`] uses
    /// for `queries`: a permutation of `0..queries.len()`.
    ///
    /// The Hilbert order is a pure function of the query *values* — ties on
    /// the curve key are broken by the full query content — so it is
    /// deterministic under permutation of the batch: reordering the input
    /// permutes the returned indices but never the visit sequence of the
    /// query values themselves (`crates/core/tests/hilbert_props.rs` pins
    /// this down).
    pub fn batch_order(&self, queries: &[KnntaQuery], order: BatchOrder) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..queries.len()).collect();
        if order == BatchOrder::Input {
            return idx;
        }
        let grid = self.grid();
        let t0 = grid.t0().seconds() as f64;
        let span = (grid.tc().seconds() - grid.t0().seconds()) as f64;
        let keys: Vec<u64> = queries
            .iter()
            .map(|q| {
                let p = self.norm(q.point);
                let mid =
                    0.5 * (q.interval.start().seconds() as f64 + q.interval.end().seconds() as f64);
                let t = if span > 0.0 { (mid - t0) / span } else { 0.0 };
                hilbert::hilbert_key([p[0], p[1], t], HILBERT_BITS)
            })
            .collect();
        // Tie-break by full query content (then input position, which only
        // separates byte-identical — hence interchangeable — queries), so
        // the order is a function of the multiset of queries, not of their
        // arrival order.
        let content = |q: &KnntaQuery| {
            (
                q.point[0].to_bits(),
                q.point[1].to_bits(),
                q.interval.start().seconds(),
                q.interval.end().seconds(),
                q.k,
                q.alpha0.to_bits(),
            )
        };
        idx.sort_by(|&a, &b| {
            keys[a]
                .cmp(&keys[b])
                .then_with(|| content(&queries[a]).cmp(&content(&queries[b])))
                .then(a.cmp(&b))
        });
        idx
    }
}

/// The root `batch` span's attributes: batch size and schedule knobs.
pub(crate) fn batch_attrs(queries: &[KnntaQuery], opts: &BatchOptions) -> Vec<(String, AttrValue)> {
    vec![
        ("queries".to_string(), AttrValue::from(queries.len() as u64)),
        ("order".to_string(), AttrValue::from(opts.order.to_string())),
        ("tile".to_string(), AttrValue::from(opts.tile as u64)),
        ("agg_cache".to_string(), AttrValue::from(opts.agg_cache)),
    ]
}

/// One query's in-flight state: the same bound-pruned best-first search as
/// `bfs_query_nodes`, suspended whenever it needs a node fetched.
struct BatchQuery<'a> {
    ctx: QueryCtx<'a>,
    /// The query's contained-epoch range (the aggregate memo key).
    range: Range<usize>,
    /// Node frontier (min-heap on `(key, NodeId)`).
    heap: BinaryHeap<NodeCand>,
    topk: TopK,
}

impl BatchQuery<'_> {
    /// The node the query needs next: its frontier front, unless the front's
    /// lower bound already exceeds `f(p_k)` — then the query is finished and
    /// the rest of its frontier is dropped, exactly like the individual
    /// search's early exit.
    fn front(&mut self) -> Option<NodeId> {
        match self.heap.peek() {
            Some(cand) if cand.key <= self.topk.bound() => Some(cand.id),
            Some(_) => {
                self.heap.clear();
                None
            }
            None => None,
        }
    }
}

/// Re-files a query under the bucket of its next front node (or retires it).
fn park(
    qi: usize,
    st: &mut BatchQuery<'_>,
    buckets: &mut HashMap<NodeId, Vec<usize>>,
    sizes: &mut BinaryHeap<(usize, NodeId)>,
) {
    if let Some(front) = st.front() {
        let bucket = buckets.entry(front).or_default();
        bucket.push(qi);
        sizes.push((bucket.len(), front));
    }
}

/// The collective traversal over any node source.
///
/// Within a tile, queries are bucketed by their front node and a lazy
/// max-heap on bucket sizes implements the paper's greedy "most frequent
/// front entry first" rule; each physical fetch is consumed by every query
/// currently waiting on that node.
///
/// `root_max` is the per-epoch root maximum the `f(p_k)` normaliser `gmax`
/// is computed from — the index's own [`TarIndex::root_max_series`] for
/// plain batches, or a live snapshot's overlay-adjusted series (which keeps
/// batch answers bit-identical to a merged index).
pub(crate) fn collective_on_nodes<const D: usize, N: NodeSource<D>>(
    nodes: &N,
    stats: &AccessStats,
    index: &TarIndex,
    root_max: &tempora::AggregateSeries,
    queries: &[KnntaQuery],
    opts: &BatchOptions,
    obs: &Obs,
    parent: SpanId,
) -> Vec<Vec<QueryHit>> {
    let mut results: Vec<Vec<QueryHit>> = vec![Vec::new(); queries.len()];
    // Empty batches, all-k=0 batches and empty trees terminate here, before
    // any tree access (including the root-TIA normaliser scan).
    let active: Vec<usize> = (0..queries.len()).filter(|&i| queries[i].k > 0).collect();
    if active.is_empty() || nodes.is_empty() {
        return results;
    }

    let order: Vec<usize> = {
        let picked: Vec<KnntaQuery> = active.iter().map(|&i| queries[i]).collect();
        index
            .batch_order(&picked, opts.order)
            .into_iter()
            .map(|i| active[i])
            .collect()
    };

    // Group queries by contained-epoch range (the paper groups by identical
    // interval; ranges subsume that) and compute the shared `gmax`
    // normaliser once per distinct range — identical to the per-query value
    // of `aggregate_normalizer`, which also only depends on the range.
    let grid = index.grid();
    let mut gmax_of: HashMap<(usize, usize), f64> = HashMap::new();
    let mut ranges: Vec<Range<usize>> = vec![0..0; queries.len()];
    for &qi in &active {
        let r = grid.epochs_within(queries[qi].interval);
        gmax_of
            .entry((r.start, r.end))
            .or_insert_with(|| (root_max.sum_range(r.clone()) as f64).max(1.0));
        ranges[qi] = r;
    }

    let mut cache = opts.agg_cache.then(AggCache::new);
    let root = nodes.root();
    let enabled = obs.is_enabled();

    for (ti, tile) in order.chunks(opts.tile.max(1)).enumerate() {
        let tile_start = obs.now_ns();
        let mut phases = PhaseAcc::default();
        let mut states: HashMap<usize, BatchQuery<'_>> = tile
            .iter()
            .map(|&qi| {
                let q = &queries[qi];
                let range = ranges[qi].clone();
                let gmax = gmax_of[&(range.start, range.end)];
                let mut heap = BinaryHeap::new();
                heap.push(NodeCand { key: 0.0, id: root });
                (
                    qi,
                    BatchQuery {
                        ctx: index.ctx_with_normalizer(q, gmax),
                        range,
                        heap,
                        topk: TopK::new(q.k),
                    },
                )
            })
            .collect();

        // Buckets of queries waiting on the same front node, with a lazy
        // max-heap on (bucket size, node) selecting the hottest node next.
        let mut buckets: HashMap<NodeId, Vec<usize>> = HashMap::new();
        let mut sizes: BinaryHeap<(usize, NodeId)> = BinaryHeap::new();
        for &qi in tile {
            let st = states.get_mut(&qi).expect("tile query has state");
            park(qi, st, &mut buckets, &mut sizes);
        }

        while let Some((count, node_id)) = sizes.pop() {
            // Skip stale heap entries: the bucket was already consumed, or
            // it grew and a larger entry for it exists.
            match buckets.get(&node_id) {
                Some(waiting) if waiting.len() == count => {}
                _ => continue,
            }
            let waiting = buckets.remove(&node_id).expect("bucket just checked");
            if !enabled {
                nodes.with_node(node_id, |node| {
                    stats.record_node_access();
                    if node.is_leaf() {
                        stats.record_leaf_access();
                    }
                    let mem = node.mem_entries();
                    for qi in waiting {
                        let st = states.get_mut(&qi).expect("waiting query has state");
                        debug_assert_eq!(st.heap.peek().map(|c| c.id), Some(node_id));
                        st.heap.pop();
                        let mut scratch: Vec<u64> = Vec::new();
                        // Arena nodes share the AggCache's memoised prefix
                        // sums; packed nodes carry their own prefix blocks,
                        // which answer each probe directly.
                        let aggs: &[u64] = match (mem, &mut cache) {
                            (Some(entries), Some(c)) => c.node_aggregates(
                                node_id,
                                st.range.clone(),
                                entries.iter().map(|e| &e.aug),
                            ),
                            (Some(entries), None) => {
                                scratch.extend(
                                    entries.iter().map(|e| e.aug.sum_range(st.range.clone())),
                                );
                                &scratch
                            }
                            (None, _) => {
                                scratch.extend(
                                    node.entries().map(|e| e.agg.sum_range(st.range.clone())),
                                );
                                &scratch
                            }
                        };
                        for (e, &agg) in node.entries().zip(aggs.iter()) {
                            let s0 = e.rect2.min_dist2(&st.ctx.q).sqrt();
                            match e.target {
                                EntryTarget::Data(poi) => {
                                    let hit = st.ctx.hit(poi, s0, agg);
                                    st.topk.push(hit);
                                }
                                EntryTarget::Child(c) => {
                                    let (key, _) = st.ctx.score(s0, agg);
                                    st.heap.push(NodeCand { key, id: c });
                                }
                            }
                        }
                        park(qi, st, &mut buckets, &mut sizes);
                    }
                });
                continue;
            }
            // Instrumented twin: identical probes and arithmetic, plus the
            // per-tile phase timing (fetch I/O and aggregate computation).
            let mut io_ns = 0u64;
            let mut tia_ns = 0u64;
            let t_fetch = std::time::Instant::now();
            nodes.with_node_timed(node_id, &mut io_ns, |node| {
                stats.record_node_access();
                if node.is_leaf() {
                    stats.record_leaf_access();
                }
                let mem = node.mem_entries();
                for qi in waiting {
                    let st = states.get_mut(&qi).expect("waiting query has state");
                    debug_assert_eq!(st.heap.peek().map(|c| c.id), Some(node_id));
                    st.heap.pop();
                    let mut scratch: Vec<u64> = Vec::new();
                    let t_agg = std::time::Instant::now();
                    let aggs: &[u64] = match (mem, &mut cache) {
                        (Some(entries), Some(c)) => c.node_aggregates(
                            node_id,
                            st.range.clone(),
                            entries.iter().map(|e| &e.aug),
                        ),
                        (Some(entries), None) => {
                            scratch.extend(
                                entries.iter().map(|e| e.aug.sum_range(st.range.clone())),
                            );
                            &scratch
                        }
                        (None, _) => {
                            scratch.extend(
                                node.entries().map(|e| e.agg.sum_range(st.range.clone())),
                            );
                            &scratch
                        }
                    };
                    tia_ns += t_agg.elapsed().as_nanos() as u64;
                    for (e, &agg) in node.entries().zip(aggs.iter()) {
                        let s0 = e.rect2.min_dist2(&st.ctx.q).sqrt();
                        match e.target {
                            EntryTarget::Data(poi) => {
                                let hit = st.ctx.hit(poi, s0, agg);
                                st.topk.push(hit);
                            }
                            EntryTarget::Child(c) => {
                                let (key, _) = st.ctx.score(s0, agg);
                                st.heap.push(NodeCand { key, id: c });
                            }
                        }
                    }
                    park(qi, st, &mut buckets, &mut sizes);
                }
            });
            phases.busy_ns += t_fetch.elapsed().as_nanos() as u64;
            phases.io_ns += io_ns;
            phases.tia_ns += tia_ns;
        }

        if enabled {
            if let Some(tracer) = obs.tracer() {
                let tile_end = tracer.now_ns().max(tile_start);
                let span = tracer.add_span(
                    "batch.tile",
                    parent,
                    tile_start,
                    tile_end,
                    vec![
                        ("tile".to_string(), AttrValue::from(ti as u64)),
                        ("queries".to_string(), AttrValue::from(tile.len() as u64)),
                    ],
                );
                observe::emit_phase_spans(obs, span, tile_start, tile_end, &phases);
            }
            obs.counter(observe::M_BATCH_TILES).inc();
            obs.counter(observe::M_BATCH_QUERIES).add(tile.len() as u64);
        }

        for (qi, st) in states {
            results[qi] = st.topk.into_sorted_vec();
        }
    }

    if enabled {
        if let Some(c) = &cache {
            obs.counter(observe::M_AGG_CACHE_HITS).add(c.hits());
            obs.counter(observe::M_AGG_CACHE_MISSES).add(c.misses());
            obs.counter(observe::M_AGG_CACHE_PREFIX_BUILDS)
                .add(c.prefix_builds());
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::paper_example;
    use crate::index::{Grouping, IndexConfig};
    use tempora::TimeInterval;

    fn example(grouping: Grouping) -> TarIndex {
        let (grid, bounds, pois) = paper_example();
        TarIndex::build(IndexConfig::with_grouping(grouping), grid, bounds, pois)
    }

    fn mixed_batch() -> Vec<KnntaQuery> {
        vec![
            KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3))
                .with_k(3)
                .with_alpha0(0.3),
            KnntaQuery::new([9.4, 2.1], TimeInterval::days(1, 3))
                .with_k(1)
                .with_alpha0(0.9),
            KnntaQuery::new([1.0, 9.0], TimeInterval::days(0, 1))
                .with_k(5)
                .with_alpha0(0.5),
            KnntaQuery::new([6.0, 5.0], TimeInterval::days(0, 2))
                .with_k(12)
                .with_alpha0(0.2),
            KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3))
                .with_k(3)
                .with_alpha0(0.3),
        ]
    }

    fn assert_bit_identical(a: &[Vec<QueryHit>], b: &[Vec<QueryHit>], tag: &str) {
        assert_eq!(a.len(), b.len(), "{tag}");
        for (i, (xs, ys)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(xs.len(), ys.len(), "{tag} query {i}");
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.poi, y.poi, "{tag} query {i}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{tag} query {i}");
                assert_eq!(x.aggregate, y.aggregate, "{tag} query {i}");
            }
        }
    }

    #[test]
    fn collective_matches_individual_results() {
        let batch = mixed_batch();
        for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
            let index = example(grouping);
            let individual = index.query_batch_individual(&batch);
            for order in [BatchOrder::Hilbert, BatchOrder::Input] {
                for agg_cache in [true, false] {
                    let opts = BatchOptions {
                        order,
                        agg_cache,
                        ..BatchOptions::default()
                    };
                    let collective = index.query_batch_collective_with(&batch, &opts);
                    assert_bit_identical(
                        &collective,
                        &individual,
                        &format!("{grouping} {order} cache={agg_cache}"),
                    );
                }
            }
        }
    }

    #[test]
    fn collective_shares_node_accesses() {
        let index = example(Grouping::TarIntegral);
        let q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3))
            .with_k(3)
            .with_alpha0(0.3);
        let batch = vec![q; 20];

        index.stats().reset();
        let _ = index.query_batch_individual(&batch);
        let individual = index.stats().node_accesses();

        index.stats().reset();
        let _ = index.query_batch_collective(&batch);
        let shared = index.stats().node_accesses();

        assert!(shared >= 1);
        assert!(
            shared * 10 <= individual,
            "expected ≥10× sharing on identical queries, got {shared} vs {individual}"
        );
    }

    #[test]
    fn collective_never_exceeds_individual_accesses() {
        let batch = mixed_batch();
        for order in [BatchOrder::Hilbert, BatchOrder::Input] {
            let index = example(Grouping::TarIntegral);
            index.stats().reset();
            let _ = index.query_batch_individual(&batch);
            let individual = index.stats().node_accesses();

            index.stats().reset();
            let opts = BatchOptions {
                order,
                ..BatchOptions::default()
            };
            let _ = index.query_batch_collective_with(&batch, &opts);
            let shared = index.stats().node_accesses();
            assert!(shared <= individual, "{order}: {shared} > {individual}");
        }
    }

    #[test]
    fn empty_batch_touches_nothing() {
        let index = example(Grouping::TarIntegral);
        index.stats().reset();
        let results = index.query_batch_collective(&[]);
        assert!(results.is_empty());
        assert_eq!(index.stats().node_accesses(), 0);
    }

    #[test]
    fn all_k_zero_batch_touches_nothing() {
        let index = example(Grouping::TarIntegral);
        let batch = vec![
            KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3)).with_k(0),
            KnntaQuery::new([1.0, 2.0], TimeInterval::days(1, 2)).with_k(0),
        ];
        index.stats().reset();
        let results = index.query_batch_collective(&batch);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(Vec::is_empty));
        assert_eq!(index.stats().node_accesses(), 0);
    }

    #[test]
    fn batch_with_k_zero_query() {
        let index = example(Grouping::TarIntegral);
        let mut batch = mixed_batch();
        batch.insert(2, KnntaQuery::new([5.0, 5.0], TimeInterval::days(0, 3)).with_k(0));
        let collective = index.query_batch_collective(&batch);
        assert!(collective[2].is_empty());
        let individual = index.query_batch_individual(&batch);
        assert_bit_identical(&collective, &individual, "k=0 mixed in");
    }

    #[test]
    fn empty_index_batch_is_empty() {
        let (grid, bounds, _) = paper_example();
        let index = TarIndex::new(IndexConfig::default(), grid, bounds);
        index.stats().reset();
        let results = index.query_batch_collective(&mixed_batch());
        assert!(results.iter().all(Vec::is_empty));
        assert_eq!(index.stats().node_accesses(), 0);
    }

    #[test]
    fn tiny_tiles_stay_exact() {
        let index = example(Grouping::TarIntegral);
        let batch = mixed_batch();
        let individual = index.query_batch_individual(&batch);
        for tile in [1, 2, 3] {
            let opts = BatchOptions {
                tile,
                ..BatchOptions::default()
            };
            let collective = index.query_batch_collective_with(&batch, &opts);
            assert_bit_identical(&collective, &individual, &format!("tile={tile}"));
        }
    }

    #[test]
    fn batch_order_is_a_permutation() {
        let index = example(Grouping::TarIntegral);
        let batch = mixed_batch();
        for order in [BatchOrder::Hilbert, BatchOrder::Input] {
            let mut perm = index.batch_order(&batch, order);
            assert_eq!(perm.len(), batch.len());
            perm.sort_unstable();
            assert_eq!(perm, (0..batch.len()).collect::<Vec<_>>());
        }
        assert_eq!(
            index.batch_order(&batch, BatchOrder::Input),
            (0..batch.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_order_parse_roundtrip() {
        assert_eq!(BatchOrder::parse("hilbert"), Some(BatchOrder::Hilbert));
        assert_eq!(BatchOrder::parse("input"), Some(BatchOrder::Input));
        assert_eq!(BatchOrder::parse("zorder"), None);
        assert_eq!(BatchOrder::Hilbert.to_string(), "hilbert");
        assert_eq!(BatchOrder::Input.to_string(), "input");
    }
}
