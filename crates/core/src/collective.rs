//! Collective (batched) query processing (Section 7.2).
//!
//! A batch of kNNTA queries runs one best-first search per query, but node
//! accesses are shared: at every step the node that is the front entry of
//! the most queues is fetched once and consumed by all of them ("the queues
//! containing the most frequent front entry are processed first"). Queries
//! with the same time interval additionally share the aggregate computation
//! on the accessed node's TIAs.

use crate::augmentation::TiaAug;
use crate::index::{with_tree, Frontier, Prioritised, QueryCtx, TarIndex};
use crate::poi::{KnntaQuery, Poi, QueryHit};
use rtree::{EntryPayload, NodeId, RStarTree};
use std::collections::{BinaryHeap, HashMap};
use tempora::{AggregateSeries, TimeInterval};

impl TarIndex {
    /// Processes a batch of queries collectively, sharing node accesses and
    /// per-interval aggregate computation. Node accesses are counted once
    /// per physical fetch in [`TarIndex::stats`].
    ///
    /// Returns one result list per query, in input order; each list is
    /// identical to what [`TarIndex::query`] returns for that query.
    pub fn query_batch_collective(&self, queries: &[KnntaQuery]) -> Vec<Vec<QueryHit>> {
        with_tree!(self, t => collective_bfs(t, self, queries))
    }

    /// Processes the batch one query at a time (the "individual" baseline of
    /// Section 8.4): every query pays its own node accesses.
    pub fn query_batch_individual(&self, queries: &[KnntaQuery]) -> Vec<Vec<QueryHit>> {
        queries.iter().map(|q| self.query(q)).collect()
    }
}

struct QueryState<'a> {
    ctx: QueryCtx<'a>,
    k: usize,
    heap: BinaryHeap<Prioritised>,
    results: Vec<QueryHit>,
    /// Index of the query's interval group (aggregate cache key).
    group: usize,
}

impl QueryState<'_> {
    fn done(&self) -> bool {
        self.results.len() >= self.k || self.heap.is_empty()
    }

    /// Pops ready hits off the front; afterwards the front is a node (or the
    /// query is done).
    fn drain_hits(&mut self) {
        while !self.done() {
            match self.heap.peek() {
                Some(Prioritised {
                    item: Frontier::Hit(_),
                    ..
                }) => {
                    let Some(Prioritised {
                        item: Frontier::Hit(hit),
                        ..
                    }) = self.heap.pop()
                    else {
                        unreachable!()
                    };
                    self.results.push(hit);
                }
                _ => break,
            }
        }
    }

    /// The node at the front, if any.
    fn front_node(&self) -> Option<NodeId> {
        match self.heap.peek() {
            Some(Prioritised {
                item: Frontier::Node(id),
                ..
            }) => Some(*id),
            _ => None,
        }
    }
}

/// Per-(interval-group, node) cache of entry aggregates: computed once when
/// the first query of the group consumes the node.
type AggCache = HashMap<(usize, NodeId), Vec<u64>>;

fn collective_bfs<const D: usize, S>(
    tree: &RStarTree<D, Poi, TiaAug, S>,
    index: &TarIndex,
    queries: &[KnntaQuery],
) -> Vec<Vec<QueryHit>>
where
    S: rtree::GroupingStrategy<D, AggregateSeries>,
{
    // Group queries by identical time interval (Section 7.2: "we group the
    // queries together if they have the same query time interval").
    let mut groups: HashMap<TimeInterval, usize> = HashMap::new();
    let mut states: Vec<QueryState<'_>> = queries
        .iter()
        .map(|q| {
            let next = groups.len();
            let group = *groups.entry(q.interval).or_insert(next);
            let mut heap = BinaryHeap::new();
            if !tree.is_empty() && q.k > 0 {
                heap.push(Prioritised {
                    score: 0.0,
                    item: Frontier::Node(tree.root_id()),
                });
            }
            QueryState {
                ctx: index.ctx(q),
                k: q.k,
                heap,
                results: Vec::with_capacity(q.k),
                group,
            }
        })
        .collect();

    // Bucket the queries by their front node; a lazy max-heap on bucket
    // sizes implements the paper's greedy "most frequent front entry first"
    // rule without rescanning every queue per round.
    let mut buckets: HashMap<NodeId, Vec<usize>> = HashMap::new();
    let mut sizes: BinaryHeap<(usize, NodeId)> = BinaryHeap::new();
    let park = |st: &mut QueryState<'_>,
                    qi: usize,
                    buckets: &mut HashMap<NodeId, Vec<usize>>,
                    sizes: &mut BinaryHeap<(usize, NodeId)>| {
        st.drain_hits();
        if st.done() {
            return;
        }
        if let Some(front) = st.front_node() {
            let bucket = buckets.entry(front).or_default();
            bucket.push(qi);
            sizes.push((bucket.len(), front));
        }
    };
    for (qi, st) in states.iter_mut().enumerate() {
        park(st, qi, &mut buckets, &mut sizes);
    }

    let mut cache: AggCache = HashMap::new();
    while let Some((count, node_id)) = sizes.pop() {
        // Skip stale heap entries (the bucket grew — a bigger entry exists —
        // or was already consumed).
        match buckets.get(&node_id) {
            Some(waiting) if waiting.len() == count => {}
            _ => continue,
        }
        let waiting = buckets.remove(&node_id).expect("bucket exists");
        let node = tree.access_node(node_id);
        for qi in waiting {
            let st = &mut states[qi];
            debug_assert_eq!(st.front_node(), Some(node_id));
            st.heap.pop();
            // The aggregates of this node's entries over the group's
            // interval, computed once per (group, node).
            let aggs = cache.entry((st.group, node_id)).or_insert_with(|| {
                node.entries
                    .iter()
                    .map(|e| e.aug.aggregate_over(st.ctx.grid, st.ctx.iq))
                    .collect()
            });
            for (e, &agg) in node.entries.iter().zip(aggs.iter()) {
                let s0 = e.rect.project2().min_dist2(&st.ctx.q).sqrt();
                match &e.payload {
                    EntryPayload::Data(poi) => {
                        let hit = st.ctx.hit(poi.id, s0, agg);
                        st.heap.push(Prioritised {
                            score: hit.score,
                            item: Frontier::Hit(hit),
                        });
                    }
                    EntryPayload::Child(c) => {
                        let (score, _) = st.ctx.score(s0, agg);
                        st.heap.push(Prioritised {
                            score,
                            item: Frontier::Node(*c),
                        });
                    }
                }
            }
            park(&mut states[qi], qi, &mut buckets, &mut sizes);
        }
    }
    states.into_iter().map(|st| st.results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::paper_example;
    use crate::index::{Grouping, IndexConfig};

    fn example_index() -> TarIndex {
        let (grid, bounds, pois) = paper_example();
        TarIndex::build(
            IndexConfig::with_grouping(Grouping::TarIntegral),
            grid,
            bounds,
            pois,
        )
    }

    fn example_queries() -> Vec<KnntaQuery> {
        let mut qs = Vec::new();
        for (i, &(x, y)) in [
            (1.0, 1.0),
            (4.0, 4.5),
            (9.0, 9.0),
            (5.0, 5.0),
            (2.0, 8.0),
            (8.0, 2.0),
        ]
        .iter()
        .enumerate()
        {
            // Two interval types.
            let iv = if i % 2 == 0 {
                TimeInterval::days(0, 3)
            } else {
                TimeInterval::days(1, 3)
            };
            qs.push(KnntaQuery::new([x, y], iv).with_k(3).with_alpha0(0.3));
        }
        qs
    }

    #[test]
    fn collective_matches_individual_results() {
        let index = example_index();
        let queries = example_queries();
        let collective = index.query_batch_collective(&queries);
        let individual = index.query_batch_individual(&queries);
        assert_eq!(collective.len(), individual.len());
        for (c, i) in collective.iter().zip(&individual) {
            let cs: Vec<_> = c.iter().map(|h| (h.poi, h.aggregate)).collect();
            let is: Vec<_> = i.iter().map(|h| (h.poi, h.aggregate)).collect();
            assert_eq!(cs, is);
        }
    }

    #[test]
    fn collective_shares_node_accesses() {
        let index = example_index();
        // Many identical queries: the collective scheme should fetch each
        // node once, the individual scheme once per query.
        let q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3)).with_k(3);
        let queries = vec![q; 20];
        index.stats().reset();
        let _ = index.query_batch_collective(&queries);
        let shared = index.stats().node_accesses();
        index.stats().reset();
        let _ = index.query_batch_individual(&queries);
        let individual = index.stats().node_accesses();
        assert!(
            shared * 10 <= individual,
            "collective {shared} vs individual {individual}"
        );
    }

    #[test]
    fn empty_batch() {
        let index = example_index();
        assert!(index.query_batch_collective(&[]).is_empty());
    }

    #[test]
    fn batch_with_k_zero_query() {
        let index = example_index();
        let mut q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3));
        q.k = 0;
        let res = index.query_batch_collective(&[q]);
        assert_eq!(res.len(), 1);
        assert!(res[0].is_empty());
    }

    #[test]
    fn mixed_parameters_batch() {
        let index = example_index();
        let mut queries = Vec::new();
        for alpha0 in [0.1, 0.5, 0.9] {
            for k in [1, 5] {
                queries.push(
                    KnntaQuery::new([3.0, 3.0], TimeInterval::days(0, 2))
                        .with_k(k)
                        .with_alpha0(alpha0),
                );
            }
        }
        let collective = index.query_batch_collective(&queries);
        for (q, got) in queries.iter().zip(&collective) {
            let want = index.query(q);
            assert_eq!(
                got.iter().map(|h| h.poi).collect::<Vec<_>>(),
                want.iter().map(|h| h.poi).collect::<Vec<_>>()
            );
        }
    }
}
