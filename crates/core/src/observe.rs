//! Observability plumbing for the query path: metric names, the per-phase
//! cost accumulator, and the scope helper every query entry point uses to
//! emit its span and publish counter deltas.
//!
//! Everything here is inert when the index's [`Obs`] handle is disabled:
//! [`QueryScope::begin`] returns `None`, the phase accumulator is never
//! touched, and no timestamps are taken — the disabled query path stays
//! byte-identical to the pre-observability code (pinned by
//! `tests/obs_overhead.rs`).
//!
//! Metric names follow `knnta.<crate>.<subsystem>.<name>`. The node-access
//! and buffer counters are published from [`AccessStats`] snapshot deltas,
//! so they *are* the oracle accounting by construction — schedule invariant,
//! bit-identical across backends and thread counts.

use crate::packed::PackedTarTree;
use crate::poi::KnntaQuery;
use crate::storage::PagedNodes;
use knnta_obs::{AttrValue, Obs, SpanGuard, SpanId};
use pagestore::{AccessStats, StatsSnapshot};

/// `knnta.core.search.node_accesses` — logical node accesses (oracle
/// accounting delta).
pub(crate) const M_NODE_ACCESSES: &str = "knnta.core.search.node_accesses";
/// `knnta.core.search.leaf_accesses` — the leaf subset of the above.
pub(crate) const M_LEAF_ACCESSES: &str = "knnta.core.search.leaf_accesses";
/// `knnta.core.search.heap_pushes` — frontier pushes (sequential search).
pub(crate) const M_HEAP_PUSHES: &str = "knnta.core.search.heap_pushes";
/// `knnta.core.search.heap_pops` — frontier pops (sequential search).
pub(crate) const M_HEAP_POPS: &str = "knnta.core.search.heap_pops";
/// `knnta.core.search.bound_updates` — times `f(p_k)` tightened.
pub(crate) const M_BOUND_UPDATES: &str = "knnta.core.search.bound_updates";
/// `knnta.core.frontier.pops` — parallel frontier pops (all workers).
pub(crate) const M_FRONTIER_POPS: &str = "knnta.core.frontier.pops";
/// `knnta.core.frontier.steals` — pops taken from another worker's heap.
pub(crate) const M_FRONTIER_STEALS: &str = "knnta.core.frontier.steals";
/// `knnta.core.frontier.speculative` — expansions beyond the final `f(p_k)`
/// (timing noise, excluded from the oracle accounting).
pub(crate) const M_FRONTIER_SPECULATIVE: &str = "knnta.core.frontier.speculative";
/// `knnta.core.batch.tiles` — locality tiles processed.
pub(crate) const M_BATCH_TILES: &str = "knnta.core.batch.tiles";
/// `knnta.core.batch.queries` — active queries across processed batches.
pub(crate) const M_BATCH_QUERIES: &str = "knnta.core.batch.queries";
/// `knnta.core.agg_cache.hits` — memoised aggregate probes.
pub(crate) const M_AGG_CACHE_HITS: &str = "knnta.core.agg_cache.hits";
/// `knnta.core.agg_cache.misses` — computed aggregate probes.
pub(crate) const M_AGG_CACHE_MISSES: &str = "knnta.core.agg_cache.misses";
/// `knnta.core.agg_cache.prefix_builds` — nodes whose prefix sums were built.
pub(crate) const M_AGG_CACHE_PREFIX_BUILDS: &str = "knnta.core.agg_cache.prefix_builds";
/// `knnta.tempora.series.epochs_scanned` — stored epoch records scanned by
/// in-memory aggregate computation.
pub(crate) const M_EPOCHS_SCANNED: &str = "knnta.tempora.series.epochs_scanned";
/// `knnta.mvbt.tia.probes` — disk-TIA aggregate probes.
pub(crate) const M_TIA_PROBES: &str = "knnta.mvbt.tia.probes";
/// `knnta.core.storage.paged.fetch_ns` — per-node paged fetch latency
/// histogram.
pub(crate) const M_PAGED_FETCH_NS: &str = "knnta.core.storage.paged.fetch_ns";
/// `knnta.core.storage.packed.fetches` — node reads served by a packed
/// serving image (zero-copy; counted, not timed).
pub(crate) const M_PACKED_FETCHES: &str = "knnta.core.storage.packed.fetches";
/// `knnta.core.live.recorded` — check-ins accepted by [`crate::LiveIndex`]
/// writers (buffered into a shard, not yet sealed).
pub(crate) const M_LIVE_RECORDED: &str = "knnta.core.live.recorded";
/// `knnta.core.live.dropped` — check-ins rejected at record time (outside
/// the grid, or for a POI the index does not know).
pub(crate) const M_LIVE_DROPPED: &str = "knnta.core.live.dropped";
/// `knnta.core.live.sealed_events` — check-ins folded into the frozen delta
/// overlay by seals.
pub(crate) const M_LIVE_SEALED: &str = "knnta.core.live.sealed_events";
/// `knnta.core.live.seals` — seal operations (epoch rolls + explicit seals).
pub(crate) const M_LIVE_SEALS: &str = "knnta.core.live.seals";
/// `knnta.core.live.merges` — background merges folding sealed deltas into
/// the base TAR-tree.
pub(crate) const M_LIVE_MERGES: &str = "knnta.core.live.merges";
/// `knnta.core.live.snapshots` — snapshot views handed out.
pub(crate) const M_LIVE_SNAPSHOTS: &str = "knnta.core.live.snapshots";
/// Bucket upper bounds (ns) of [`M_PAGED_FETCH_NS`] — the shared default
/// table, so the cumulative and sliding-window registries agree.
pub(crate) const PAGED_FETCH_BOUNDS: &[u64] = knnta_obs::bounds::FETCH_NS;

/// Accumulated per-search phase costs in nanoseconds, decomposed
/// Fig. 12-style: total measured work, the TIA-aggregation share and the
/// page-I/O share. Filter (scoring) time is the remainder.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PhaseAcc {
    /// Total measured work time (the whole search loop, or one worker's
    /// expansion time).
    pub busy_ns: u64,
    /// Time spent computing temporal aggregates.
    pub tia_ns: u64,
    /// Time spent fetching + decoding nodes from paged storage.
    pub io_ns: u64,
}

impl PhaseAcc {
    /// The filter (distance scoring + heap maintenance) share: whatever is
    /// left of `busy_ns` after TIA aggregation and page I/O.
    pub fn filter_ns(&self) -> u64 {
        self.busy_ns
            .saturating_sub(self.tia_ns)
            .saturating_sub(self.io_ns)
    }
}

/// Emits the three stacked `phase.*` child spans under `parent`, laid out
/// back to back from `start_ns` (filter, then TIA, then I/O) and clamped to
/// `end_ns` so they always nest inside the parent interval.
pub(crate) fn emit_phase_spans(
    obs: &Obs,
    parent: SpanId,
    start_ns: u64,
    end_ns: u64,
    acc: &PhaseAcc,
) {
    let Some(tracer) = obs.tracer() else { return };
    let mut t = start_ns;
    for (name, ns) in [
        ("phase.filter", acc.filter_ns()),
        ("phase.tia", acc.tia_ns),
        ("phase.io", acc.io_ns),
    ] {
        let end = t.saturating_add(ns).min(end_ns).max(t);
        tracer.add_span(name, parent, t, end, vec![]);
        t = end;
    }
}

/// Publishes the paged backend's physical I/O delta as counters, namespaced
/// by replacement policy: `knnta.pagestore.buffer.<policy>.*` plus
/// `knnta.pagestore.disk.page_*`.
pub(crate) fn publish_paged_io(obs: &Obs, policy: &str, d: &StatsSnapshot) {
    obs.counter("knnta.pagestore.disk.page_reads").add(d.page_reads);
    obs.counter("knnta.pagestore.disk.page_writes").add(d.page_writes);
    obs.counter(&format!("knnta.pagestore.buffer.{policy}.hits"))
        .add(d.buffer_hits);
    obs.counter(&format!("knnta.pagestore.buffer.{policy}.misses"))
        .add(d.buffer_misses);
    obs.counter(&format!("knnta.pagestore.buffer.{policy}.evictions"))
        .add(d.buffer_evictions);
}

/// The storage backend a [`QueryScope`] observes, with whatever handle that
/// backend's accounting needs: paged I/O snapshots or the packed fetch
/// counter. The `backend` span attribute carries [`ScopeBackend::label`].
#[derive(Clone, Copy)]
pub(crate) enum ScopeBackend<'a> {
    /// The in-memory arena — no backend-specific accounting.
    Mem,
    /// A paged snapshot; physical I/O deltas are published on finish.
    Paged(&'a PagedNodes),
    /// A packed serving image; the fetch-counter delta is published on
    /// finish.
    Packed(&'a PackedTarTree),
}

impl ScopeBackend<'_> {
    /// The `backend` span-attribute value.
    fn label(&self) -> &'static str {
        match self {
            ScopeBackend::Mem => "mem",
            ScopeBackend::Paged(_) => "paged",
            ScopeBackend::Packed(_) => "packed",
        }
    }
}

/// One instrumented query (or batch) entry point: opens the root span,
/// snapshots the oracle accounting (and the backend's own counters) on
/// entry, and publishes the deltas as metrics + span attributes on
/// [`QueryScope::finish`].
pub(crate) struct QueryScope<'a> {
    obs: &'a Obs,
    span: SpanGuard<'a>,
    stats: &'a AccessStats,
    before: StatsSnapshot,
    backend: ScopeBackend<'a>,
    io_before: Option<StatsSnapshot>,
    fetches_before: u64,
}

impl<'a> QueryScope<'a> {
    /// Opens the scope, or `None` when `obs` is disabled.
    pub fn begin(
        obs: &'a Obs,
        stats: &'a AccessStats,
        name: &str,
        mode: &str,
        backend: ScopeBackend<'a>,
        attrs: Vec<(String, AttrValue)>,
    ) -> Option<Self> {
        if !obs.is_enabled() {
            return None;
        }
        let span = obs.span(name, SpanId::NONE);
        let mut all = vec![
            ("mode".to_string(), AttrValue::from(mode)),
            ("backend".to_string(), AttrValue::from(backend.label())),
        ];
        all.extend(attrs);
        span.set_attrs(all);
        let io_before = match backend {
            ScopeBackend::Paged(p) => Some(p.io_snapshot()),
            _ => None,
        };
        let fetches_before = match backend {
            ScopeBackend::Packed(p) => p.fetches(),
            _ => 0,
        };
        Some(QueryScope {
            obs,
            span,
            stats,
            before: stats.snapshot(),
            backend,
            io_before,
            fetches_before,
        })
    }

    /// A [`QueryScope::begin`] with the standard per-query attributes.
    pub fn begin_query(
        obs: &'a Obs,
        stats: &'a AccessStats,
        mode: &str,
        backend: ScopeBackend<'a>,
        query: &KnntaQuery,
        threads: usize,
    ) -> Option<Self> {
        Self::begin(
            obs,
            stats,
            "query",
            mode,
            backend,
            vec![
                ("k".to_string(), AttrValue::from(query.k as u64)),
                ("alpha0".to_string(), AttrValue::from(query.alpha0)),
                ("threads".to_string(), AttrValue::from(threads as u64)),
            ],
        )
    }

    /// The open root span (parent for search/worker/phase spans).
    pub fn span_id(&self) -> SpanId {
        self.span.id()
    }

    /// Publishes the accounting deltas and closes the span.
    pub fn finish(self, hits: usize) {
        let d = self.stats.snapshot().since(self.before);
        self.obs.counter(M_NODE_ACCESSES).add(d.node_accesses);
        self.obs.counter(M_LEAF_ACCESSES).add(d.leaf_node_accesses);
        let mut attrs = vec![
            ("hits".to_string(), AttrValue::from(hits as u64)),
            (
                "node_accesses".to_string(),
                AttrValue::from(d.node_accesses),
            ),
            (
                "leaf_accesses".to_string(),
                AttrValue::from(d.leaf_node_accesses),
            ),
        ];
        match self.backend {
            ScopeBackend::Mem => {}
            ScopeBackend::Paged(paged) => {
                if let Some(before) = self.io_before {
                    let io = paged.io_snapshot().since(before);
                    let policy = paged.config().policy.to_string();
                    publish_paged_io(self.obs, &policy, &io);
                    attrs.push(("policy".to_string(), AttrValue::from(policy)));
                    attrs.push(("buffer_hits".to_string(), AttrValue::from(io.buffer_hits)));
                    attrs.push((
                        "buffer_misses".to_string(),
                        AttrValue::from(io.buffer_misses),
                    ));
                    attrs.push(("page_reads".to_string(), AttrValue::from(io.page_reads)));
                }
            }
            ScopeBackend::Packed(packed) => {
                let fetches = packed.fetches().saturating_sub(self.fetches_before);
                self.obs.counter(M_PACKED_FETCHES).add(fetches);
                attrs.push(("packed_fetches".to_string(), AttrValue::from(fetches)));
            }
        }
        self.span.set_attrs(attrs);
        self.span.finish();
    }
}
