//! The straightforward sequential-scan approach (Section 3.2).

use crate::poi::{KnntaQuery, Poi, QueryHit};
use rtree::Rect;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tempora::{AggregateSeries, EpochGrid, PoiId, TimeInterval};

/// The paper's baseline: keep every POI's per-epoch aggregates in a flat
/// table, and per query (i) sum each POI's epochs inside `Iq`, (ii) compute
/// every ranking score, (iii) select the top-k — `O(m'N + N log m + k log N)`
/// (Section 3.2).
///
/// It shares the TAR-tree's normalisation (diagonal of the data-space
/// bounds; dataset-wide per-epoch max over `Iq`), so its answers are
/// *exactly* comparable with the index answers — the integration tests rely
/// on this as the correctness oracle.
pub struct ScanBaseline {
    grid: EpochGrid,
    bounds: Rect<2>,
    inv_scale: f64,
    pois: Vec<Poi>,
    series: Vec<AggregateSeries>,
    max_series: AggregateSeries,
}

impl ScanBaseline {
    /// Builds the flat table.
    pub fn build(
        grid: EpochGrid,
        bounds: Rect<2>,
        pois: impl IntoIterator<Item = (Poi, AggregateSeries)>,
    ) -> Self {
        let mut ps = Vec::new();
        let mut ss = Vec::new();
        let mut max_series = AggregateSeries::new();
        for (poi, series) in pois {
            max_series.merge_max(&series);
            ps.push(poi);
            ss.push(series);
        }
        let w = bounds.max[0] - bounds.min[0];
        let h = bounds.max[1] - bounds.min[1];
        let diag = (w * w + h * h).sqrt();
        ScanBaseline {
            grid,
            bounds,
            inv_scale: if diag > 0.0 { 1.0 / diag } else { 1.0 },
            pois: ps,
            series: ss,
            max_series,
        }
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// Adds one POI (the baseline is as dynamic as a flat table can be).
    pub fn push(&mut self, poi: Poi, series: AggregateSeries) {
        self.max_series.merge_max(&series);
        self.pois.push(poi);
        self.series.push(series);
    }

    /// Records the aggregate of a finished epoch for a POI.
    pub fn ingest(&mut self, poi: PoiId, epoch_index: usize, agg: u64) {
        let i = self
            .pois
            .iter()
            .position(|p| p.id == poi)
            .expect("POI exists in the baseline table");
        self.series[i].add(epoch_index as u32, agg);
        self.max_series
            .raise_to(epoch_index as u32, self.series[i].get(epoch_index as u32));
    }

    /// The aggregate normaliser over `iq` (shared with the index).
    pub fn aggregate_normalizer(&self, iq: TimeInterval) -> f64 {
        (self.max_series.aggregate_over(&self.grid, iq) as f64).max(1.0)
    }

    /// The ranking scores of **all** POIs, unsorted (used by MWA tests that
    /// need the complete ranking).
    pub fn score_all(&self, query: &KnntaQuery) -> Vec<QueryHit> {
        let gmax = self.aggregate_normalizer(query.interval);
        let q = [
            (query.point[0] - self.bounds.min[0]) * self.inv_scale,
            (query.point[1] - self.bounds.min[1]) * self.inv_scale,
        ];
        self.pois
            .iter()
            .zip(&self.series)
            .map(|(poi, series)| {
                let p = [
                    (poi.pos[0] - self.bounds.min[0]) * self.inv_scale,
                    (poi.pos[1] - self.bounds.min[1]) * self.inv_scale,
                ];
                let s0 = rtree::dist(&p, &q);
                let aggregate = series.aggregate_over(&self.grid, query.interval);
                let g = (aggregate as f64 / gmax).min(1.0);
                let s1 = 1.0 - g;
                QueryHit {
                    poi: poi.id,
                    score: query.alpha0 * s0 + query.alpha1() * s1,
                    s0,
                    s1,
                    distance: s0 / self.inv_scale,
                    aggregate,
                }
            })
            .collect()
    }

    /// Answers a kNNTA query by scanning (the paper's baseline).
    pub fn query(&self, query: &KnntaQuery) -> Vec<QueryHit> {
        struct MaxByScore(QueryHit);
        impl PartialEq for MaxByScore {
            fn eq(&self, o: &Self) -> bool {
                self.cmp(o) == Ordering::Equal
            }
        }
        impl Eq for MaxByScore {}
        impl PartialOrd for MaxByScore {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for MaxByScore {
            fn cmp(&self, o: &Self) -> Ordering {
                self.0.ranked_cmp(&o.0)
            }
        }

        if query.k == 0 {
            return Vec::new();
        }
        // Keep the k smallest in a max-heap (the `k log N` part of the
        // paper's complexity).
        let mut heap: BinaryHeap<MaxByScore> = BinaryHeap::with_capacity(query.k + 1);
        for hit in self.score_all(query) {
            heap.push(MaxByScore(hit));
            if heap.len() > query.k {
                heap.pop();
            }
        }
        let mut out: Vec<QueryHit> = heap.into_iter().map(|m| m.0).collect();
        out.sort_by(QueryHit::ranked_cmp);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::paper_example;

    fn baseline() -> ScanBaseline {
        let (grid, bounds, pois) = paper_example();
        ScanBaseline::build(grid, bounds, pois)
    }

    #[test]
    fn paper_example_top1() {
        let b = baseline();
        let q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3))
            .with_k(1)
            .with_alpha0(0.3);
        let hits = b.query(&q);
        assert_eq!(hits[0].poi, PoiId(5));
        assert_eq!(hits[0].aggregate, 12);
    }

    #[test]
    fn topk_is_prefix_of_full_ranking() {
        let b = baseline();
        let q = KnntaQuery::new([2.0, 2.0], TimeInterval::days(0, 3))
            .with_k(5)
            .with_alpha0(0.4);
        let top = b.query(&q);
        let mut all = b.score_all(&q);
        all.sort_by(|x, y| x.score.partial_cmp(&y.score).unwrap().then(x.poi.cmp(&y.poi)));
        assert_eq!(top.len(), 5);
        for (t, a) in top.iter().zip(&all) {
            assert_eq!(t.poi, a.poi);
        }
    }

    #[test]
    fn ingest_updates_scores_and_normalizer() {
        let mut b = baseline();
        let before = b.aggregate_normalizer(TimeInterval::days(0, 3));
        assert_eq!(before, 12.0);
        b.ingest(PoiId(0), 2, 50);
        let after = b.aggregate_normalizer(TimeInterval::days(0, 3));
        assert_eq!(after, 3.0 + 5.0 + 50.0);
        let q = KnntaQuery::new([1.0, 9.0], TimeInterval::days(0, 3)).with_k(1);
        assert_eq!(b.query(&q)[0].poi, PoiId(0));
    }

    #[test]
    fn k_zero_and_oversized() {
        let b = baseline();
        let q = KnntaQuery::new([0.0, 0.0], TimeInterval::days(0, 3)).with_k(1);
        assert_eq!(b.query(&q.with_k(100)).len(), 12);
        let mut q0 = q;
        q0.k = 0;
        assert!(b.query(&q0).is_empty());
    }
}
