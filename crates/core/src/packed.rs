//! The packed immutable TAR-tree serving tier.
//!
//! [`TarIndex::pack`] bulk-loads the index's current contents into a
//! [`PackedTarTree`]: one contiguous little-endian word buffer
//! ([`rtree::PackedTree`], byte layout specified normatively in
//! `docs/FORMAT.md`) holding level-contiguous node boxes, entry targets and
//! inline TIA prefix partial sums. Leaf entries are ordered along the same
//! Hilbert curve the collective batch scheduler uses
//! (`crate::collective::HILBERT_BITS` over the grouping space), so a
//! query's frontier touches runs of adjacent entries.
//!
//! Queries run against the image **zero-copy** through
//! [`crate::StorageBackend::Packed`]: no per-node allocation, no codec
//! round-trip — a node fetch is two index computations into the shared
//! buffer. Answers are bit-identical to the arena and paged backends
//! because leaf entries store the exact projected box bits, the `(epoch,
//! cumulative)` prefix subtraction is exact in `u64`, and internal entries
//! carry a per-epoch **max** merge of their subtree — an admissible
//! aggregate upper bound, hence an admissible score lower bound for the
//! best-first pruning (DESIGN.md §12 gives the argument).
//!
//! The image serialises page-by-page onto a [`pagestore::Disk`]
//! ([`PackedTarTree::save_to_disk`] / [`PackedTarTree::load_from_disk`]),
//! and like [`crate::PagedNodes`] it is a snapshot: querying it after any
//! index mutation panics ("stale") until repacked.

use crate::augmentation::TiaAug;
use crate::collective::HILBERT_BITS;
use crate::hilbert;
use crate::index::{with_tree, Grouping, TarIndex};
use crate::poi::Poi;
use crate::storage::{NodeSource, NodeView};
use pagestore::{Bytes, Disk, PageId};
use rtree::{EntryPayload, GroupingStrategy, NodeId, PackItem, PackedTree, RStarTree};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use tempora::AggregateSeries;

/// A packed immutable serving image of a [`TarIndex`] (format v1, see
/// `docs/FORMAT.md`).
///
/// Build one with [`TarIndex::pack`]; query it through
/// [`crate::StorageBackend::Packed`] via [`TarIndex::query_on`],
/// [`TarIndex::query_parallel_on`] or
/// [`TarIndex::query_batch_collective_on`]. The image is tied to the
/// index's content epoch: after any mutation the next packed query panics
/// until the index is repacked.
pub struct PackedTarTree {
    pub(crate) tree: PackedTree,
    grouping: Grouping,
    built_at: u64,
    /// Node reads served by this image on instrumented paths (relaxed
    /// monotone counter; the disabled-observability path never touches it).
    fetches: AtomicU64,
}

/// Meta-word grouping tags (header `meta0`, see `docs/FORMAT.md`).
fn grouping_tag(g: Grouping) -> u64 {
    match g {
        Grouping::TarIntegral => 0,
        Grouping::IndSpa => 1,
        Grouping::IndAgg => 2,
    }
}

/// Inverse of [`grouping_tag`].
fn tag_grouping(tag: u64) -> Option<Grouping> {
    match tag {
        0 => Some(Grouping::TarIntegral),
        1 => Some(Grouping::IndSpa),
        2 => Some(Grouping::IndAgg),
        _ => None,
    }
}

/// Flattens every leaf entry of the arena tree into a [`PackItem`]: Hilbert
/// rank over the grouping-space center as the sort key, the exact
/// `project2()` box bits, the POI id as the target word, and the entry's
/// aggregate series re-encoded as inclusive prefix records.
fn pack_items<const D: usize, S>(t: &RStarTree<D, Poi, TiaAug, S>) -> Vec<PackItem>
where
    S: GroupingStrategy<D, AggregateSeries>,
{
    // First pass: collect centers raw, tracking the per-axis bounds —
    // `hilbert_key` quantises the *unit cube*, so grouping-space
    // coordinates must be normalised before ranking or the curve order
    // degenerates to clamped-corner ties.
    let mut centers: Vec<[f64; D]> = Vec::with_capacity(t.len());
    let mut raw = Vec::with_capacity(t.len());
    let mut lo = [f64::INFINITY; D];
    let mut hi = [f64::NEG_INFINITY; D];
    for id in t.node_ids() {
        let node = t.node(id);
        if !node.is_leaf() {
            continue;
        }
        for e in &node.entries {
            let EntryPayload::Data(poi) = &e.payload else {
                continue;
            };
            let mut center = [0.0f64; D];
            for d in 0..D {
                center[d] = 0.5 * (e.rect.min[d] + e.rect.max[d]);
                lo[d] = lo[d].min(center[d]);
                hi[d] = hi[d].max(center[d]);
            }
            centers.push(center);
            let r2 = e.rect.project2();
            let mut cum = 0u64;
            let tia = e
                .aug
                .iter()
                .map(|(epoch, v)| {
                    cum += v;
                    (epoch as u64, cum)
                })
                .collect();
            raw.push(([r2.min[0], r2.min[1], r2.max[0], r2.max[1]], poi.id.0 as u64, tia));
        }
    }
    centers
        .iter()
        .zip(raw)
        .map(|(center, (rect, target, tia))| {
            let mut unit = [0.0f64; D];
            for d in 0..D {
                let span = hi[d] - lo[d];
                unit[d] = if span > 0.0 { (center[d] - lo[d]) / span } else { 0.0 };
            }
            PackItem {
                key: hilbert::hilbert_key(unit, HILBERT_BITS),
                rect,
                target,
                tia,
            }
        })
        .collect()
}

/// The internal-entry TIA merge: per-epoch **max** over the children's
/// per-epoch values (decoded from their prefix records), re-encoded as a
/// prefix block. `Σ_epochs max_children v` upper-bounds every child's own
/// range sum, which keeps the packed traversal keys admissible lower bounds
/// on the scores beneath them (DESIGN.md §12).
fn max_merge(children: &[Vec<(u64, u64)>]) -> Vec<(u64, u64)> {
    let mut per_epoch: BTreeMap<u64, u64> = BTreeMap::new();
    for block in children {
        let mut prev = 0u64;
        for &(epoch, cum) in block {
            let v = cum - prev;
            prev = cum;
            let slot = per_epoch.entry(epoch).or_insert(0);
            *slot = (*slot).max(v);
        }
    }
    let mut cum = 0u64;
    per_epoch
        .into_iter()
        .map(|(epoch, v)| {
            cum += v;
            (epoch, cum)
        })
        .collect()
}

/// Entries per packed node (leaves and internal levels alike).
///
/// The serving fanout is deliberately decoupled from the arena tree's
/// `node_size` (a paging knob): a query scores every entry of each node it
/// opens, so the image wants small nodes — full 36-entry Hilbert chunks
/// overlap enough that the saved directory hops don't pay for the extra
/// entries scanned. 16 — the classic flatbush default — measured best
/// across k ∈ {1, 10, 100} on the gowalla workload (`packed` vs
/// `query_latency` bench groups, `BENCH_queries.json`), beating both wider
/// uniform fanouts and small-leaf/wide-internal splits. The fanout is baked
/// into the image at pack time and recorded implicitly by its node
/// directory, so readers never consult this constant.
pub const PACKED_FANOUT: usize = 16;

impl TarIndex {
    /// Packs the index's current contents into an immutable serving image.
    ///
    /// Leaf entries are sorted by Hilbert rank over their grouping-space
    /// position and cut into nodes of [`PACKED_FANOUT`] entries; parents
    /// are built bottom-up over runs of [`PACKED_FANOUT`] children with
    /// per-epoch-max TIA blocks. The resulting [`PackedTarTree`] answers
    /// queries bit-identically to [`TarIndex::query`].
    ///
    /// # Examples
    ///
    /// ```
    /// use knnta_core::{IndexConfig, KnntaQuery, Poi, StorageBackend, TarIndex};
    /// use tempora::{AggregateSeries, EpochGrid, TimeInterval};
    ///
    /// let grid = EpochGrid::fixed_days(1, 3);
    /// let bounds = rtree::Rect::new([0.0, 0.0], [10.0, 10.0]);
    /// let pois = vec![
    ///     (Poi::new(0, 1.0, 1.0), AggregateSeries::from_pairs([(0, 5)])),
    ///     (Poi::new(1, 9.0, 9.0), AggregateSeries::from_pairs([(1, 50)])),
    /// ];
    /// let index = TarIndex::build(IndexConfig::default(), grid, bounds, pois);
    ///
    /// let packed = index.pack();
    /// let q = KnntaQuery::new([1.0, 1.0], TimeInterval::days(0, 3)).with_k(2);
    /// let mem = index.query(&q);
    /// let hits = index.query_on(&q, StorageBackend::Packed(&packed));
    /// assert_eq!(mem.len(), hits.len());
    /// for (a, b) in mem.iter().zip(&hits) {
    ///     assert_eq!((a.poi, a.score.to_bits()), (b.poi, b.score.to_bits()));
    /// }
    /// ```
    pub fn pack(&self) -> PackedTarTree {
        let items = with_tree!(self, t => pack_items(t));
        let tree = PackedTree::pack(
            PACKED_FANOUT,
            PACKED_FANOUT,
            items,
            [grouping_tag(self.grouping()), self.content_epoch],
            max_merge,
        );
        PackedTarTree {
            tree,
            grouping: self.grouping(),
            built_at: self.content_epoch,
            fetches: AtomicU64::new(0),
        }
    }
}

impl PackedTarTree {
    /// The grouping of the packed index.
    pub fn grouping(&self) -> Grouping {
        self.grouping
    }

    /// Number of packed nodes (all levels).
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Number of packed data items.
    pub fn item_count(&self) -> usize {
        self.tree.item_count()
    }

    /// Number of tree levels (leaves up to the root).
    pub fn level_count(&self) -> usize {
        self.tree.level_count()
    }

    /// Whether the image holds no data items.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Size of the image in bytes (header + all sections).
    pub fn byte_len(&self) -> usize {
        self.tree.words().len() * 8
    }

    /// Node reads this image has served on instrumented query paths
    /// (monotone; the disabled-observability path does not count).
    pub fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// The serialised image: the exact word buffer as little-endian bytes
    /// (`docs/FORMAT.md`). `to_bytes → from_bytes → to_bytes` is
    /// byte-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.tree.to_bytes()
    }

    /// Deserialises an image produced by [`PackedTarTree::to_bytes`],
    /// validating magic, version, section layout and directory monotonicity.
    pub fn from_bytes(bytes: &[u8]) -> Result<PackedTarTree, String> {
        let tree = PackedTree::from_bytes(bytes)?;
        let [tag, built_at] = tree.meta();
        let grouping =
            tag_grouping(tag).ok_or_else(|| format!("unknown grouping tag {tag} in meta0"))?;
        Ok(PackedTarTree {
            tree,
            grouping,
            built_at,
            fetches: AtomicU64::new(0),
        })
    }

    /// Writes the image onto `disk` page by page (the last page may be
    /// short) and returns the page handle for [`PackedTarTree::load_from_disk`].
    pub fn save_to_disk(&self, disk: &Disk) -> PackedPages {
        let bytes = self.to_bytes();
        let mut pages = Vec::new();
        for chunk in bytes.chunks(disk.page_size().max(1)) {
            let page = disk.allocate();
            disk.write(page, Bytes::from(chunk.to_vec()));
            pages.push(page);
        }
        PackedPages {
            pages,
            bytes: bytes.len(),
        }
    }

    /// Reads an image previously written with [`PackedTarTree::save_to_disk`].
    pub fn load_from_disk(disk: &Disk, pages: &PackedPages) -> Result<PackedTarTree, String> {
        let mut buf = Vec::with_capacity(pages.bytes);
        for &p in &pages.pages {
            let b = disk.read(p);
            buf.extend_from_slice(b.as_slice());
        }
        buf.truncate(pages.bytes);
        PackedTarTree::from_bytes(&buf)
    }

    pub(crate) fn check_fresh(&self, content_epoch: u64) {
        assert_eq!(
            self.built_at, content_epoch,
            "packed tree is stale; repack after index changes"
        );
    }
}

impl std::fmt::Debug for PackedTarTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedTarTree")
            .field("grouping", &self.grouping)
            .field("nodes", &self.node_count())
            .field("items", &self.item_count())
            .field("levels", &self.level_count())
            .field("bytes", &self.byte_len())
            .finish()
    }
}

/// The on-disk location of a saved packed image: its pages in order plus the
/// exact byte length (the final page may be short).
#[derive(Debug, Clone)]
pub struct PackedPages {
    pages: Vec<PageId>,
    bytes: usize,
}

impl PackedPages {
    /// Number of pages the image occupies.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Exact byte length of the serialised image.
    pub fn byte_len(&self) -> usize {
        self.bytes
    }
}

/// [`NodeSource`] adapter over a packed image: node ids are packed node
/// indices, and `with_node` hands out a [`NodeView::Packed`] borrowing the
/// shared word buffer — no allocation, no decode.
pub(crate) struct PackedSource<'a>(pub &'a PackedTarTree);

impl<const D: usize> NodeSource<D> for PackedSource<'_> {
    fn root(&self) -> NodeId {
        NodeId(self.0.tree.root() as u32)
    }

    fn is_empty(&self) -> bool {
        self.0.tree.is_empty()
    }

    fn with_node<R>(&self, id: NodeId, f: impl FnOnce(NodeView<'_, D>) -> R) -> R {
        f(NodeView::Packed {
            tree: &self.0.tree,
            node: self.0.tree.node(id.0 as usize),
        })
    }

    fn kind(&self) -> &'static str {
        "packed"
    }

    fn with_node_timed<R>(
        &self,
        id: NodeId,
        io_ns: &mut u64,
        f: impl FnOnce(NodeView<'_, D>) -> R,
    ) -> R {
        // A packed fetch is two index computations into a shared buffer;
        // count it, charge no I/O time.
        self.0.fetches.fetch_add(1, Ordering::Relaxed);
        let _ = io_ns;
        NodeSource::<D>::with_node(self, id, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::tests::paper_example;
    use crate::index::IndexConfig;
    use crate::poi::KnntaQuery;
    use crate::storage::StorageBackend;
    use pagestore::AccessStats;
    use tempora::{PoiId, TimeInterval};

    fn example_index(grouping: Grouping) -> TarIndex {
        let (grid, bounds, pois) = paper_example();
        TarIndex::build(IndexConfig::with_grouping(grouping), grid, bounds, pois)
    }

    fn scratch_disk(page_size: usize) -> Disk {
        Disk::new(page_size, AccessStats::new())
    }

    #[test]
    fn packed_results_are_bit_identical_for_every_grouping() {
        for grouping in [Grouping::TarIntegral, Grouping::IndSpa, Grouping::IndAgg] {
            let index = example_index(grouping);
            let packed = index.pack();
            assert_eq!(packed.item_count(), index.len());
            for alpha0 in [0.2, 0.5, 0.8] {
                for k in [1, 3, 12] {
                    let q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3))
                        .with_k(k)
                        .with_alpha0(alpha0);
                    let mem = index.query(&q);
                    let got = index.query_on(&q, StorageBackend::Packed(&packed));
                    assert_eq!(mem.len(), got.len(), "{grouping} k={k}");
                    for (a, b) in mem.iter().zip(&got) {
                        assert_eq!(a.poi, b.poi, "{grouping} k={k}");
                        assert_eq!(a.score.to_bits(), b.score.to_bits(), "{grouping} k={k}");
                        assert_eq!(a.aggregate, b.aggregate, "{grouping} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn packed_parallel_matches_sequential() {
        let index = example_index(Grouping::TarIntegral);
        let packed = index.pack();
        let q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3)).with_k(5);
        let seq = index.query_on(&q, StorageBackend::Packed(&packed));
        for threads in [1, 2, 4] {
            let par = index.query_parallel_on(&q, threads, StorageBackend::Packed(&packed));
            assert_eq!(seq.len(), par.len(), "threads={threads}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.poi, b.poi, "threads={threads}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn packed_batch_collective_matches_individual() {
        let index = example_index(Grouping::TarIntegral);
        let packed = index.pack();
        let batch = vec![
            KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3)).with_k(3),
            KnntaQuery::new([9.4, 2.1], TimeInterval::days(1, 3)).with_k(2),
            KnntaQuery::new([1.0, 9.0], TimeInterval::days(0, 1)).with_k(5),
        ];
        let individual: Vec<_> = batch
            .iter()
            .map(|q| index.query_on(q, StorageBackend::Packed(&packed)))
            .collect();
        let collective = index.query_batch_collective_on(
            &batch,
            &crate::collective::BatchOptions::default(),
            StorageBackend::Packed(&packed),
        );
        for (i, (xs, ys)) in collective.iter().zip(&individual).enumerate() {
            assert_eq!(xs.len(), ys.len(), "query {i}");
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.poi, y.poi, "query {i}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "query {i}");
            }
        }
    }

    #[test]
    fn save_load_roundtrip_is_byte_identical() {
        let index = example_index(Grouping::TarIntegral);
        let packed = index.pack();
        for page_size in [64, 256, 1 << 20] {
            let disk = scratch_disk(page_size);
            let pages = packed.save_to_disk(&disk);
            assert_eq!(pages.byte_len(), packed.byte_len());
            assert_eq!(
                pages.page_count(),
                packed.byte_len().div_ceil(page_size.max(1))
            );
            let loaded = PackedTarTree::load_from_disk(&disk, &pages).expect("load");
            assert_eq!(loaded.to_bytes(), packed.to_bytes(), "page_size={page_size}");
            assert_eq!(loaded.grouping(), packed.grouping());

            let q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3)).with_k(4);
            let a = index.query_on(&q, StorageBackend::Packed(&packed));
            let b = index.query_on(&q, StorageBackend::Packed(&loaded));
            assert_eq!(
                a.iter().map(|h| (h.poi, h.score.to_bits())).collect::<Vec<_>>(),
                b.iter().map(|h| (h.poi, h.score.to_bits())).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn from_bytes_rejects_unknown_grouping_tag() {
        let index = example_index(Grouping::TarIntegral);
        let mut bytes = index.pack().to_bytes();
        // meta0 is header word 14 (see docs/FORMAT.md).
        bytes[14 * 8..15 * 8].copy_from_slice(&99u64.to_le_bytes());
        let err = PackedTarTree::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("grouping tag"), "{err}");
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_packed_tree_rejected() {
        let mut index = example_index(Grouping::TarIntegral);
        let packed = index.pack();
        index.ingest_epoch(0, &[(PoiId(0), 3)]);
        let q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3));
        let _ = index.query_on(&q, StorageBackend::Packed(&packed));
    }

    #[test]
    fn empty_index_packs_and_answers_empty() {
        let (grid, bounds, _) = paper_example();
        let index = TarIndex::new(IndexConfig::default(), grid, bounds);
        let packed = index.pack();
        assert!(packed.is_empty());
        let q = KnntaQuery::new([4.0, 4.5], TimeInterval::days(0, 3)).with_k(3);
        assert!(index.query_on(&q, StorageBackend::Packed(&packed)).is_empty());
    }

    #[test]
    fn max_merge_upper_bounds_children() {
        let a = vec![(0u64, 2u64), (2, 5)]; // values: e0=2, e2=3
        let b = vec![(1u64, 4u64), (2, 5)]; // values: e1=4, e2=1
        let merged = max_merge(&[a, b]);
        // per-epoch max: e0=2, e1=4, e2=3 → prefix 2, 6, 9
        assert_eq!(merged, vec![(0, 2), (1, 6), (2, 9)]);
    }
}
